"""Unit tests for blocking policies and rules."""

import pytest

from repro.middlebox.policy import (
    BlockPolicy,
    CategoryRule,
    DomainRule,
    ExactIpRule,
    FlowContext,
    IpRule,
    KeywordRule,
    PortRule,
    SubstringRule,
)


def ctx(**overrides):
    base = dict(server_ip="198.41.0.1", server_port=443, client_ip="11.0.0.1")
    base.update(overrides)
    return FlowContext(**base)


class TestDomainRule:
    def test_exact_match(self):
        rule = DomainRule(["blocked.example"])
        assert rule.matches(ctx(domain="blocked.example"))

    def test_subdomain_match(self):
        rule = DomainRule(["blocked.example"])
        assert rule.matches(ctx(domain="www.blocked.example"))
        assert rule.matches(ctx(domain="a.b.c.blocked.example"))

    def test_no_partial_label_match(self):
        rule = DomainRule(["blocked.example"])
        assert not rule.matches(ctx(domain="notblocked.example"))
        assert not rule.matches(ctx(domain="blocked.example.org"))

    def test_case_insensitive(self):
        rule = DomainRule(["Blocked.Example"])
        assert rule.matches(ctx(domain="BLOCKED.example"))

    def test_no_domain_no_match(self):
        assert not DomainRule(["x.com"]).matches(ctx(domain=None))

    def test_not_pre_data(self):
        assert not DomainRule(["x.com"]).pre_data


class TestSubstringRule:
    def test_overblocking(self):
        # The paper's Turkmenistan example: blocking "wn.com" catches
        # unrelated domains containing the fragment.
        rule = SubstringRule(["wn.com"])
        assert rule.matches(ctx(domain="wn.com"))
        assert rule.matches(ctx(domain="breakingdown.com"))
        assert rule.matches(ctx(domain="dawn.com"))
        # Even a fragment spanning label boundaries over-blocks, which is
        # the Nourin et al. observation the paper cites.
        assert rule.matches(ctx(domain="my-own.company.org"))
        assert not rule.matches(ctx(domain="unrelated.example"))

    def test_case_insensitive(self):
        assert SubstringRule(["Forbidden"]).matches(ctx(domain="FORBIDDEN-site.com"))


class TestKeywordRule:
    def test_matches_payload_bytes(self):
        rule = KeywordRule([b"secret"])
        assert rule.matches(ctx(payload=b"POST /x\r\n\r\ndata=secret-stuff"))
        assert not rule.matches(ctx(payload=b"nothing here"))
        assert not rule.matches(ctx(payload=b""))


class TestIpRules:
    def test_prefix_rule(self):
        rule = IpRule(["198.41.0.0/16"])
        assert rule.pre_data
        assert rule.matches(ctx(server_ip="198.41.200.5"))
        assert not rule.matches(ctx(server_ip="198.42.0.5"))

    def test_prefix_rule_version_mismatch(self):
        rule = IpRule(["198.41.0.0/16"])
        assert not rule.matches(ctx(server_ip="2606:4700::1"))

    def test_exact_ip_rule(self):
        rule = ExactIpRule(["198.41.0.1", "2606:4700::9"])
        assert rule.pre_data
        assert rule.matches(ctx(server_ip="198.41.0.1"))
        assert rule.matches(ctx(server_ip="2606:4700::9"))
        assert not rule.matches(ctx(server_ip="198.41.0.2"))


class TestPortRule:
    def test_scopes_inner_rule(self):
        rule = PortRule(DomainRule(["b.com"]), frozenset({80}))
        assert rule.matches(ctx(domain="b.com", server_port=80))
        assert not rule.matches(ctx(domain="b.com", server_port=443))

    def test_pre_data_follows_inner(self):
        assert PortRule(ExactIpRule(["1.2.3.4"]), frozenset({80})).pre_data
        assert not PortRule(DomainRule(["b.com"]), frozenset({80})).pre_data


class TestCategoryRule:
    def test_matches_context_categories(self):
        rule = CategoryRule(["Adult Themes"])
        assert rule.matches(ctx(categories=frozenset({"Adult Themes", "Chat"})))
        assert not rule.matches(ctx(categories=frozenset({"News"})))
        assert not rule.matches(ctx())


class TestBlockPolicy:
    def test_any_rule_matches(self):
        policy = BlockPolicy([DomainRule(["a.com"]), KeywordRule([b"kw"])])
        assert policy.matches(ctx(domain="a.com"))
        assert policy.matches(ctx(payload=b"xx kw yy"))
        assert not policy.matches(ctx(domain="b.com"))

    def test_pre_data_filtering(self):
        policy = BlockPolicy([DomainRule(["a.com"]), ExactIpRule(["9.9.9.9"])])
        assert policy.has_pre_data_rules
        assert policy.matches_pre_data(ctx(server_ip="9.9.9.9", domain="a.com"))
        # Domain rules must NOT fire at SYN time.
        assert not policy.matches_pre_data(ctx(server_ip="8.8.8.8", domain="a.com"))

    def test_nothing_and_everything(self):
        assert not BlockPolicy.nothing().matches(ctx(domain="any.com"))
        assert BlockPolicy.everything().matches(ctx())
        assert BlockPolicy.everything().matches_pre_data(ctx())

    def test_add_chains(self):
        policy = BlockPolicy().add(DomainRule(["a.com"]))
        assert policy.matches(ctx(domain="a.com"))

    def test_describe_mentions_rules(self):
        text = BlockPolicy([DomainRule(["a.com", "b.com"])], name="p").describe()
        assert "DomainRule(2 domains)" in text
