"""Tests for :mod:`repro.obs`: the metrics registry, trace ring,
the :class:`Observability` facade, progress reporting, the export /
report round-trip, and the engine + CLI integration points.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.obs import (
    DEFAULT_LATENCY_BOUNDS,
    NULL_OBS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullObservability,
    Observability,
    ProgressReporter,
    Tracer,
    load_export,
    percentile_from_buckets,
    prometheus_name,
    render_obs_report,
    stage_rows,
)
from repro.stream import IterableSource, StreamEngine
from repro.workloads.scenarios import two_week_study


@pytest.fixture(scope="module")
def study():
    return two_week_study(n_connections=300, seed=11)


def make_source(study):
    return IterableSource(study.samples, timestamps=study.timestamps)


# ----------------------------------------------------------------------
# Registry: counters, gauges, histograms
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        c = registry.counter("source.retries")
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = registry.gauge("queue.depth")
        g.set(7.0)
        g.inc()
        g.dec(3.0)
        assert g.value == 5.0

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.get("a").value == 0
        assert registry.get("missing") is None

    def test_type_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_histogram_observe_and_buckets(self):
        h = Histogram("t", bounds=[0.001, 0.01, 0.1])
        for v in (0.0005, 0.005, 0.005, 0.05, 5.0):
            h.observe(v)
        assert h.counts == [1, 2, 1, 1]  # last slot is overflow
        assert h.count == 5
        assert h.sum == pytest.approx(5.0605)
        assert h.mean == pytest.approx(5.0605 / 5)

    def test_histogram_bound_is_inclusive_upper_edge(self):
        h = Histogram("t", bounds=[0.001, 0.01])
        h.observe(0.001)  # exactly on the edge -> first bucket (le semantics)
        assert h.counts == [1, 0, 0]

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("t", bounds=[])
        with pytest.raises(ValueError):
            Histogram("t", bounds=[0.1, 0.1])
        with pytest.raises(ValueError):
            Histogram("t", bounds=[0.2, 0.1])

    def test_default_bounds_span_us_to_seconds(self):
        assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_BOUNDS[-1] == pytest.approx(1e-6 * 2 ** 24)
        assert list(DEFAULT_LATENCY_BOUNDS) == sorted(DEFAULT_LATENCY_BOUNDS)

    def test_percentiles_interpolate_monotonically(self):
        h = Histogram("t", bounds=[0.001, 0.01, 0.1, 1.0])
        for _ in range(100):
            h.observe(0.005)
        p50 = h.percentile(50.0)
        p99 = h.percentile(99.0)
        assert 0.001 <= p50 <= 0.01
        assert p50 <= p99 <= 0.01

    def test_percentile_from_buckets_edges(self):
        assert percentile_from_buckets([0.1], [0, 0], 50.0) == 0.0  # empty
        # Everything in the overflow bucket reports the last finite bound.
        assert percentile_from_buckets([0.1, 0.2], [0, 0, 10], 99.0) == 0.2
        with pytest.raises(ValueError):
            percentile_from_buckets([0.1], [1, 0], 101.0)
        with pytest.raises(ValueError):
            percentile_from_buckets([0.1], [1, 0], -1.0)

    def test_prometheus_name(self):
        assert prometheus_name("wal.append") == "repro_wal_append"
        assert prometheus_name("classify", "seconds") == "repro_classify_seconds"
        assert prometheus_name("a-b.c") == "repro_a_b_c"

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("source.retries", help="retried reads").inc(3)
        registry.gauge("queue.depth").set(2.5)
        h = registry.histogram("classify", bounds=[0.001, 0.01])
        h.observe(0.0005)
        h.observe(0.005)
        h.observe(5.0)
        text = registry.render_prometheus()
        assert "# HELP repro_source_retries_total retried reads" in text
        assert "# TYPE repro_source_retries_total counter" in text
        assert "repro_source_retries_total 3" in text
        assert "repro_queue_depth 2.5" in text
        # Cumulative le buckets plus the +Inf total.
        assert 'repro_classify_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_classify_seconds_bucket{le="0.01"} 2' in text
        assert 'repro_classify_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_classify_seconds_count 3" in text
        assert text.endswith("\n")

    def test_summary_and_to_dict(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h", bounds=[0.01]).observe(0.005)
        full = registry.to_dict()
        assert full["counters"] == {"c": 2}
        assert full["histograms"]["h"]["counts"] == [1, 0]
        compact = registry.summary()
        assert compact["histograms"]["h"]["count"] == 1
        assert "p50" in compact["histograms"]["h"]
        assert "p99" in compact["histograms"]["h"]
        # Both must be JSON-serialisable as-is.
        json.dumps(full)
        json.dumps(compact)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_ring_keeps_most_recent(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record(f"s{i}", start=float(i), duration=0.001)
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["s2", "s3", "s4"]
        assert tracer.total_spans == 5
        assert tracer.stats() == {
            "capacity": 3,
            "recorded": 3,
            "total_spans": 5,
            "total_events": 0,
        }

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_events_are_zero_duration_with_attrs(self):
        tracer = Tracer()
        tracer.record("classify", start=0.0, duration=0.002)
        tracer.event("worker.restart", worker_id=3, exitcode=-9)
        events = tracer.events()
        assert len(events) == 1
        assert events[0]["name"] == "worker.restart"
        assert events[0]["duration_seconds"] == 0.0
        assert events[0]["attrs"] == {"worker_id": 3, "exitcode": -9}
        assert tracer.events("engine.resume") == []
        assert len(tracer.events("worker.restart")) == 1
        assert tracer.total_events == 1

    def test_epoch_conversion_is_plausible(self):
        import time

        tracer = Tracer()
        tracer.record("s", start=time.perf_counter(), duration=0.0)
        ts = tracer.spans()[0]["ts"]
        assert abs(ts - time.time()) < 5.0

    def test_export_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.record("classify", start=1.0, duration=0.001)
        tracer.event("engine.resume", watermark=42.0)
        path = str(tmp_path / "spans.jsonl")
        assert tracer.export_jsonl(path) == 2
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert [l["name"] for l in lines] == ["classify", "engine.resume"]
        assert lines[1]["attrs"]["watermark"] == 42.0


# ----------------------------------------------------------------------
# Observability facade and the null implementation
# ----------------------------------------------------------------------
class TestObservability:
    def test_timer_is_cached_and_span_aliases_it(self):
        obs = Observability()
        t1 = obs.timer("classify")
        assert obs.timer("classify") is t1
        assert obs.span("classify") is t1

    def test_timer_context_manager_feeds_histogram_and_ring(self):
        obs = Observability()
        with obs.timer("classify"):
            pass
        hist = obs.registry.get("classify")
        assert hist.count == 1
        assert hist.sum >= 0.0
        assert obs.tracer.spans()[0]["name"] == "classify"

    def test_timer_records_even_when_body_raises(self):
        obs = Observability()
        with pytest.raises(RuntimeError):
            with obs.timer("classify"):
                raise RuntimeError("boom")
        assert obs.registry.get("classify").count == 1

    def test_record_routes_external_measurements(self):
        obs = Observability()
        t = obs.timer("classify.hit")
        t.record(0.25)
        hist = obs.registry.get("classify.hit")
        assert hist.count == 1
        assert hist.sum == pytest.approx(0.25)
        assert obs.tracer.spans()[0]["duration_seconds"] == pytest.approx(0.25)

    def test_summary_includes_span_stats(self):
        obs = Observability()
        obs.counter("c").inc()
        with obs.timer("t"):
            pass
        summary = obs.summary()
        assert summary["counters"] == {"c": 1}
        assert summary["spans"]["total_spans"] == 1
        json.dumps(summary)

    def test_export_and_load_round_trip(self, tmp_path):
        obs = Observability()
        obs.counter("source.retries").inc(2)
        obs.gauge("queue.depth").set(4)
        with obs.timer("classify"):
            pass
        obs.event("engine.resume", samples_done=10)
        out = str(tmp_path / "obs")
        paths = obs.export(out, extra={"records": 123})
        assert set(paths) == {"metrics.json", "metrics.prom", "spans.jsonl"}
        for path in paths.values():
            assert os.path.isfile(path)

        export = load_export(out)
        assert export.counters == {"source.retries": 2}
        assert export.gauges == {"queue.depth": 4}
        assert export.histograms["classify"]["count"] == 1
        assert export.metrics["extra"] == {"records": 123}
        assert export.metrics["version"] == 1
        resumes = export.events("engine.resume")
        assert len(resumes) == 1
        assert resumes[0]["attrs"]["samples_done"] == 10
        prom = open(paths["metrics.prom"]).read()
        assert "repro_source_retries_total 2" in prom

    def test_load_export_missing_metrics(self, tmp_path):
        with pytest.raises(ReproError, match="metrics.json"):
            load_export(str(tmp_path / "nope"))

    def test_stage_rows_and_report(self, tmp_path):
        obs = Observability()
        slow = obs.timer("rollup.fold")
        fast = obs.timer("classify")
        slow.record(0.5)
        slow.record(0.5)
        fast.record(0.001)
        obs.counter("classify.cache_hits").inc(9)
        obs.event("worker.restart", worker_id=0)
        out = str(tmp_path / "obs")
        obs.export(out)
        export = load_export(out)

        rows = stage_rows(export)
        assert rows[0]["stage"] == "rollup.fold"  # most busy time first
        assert rows[0]["count"] == 2
        assert rows[0]["share_pct"] > rows[1]["share_pct"]
        assert rows[0]["p50_us"] > 0
        assert rows[0]["p99_us"] >= rows[0]["p50_us"]

        text = render_obs_report(export)
        assert "Stage latencies" in text
        assert "bottleneck: rollup.fold" in text
        assert "classify.cache_hits" in text
        assert "worker.restart" in text

    def test_null_obs_is_inert(self, tmp_path):
        assert NULL_OBS.enabled is False
        assert isinstance(NULL_OBS, NullObservability)
        NULL_OBS.counter("c").inc(5)
        assert NULL_OBS.counter("c").value == 0
        NULL_OBS.gauge("g").set(3)
        NULL_OBS.histogram("h").observe(1.0)
        with NULL_OBS.timer("t"):
            pass
        NULL_OBS.timer("t").record(1.0)
        NULL_OBS.event("e", x=1)
        assert NULL_OBS.summary() == {}
        assert NULL_OBS.render_prometheus() == ""
        assert NULL_OBS.export(str(tmp_path / "o")) == {}
        assert not os.path.exists(str(tmp_path / "o"))


# ----------------------------------------------------------------------
# Progress reporter
# ----------------------------------------------------------------------
class _FakeMetrics:
    def __init__(self, records=0):
        self.records_out = records
        self.queue_depth = 2
        self.anomaly_events = 1
        self.worker_restarts = 0
        self.source_retries = 0

    def samples_per_second(self):
        return 1000.0


class TestProgressReporter:
    def test_rate_limited_by_interval(self):
        clock = {"t": 0.0}
        lines = []
        reporter = ProgressReporter(
            interval_seconds=5.0, sink=lines.append, clock=lambda: clock["t"]
        )
        metrics = _FakeMetrics(records=100)
        assert reporter.maybe_report(metrics) is False  # too soon
        clock["t"] = 4.9
        assert reporter.maybe_report(metrics) is False
        clock["t"] = 5.1
        assert reporter.maybe_report(metrics) is True
        assert reporter.lines_emitted == 1
        assert len(lines) == 1
        assert "progress: 100 records" in lines[0]
        assert "queue 2" in lines[0]
        assert "1 anomalies" in lines[0]
        assert "restarts" not in lines[0]

    def test_interval_rate_uses_delta(self):
        clock = {"t": 0.0}
        lines = []
        reporter = ProgressReporter(
            interval_seconds=1.0, sink=lines.append, clock=lambda: clock["t"]
        )
        clock["t"] = 2.0
        reporter.maybe_report(_FakeMetrics(records=200))
        assert "(interval 100/s)" in lines[0]
        clock["t"] = 4.0
        reporter.maybe_report(_FakeMetrics(records=500))
        assert "(interval 150/s)" in lines[1]

    def test_optional_parts_appear(self):
        clock = {"t": 10.0}
        lines = []
        reporter = ProgressReporter(
            interval_seconds=1.0, sink=lines.append, clock=lambda: clock["t"]
        )
        metrics = _FakeMetrics(records=10)
        metrics.worker_restarts = 2
        metrics.source_retries = 3
        clock["t"] = 12.0
        reporter.maybe_report(metrics)
        assert "2 worker restarts" in lines[0]
        assert "3 source retries" in lines[0]

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter(interval_seconds=0.0)


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_serial_run_populates_stage_metrics(self, study):
        engine = StreamEngine(make_source(study), n_workers=0)
        report = engine.run()
        snap = report.metrics
        assert "obs" in snap
        hists = snap["obs"]["histograms"]
        # Every serial-path stage saw traffic.
        for stage in ("source.read", "rollup.fold", "anomaly.observe"):
            assert hists[stage]["count"] > 0, stage
        # With the default memo the classify path splits hit/miss.  The
        # counters are exact; classify timing is sampled 1-in-N, so the
        # weighted histogram counts estimate the same total and split.
        n = len(study.samples)
        counters = snap["obs"]["counters"]
        assert counters["classify.cache_hits"] > 0
        assert counters["classify.cache_misses"] > 0
        assert counters["classify.cache_hits"] + counters["classify.cache_misses"] == n
        hits = hists.get("classify.hit", {}).get("count", 0)
        misses = hists.get("classify.miss", {}).get("count", 0)
        assert hits + misses == n  # weighted total; n is stride-aligned
        assert abs(hits - counters["classify.cache_hits"]) < 0.25 * n
        assert snap["obs"]["spans"]["total_spans"] > 0

    def test_null_obs_disables_snapshot_section(self, study):
        engine = StreamEngine(make_source(study), n_workers=0, obs=NULL_OBS)
        report = engine.run(max_samples=50)
        assert "obs" not in report.metrics
        assert report.samples_processed == 50  # the pipeline itself still works

    def test_uncached_serial_run_uses_plain_classify_stage(self, study):
        from repro.core.classifier import ClassifierConfig

        engine = StreamEngine(
            make_source(study),
            n_workers=0,
            classifier_config=ClassifierConfig(cache_size=0),
        )
        report = engine.run(max_samples=40)
        hists = report.metrics["obs"]["histograms"]
        assert hists["classify"]["count"] == 40
        # Hit/miss timers are wired but never fed without a memo.
        assert hists.get("classify.hit", {"count": 0})["count"] == 0
        assert hists.get("classify.miss", {"count": 0})["count"] == 0

    def test_store_run_times_wal_and_seal(self, study, tmp_path):
        engine = StreamEngine(
            make_source(study), n_workers=0, store_dir=str(tmp_path / "store")
        )
        report = engine.run()
        hists = report.metrics["obs"]["histograms"]
        assert hists["wal.append"]["count"] == len(study.samples)
        assert hists["wal.fsync"]["count"] > 0
        assert hists["segment.seal"]["count"] > 0

    def test_resume_emits_engine_resume_event(self, study, tmp_path):
        ck = str(tmp_path / "ck.json")
        StreamEngine(make_source(study), n_workers=0, checkpoint_path=ck).run(
            max_samples=120
        )
        engine = StreamEngine(make_source(study), n_workers=0, checkpoint_path=ck)
        report = engine.run(resume=True)
        events = engine.obs.tracer.events("engine.resume")
        assert len(events) == 1
        assert events[0]["attrs"]["samples_done"] == 120
        assert report.metrics["obs"]["counters"]["engine.resumes"] == 1

    def test_sharded_run_records_dispatch_and_batches(self, study):
        engine = StreamEngine(make_source(study), n_workers=2)
        report = engine.run(max_samples=200)
        hists = report.metrics["obs"]["histograms"]
        assert hists["shard.dispatch"]["count"] > 0
        assert hists["shard.collect"]["count"] > 0
        assert hists["classify.batch"]["count"] > 0
        counters = report.metrics["obs"]["counters"]
        assert (
            counters["classify.cache_hits"] + counters["classify.cache_misses"]
            == 200
        )

    def test_progress_reporter_wired_through_engine(self, study):
        lines = []
        reporter = ProgressReporter(interval_seconds=1e-9, sink=lines.append)
        engine = StreamEngine(make_source(study), n_workers=0, progress=reporter)
        engine.run(max_samples=30)
        assert reporter.lines_emitted > 0
        assert lines and lines[0].startswith("progress: ")


# ----------------------------------------------------------------------
# CLI: stream --obs and the obs subcommand
# ----------------------------------------------------------------------
class TestObsCli:
    @pytest.fixture(scope="class")
    def export_dir(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("cli") / "obs")
        assert main(["stream", "-n", "120", "--seed", "4", "--obs", out]) == 0
        return out

    def test_stream_obs_writes_export(self, export_dir, capsys):
        for name in ("metrics.json", "metrics.prom", "spans.jsonl"):
            assert os.path.isfile(os.path.join(export_dir, name)), name
        with open(os.path.join(export_dir, "metrics.json")) as fh:
            payload = json.load(fh)
        assert payload["histograms"]["classify.hit"]["count"] >= 0
        assert "stream_metrics" in payload["extra"]

    def test_obs_report_command(self, export_dir, capsys):
        assert main(["obs", export_dir]) == 0
        out = capsys.readouterr().out
        assert "Stage latencies" in out
        assert "bottleneck:" in out
        assert "p50_us" in out and "p99_us" in out

    def test_obs_report_json(self, export_dir, capsys):
        assert main(["obs", export_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stages"]
        stages = {row["stage"] for row in payload["stages"]}
        assert "source.read" in stages
        assert "rollup.fold" in stages
        for row in payload["stages"]:
            assert row["p99_us"] >= row["p50_us"] >= 0

    def test_obs_missing_export_errors(self, tmp_path):
        # Same loud-failure contract as `repro query` on a typo'd path.
        with pytest.raises(ReproError, match="metrics.json"):
            main(["obs", str(tmp_path / "nothing")])

    def test_stream_progress_flag(self, capsys):
        assert main(["stream", "-n", "40", "--seed", "4",
                     "--progress", "0.000001"]) == 0
        err = capsys.readouterr().err
        assert "progress:" in err


class TestRegistryThreadSafety:
    """The serve tier mutates one registry from several threads.

    Unlocked ``value += n`` and bucket increments span multiple
    bytecodes and lose updates under concurrent interleaving; these
    hammers fail reliably on an unlocked registry (verified by
    reverting the metric locks) and pin the thread-safety contract.
    """

    N_THREADS = 8
    N_OPS = 2500

    def _hammer(self, target):
        import threading

        threads = [
            threading.Thread(target=target) for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_increments_are_not_lost(self):
        counter = Counter("hammer.counter")
        self._hammer(lambda: [counter.inc() for _ in range(self.N_OPS)])
        assert counter.value == self.N_THREADS * self.N_OPS

    def test_gauge_inc_dec_balance(self):
        gauge = Gauge("hammer.gauge")

        def work():
            for _ in range(self.N_OPS):
                gauge.inc(2.0)
                gauge.dec(1.0)

        self._hammer(work)
        assert gauge.value == self.N_THREADS * self.N_OPS

    def test_histogram_observations_are_not_lost(self):
        hist = Histogram("hammer.hist", bounds=(0.001, 0.01, 0.1, 1.0))

        def work():
            for i in range(self.N_OPS):
                hist.observe(0.0005 * (1 + i % 4))

        self._hammer(work)
        counts, total_sum = hist.snapshot()
        assert sum(counts) == self.N_THREADS * self.N_OPS
        expected = self.N_THREADS * sum(
            0.0005 * (1 + i % 4) for i in range(self.N_OPS)
        )
        assert total_sum == pytest.approx(expected)

    def test_registry_get_or_create_races_to_one_instance(self):
        import threading

        registry = MetricsRegistry()
        barrier = threading.Barrier(self.N_THREADS)
        got = []

        def work():
            barrier.wait()
            got.append(registry.counter("race.single"))

        self._hammer(work)
        assert len(got) == self.N_THREADS
        assert all(metric is got[0] for metric in got)

    def test_concurrent_observe_and_render(self):
        """Rendering while observers run never produces a torn page."""
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("mix.counter")
        hist = registry.histogram("mix.hist", bounds=(0.001, 0.01, 0.1))
        stop = threading.Event()

        def observe():
            while not stop.is_set():
                counter.inc()
                hist.observe(0.005)

        threads = [threading.Thread(target=observe) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                text = registry.render_prometheus()
                cumulative = [
                    int(line.rsplit(" ", 1)[1])
                    for line in text.splitlines()
                    if line.startswith("repro_mix_hist_seconds_bucket")
                ]
                assert cumulative == sorted(cumulative)
        finally:
            stop.set()
            for thread in threads:
                thread.join()


class TestPrometheusExposition:
    """Validity of the ``/metrics`` text against the exposition format."""

    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests", help="requests seen")
        registry.counter("plain")
        gauge = registry.gauge("queue.depth", help="records queued")
        gauge.set(7)
        hist = registry.histogram(
            "fold latency!", bounds=(0.001, 0.01, 0.1), help="fold time"
        )
        hist.observe(0.0005)
        hist.observe(0.05)
        hist.observe(99.0)  # overflow bucket
        return registry

    def test_help_and_type_precede_samples(self):
        text = self.make_registry().render_prometheus()
        lines = text.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix):
                    base = base[: -len(suffix)]
            type_lines = [
                j for j, other in enumerate(lines)
                if other.startswith("# TYPE ") and other.split()[2] == base
            ]
            assert type_lines, f"no TYPE line for {name}"
            assert type_lines[0] < i, f"TYPE after sample for {name}"
        help_lines = [l for l in lines if l.startswith("# HELP")]
        assert any("requests seen" in l for l in help_lines)
        # HELP, when present, immediately precedes its TYPE line.
        for j, line in enumerate(lines):
            if line.startswith("# HELP "):
                assert lines[j + 1].startswith("# TYPE ")
                assert lines[j + 1].split()[2] == line.split()[2]

    def test_total_suffix_only_on_counters(self):
        text = self.make_registry().render_prometheus()
        for line in text.splitlines():
            if line.startswith("#"):
                kind = line.split()[1]
                name = line.split()[2]
                if line.startswith("# TYPE"):
                    ends_total = name.endswith("_total")
                    is_counter = line.split()[3] == "counter"
                    assert ends_total == is_counter, line
            else:
                name = line.split("{")[0].split(" ")[0]
                if name.endswith("_total"):
                    assert "le=" not in line

    def test_histogram_buckets_cumulative_and_end_plus_inf(self):
        text = self.make_registry().render_prometheus()
        buckets = [
            line for line in text.splitlines()
            if line.startswith("repro_fold_latency__seconds_bucket")
        ]
        assert buckets, text
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts), "le counts must be cumulative"
        assert 'le="+Inf"' in buckets[-1]
        assert counts[-1] == 3  # +Inf bucket equals _count
        assert f"repro_fold_latency__seconds_count 3" in text
        # The 99 s observation lives only in the overflow bucket.
        assert counts[-1] - counts[-2] == 1

    def test_names_are_sanitized(self):
        assert prometheus_name("fold latency!") == "repro_fold_latency_"
        assert prometheus_name("a.b-c", "seconds") == "repro_a_b_c_seconds"
        text = self.make_registry().render_prometheus()
        import re

        for line in text.splitlines():
            name = line.split()[2] if line.startswith("#") else (
                line.split("{")[0].split(" ")[0]
            )
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name), line

    def test_gauge_renders_current_value(self):
        text = self.make_registry().render_prometheus()
        assert "repro_queue_depth 7" in text


# ----------------------------------------------------------------------
# Tracer ring wrap-around and weighted sampled timers
# ----------------------------------------------------------------------
class TestTracerWrapAround:
    def test_spans_ordering_and_export_after_wrap(self, tmp_path):
        tracer = Tracer(capacity=4)
        for i in range(7):
            tracer.record(f"s{i}", start=float(i), duration=0.001)
        assert tracer._wrapped is True
        spans = tracer.spans()
        # Oldest survivor first: s0..s2 were overwritten in place.
        assert [s["name"] for s in spans] == ["s3", "s4", "s5", "s6"]
        ts = [s["ts"] for s in spans]
        assert ts == sorted(ts)
        path = str(tmp_path / "spans.jsonl")
        assert tracer.export_jsonl(path) == 4
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert [l["name"] for l in lines] == ["s3", "s4", "s5", "s6"]
        assert all(l["kind"] == "span" for l in lines)
        assert tracer.stats()["recorded"] == 4
        assert tracer.total_spans == 7

    def test_events_survive_a_span_flood_wrap(self):
        tracer = Tracer(capacity=2)
        tracer.event("engine.resume", cursor=9)
        for i in range(50):
            tracer.record("hot", start=float(i), duration=0.0001)
        assert tracer._wrapped is True
        assert [e["name"] for e in tracer.events()] == ["engine.resume"]
        # spans() still merges the event in timestamp order.
        assert sum(s["kind"] == "event" for s in tracer.spans()) == 1

    def test_weighted_timer_counts_are_exact_across_wrap(self):
        # A weight=N sampled timer must keep histogram counts exact
        # (every record counts N) even while the ring wraps: ring
        # writes are a flight recorder, histograms are the aggregate.
        obs = Observability(span_capacity=4)
        timer = obs.timer("classify.hit", sample=8)
        assert timer.weight == 8
        recorded = 33  # enough ring writes (every 8th) to wrap capacity 4
        for _ in range(recorded):
            timer.record(0.001)
        assert obs.tracer._wrapped is True
        hist = obs.registry.get("classify.hit")
        assert hist.count == recorded * 8
        assert hist.sum == pytest.approx(recorded * 8 * 0.001)
        # The context-manager path weights identically.
        with timer:
            pass
        assert hist.count == (recorded + 1) * 8


# ----------------------------------------------------------------------
# Histogram exemplars (trace ids on bucket lines)
# ----------------------------------------------------------------------
class TestHistogramExemplars:
    def test_set_exemplar_does_not_touch_counts(self):
        registry = MetricsRegistry()
        hist = registry.histogram("wal.append", bounds=(0.001, 0.01, 0.1))
        hist.observe(0.005)
        hist.set_exemplar(0.005, "a" * 32, 1700000000.0)
        assert hist.count == 1
        assert hist.exemplars[1][0] == "a" * 32
        # Last writer per bucket wins.
        hist.set_exemplar(0.006, "b" * 32, 1700000001.0)
        assert hist.exemplars[1][0] == "b" * 32
        assert len(hist.exemplars) == 1

    def test_exposition_suffix_only_on_exemplar_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("wal.append", bounds=(0.001, 0.01))
        hist.observe(0.005)
        hist.observe(5.0)  # lands in +Inf
        hist.set_exemplar(0.005, "c" * 32, 1700000000.0)
        text = registry.render_prometheus()
        buckets = [l for l in text.splitlines() if "_bucket" in l]
        assert len(buckets) == 3
        with_exemplar = [l for l in buckets if "trace_id" in l]
        assert len(with_exemplar) == 1
        assert 'le="0.01"' in with_exemplar[0]
        assert f'# {{trace_id="{"c" * 32}"}} 0.005' in with_exemplar[0]
        # Exemplar-free buckets keep the plain `name{le} count` shape
        # existing scrapers parse with rsplit.
        for line in buckets:
            if "trace_id" not in line:
                int(line.rsplit(" ", 1)[1])

    def test_to_dict_round_trips_exemplars(self):
        registry = MetricsRegistry()
        hist = registry.histogram("wal.append", bounds=(0.001, 0.01))
        payload = registry.to_dict()
        assert "exemplars" not in payload["histograms"]["wal.append"]
        hist.set_exemplar(0.002, "d" * 32, 1700000000.0)
        payload = registry.to_dict()
        exemplars = payload["histograms"]["wal.append"]["exemplars"]
        (entry,) = exemplars.values()
        assert entry == {"trace_id": "d" * 32, "value": 0.002,
                         "ts": 1700000000.0}
