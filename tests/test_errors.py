"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError), name

    def test_packet_family(self):
        assert issubclass(errors.PacketDecodeError, errors.PacketError)
        assert issubclass(errors.PacketEncodeError, errors.PacketError)
        assert issubclass(errors.ChecksumError, errors.PacketDecodeError)
        assert issubclass(errors.OptionDecodeError, errors.PacketDecodeError)

    def test_protocol_family(self):
        assert issubclass(errors.TlsParseError, errors.ProtocolError)
        assert issubclass(errors.HttpParseError, errors.ProtocolError)

    def test_simulation_family(self):
        assert issubclass(errors.StateMachineError, errors.SimulationError)

    def test_world_family(self):
        assert issubclass(errors.GeoError, errors.WorldError)

    def test_catchable_at_api_boundary(self):
        from repro.netstack.packet import Packet

        with pytest.raises(errors.ReproError):
            Packet.decode(b"")
