"""Unit tests for packet-order reconstruction."""

import random

from repro.core.sequence import reconstruct_order, semantic_rank
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet


def pkt(flags, ts=0.0, seq=0, ack=0, payload=b""):
    return Packet(src="11.0.0.1", dst="198.41.0.1", sport=1, dport=443,
                  seq=seq, ack=ack, flags=flags, ts=ts, payload=payload)


class TestSemanticRank:
    def test_syn_always_first(self):
        syn = semantic_rank(pkt(TCPFlags.SYN, seq=100))
        others = [
            semantic_rank(pkt(TCPFlags.ACK, ack=900)),
            semantic_rank(pkt(TCPFlags.PSHACK, ack=900, payload=b"x")),
            semantic_rank(pkt(TCPFlags.FINACK, ack=950)),
        ]
        assert all(syn < other for other in others)

    def test_rst_always_last(self):
        rst = semantic_rank(pkt(TCPFlags.RST))
        rstack = semantic_rank(pkt(TCPFlags.RSTACK, ack=1))
        others = [
            semantic_rank(pkt(TCPFlags.SYN)),
            semantic_rank(pkt(TCPFlags.ACK, ack=2**32 - 1)),
            semantic_rank(pkt(TCPFlags.FINACK, ack=2**32 - 1)),
        ]
        assert all(rst > other for other in others)
        assert all(rstack > other for other in others)

    def test_ack_number_is_primary_among_non_rst(self):
        early_data = semantic_rank(pkt(TCPFlags.PSHACK, ack=900, payload=b"x"))
        later_ack = semantic_rank(pkt(TCPFlags.ACK, ack=5000))
        assert early_data < later_ack

    def test_class_breaks_ack_ties(self):
        hs_ack = semantic_rank(pkt(TCPFlags.ACK, ack=900))
        data = semantic_rank(pkt(TCPFlags.PSHACK, ack=900, payload=b"x"))
        fin = semantic_rank(pkt(TCPFlags.FINACK, ack=900))
        assert hs_ack < data < fin


class TestReconstruction:
    def canonical(self):
        """A realistic clean inbound capture, in true arrival order."""
        return [
            pkt(TCPFlags.SYN, ts=0.0, seq=100),
            pkt(TCPFlags.ACK, ts=0.0, seq=101, ack=900),          # handshake ACK
            pkt(TCPFlags.PSHACK, ts=0.0, seq=101, ack=900, payload=b"aaa"),
            pkt(TCPFlags.PSHACK, ts=0.0, seq=104, ack=900, payload=b"bbb"),
            pkt(TCPFlags.ACK, ts=0.0, seq=107, ack=2400),         # ACK of response
            pkt(TCPFlags.ACK, ts=0.0, seq=107, ack=3900),         # ACK of response
            pkt(TCPFlags.FINACK, ts=0.0, seq=107, ack=3901),
        ]

    def test_recovers_canonical_order_from_any_shuffle(self):
        canonical = self.canonical()
        expected = [(p.flags, p.seq, p.ack) for p in canonical]
        rng = random.Random(5)
        for _ in range(30):
            shuffled = canonical[:]
            rng.shuffle(shuffled)
            result = [(p.flags, p.seq, p.ack) for p in reconstruct_order(shuffled)]
            assert result == expected

    def test_rsts_sort_last_within_bucket(self):
        packets = [
            pkt(TCPFlags.RST, ts=0.0, seq=104),
            pkt(TCPFlags.SYN, ts=0.0, seq=100),
            pkt(TCPFlags.PSHACK, ts=0.0, seq=101, ack=900, payload=b"x"),
        ]
        ordered = reconstruct_order(packets)
        assert [p.flags for p in ordered] == [TCPFlags.SYN, TCPFlags.PSHACK, TCPFlags.RST]

    def test_bucket_boundaries_respected(self):
        # A RST in an *earlier* bucket must stay before later packets.
        early_rst = pkt(TCPFlags.RST, ts=0.0, seq=50)
        late_data = pkt(TCPFlags.PSHACK, ts=1.0, seq=100, ack=1, payload=b"x")
        ordered = reconstruct_order([late_data, early_rst])
        assert ordered[0].flags.is_rst

    def test_idempotent(self):
        canonical = self.canonical()
        once = reconstruct_order(canonical)
        twice = reconstruct_order(once)
        assert [(p.flags, p.seq, p.ack) for p in once] == [
            (p.flags, p.seq, p.ack) for p in twice
        ]

    def test_data_ordered_by_seq(self):
        a = pkt(TCPFlags.PSHACK, ts=0.0, seq=300, ack=900, payload=b"2")
        b = pkt(TCPFlags.PSHACK, ts=0.0, seq=100, ack=900, payload=b"1")
        assert [p.seq for p in reconstruct_order([a, b])] == [100, 300]

    def test_duplicate_syns_stable(self):
        syn1 = pkt(TCPFlags.SYN, ts=0.0, seq=100)
        syn2 = pkt(TCPFlags.SYN, ts=0.0, seq=100)
        ordered = reconstruct_order([syn1, syn2])
        assert ordered[0] is syn1 and ordered[1] is syn2

    def test_ip_id_monotone_after_reconstruction(self):
        """The property the Figure 2 baseline depends on: reconstructed
        order restores the client's IP-ID progression."""
        canonical = self.canonical()
        stamped = [p.clone(ip_id=100 + i) for i, p in enumerate(canonical)]
        rng = random.Random(9)
        shuffled = stamped[:]
        rng.shuffle(shuffled)
        ordered = reconstruct_order(shuffled)
        assert [p.ip_id for p in ordered] == [100 + i for i in range(len(stamped))]

    def test_empty(self):
        assert reconstruct_order([]) == []


class TestAlreadyOrderedFastPath:
    """The sort-skip fast path must be invisible to callers."""

    def packets(self):
        return [
            pkt(TCPFlags.SYN, ts=0.0, seq=100),
            pkt(TCPFlags.ACK, ts=0.0, seq=101, ack=900),
            pkt(TCPFlags.PSHACK, ts=1.0, seq=101, ack=900, payload=b"aaa"),
            pkt(TCPFlags.RST, ts=2.0, seq=104),
        ]

    def test_monotone_input_returns_copy_in_same_order(self):
        ordered = self.packets()
        result = reconstruct_order(ordered)
        assert [p is q for p, q in zip(result, ordered)] == [True] * len(ordered)
        assert result is not ordered  # always a fresh list
        result.append(ordered[0])
        assert len(ordered) == 4  # caller's list untouched

    def test_fast_path_agrees_with_full_sort_on_every_permutation(self):
        import itertools

        base = self.packets()
        expected = [(p.flags, p.seq, p.ack) for p in reconstruct_order(base)]
        for perm in itertools.permutations(base):
            got = [(p.flags, p.seq, p.ack) for p in reconstruct_order(list(perm))]
            assert got == expected

    def test_single_packet_and_pair(self):
        single = [pkt(TCPFlags.SYN, seq=1)]
        assert reconstruct_order(single) == single
        swapped = [pkt(TCPFlags.RST, ts=0.0, seq=9), pkt(TCPFlags.SYN, ts=0.0, seq=1)]
        assert [p.flags for p in reconstruct_order(swapped)] == [TCPFlags.SYN, TCPFlags.RST]
