"""Unit tests for the traffic generator."""

import math

import pytest

from repro.errors import ConfigError
from repro.workloads.profiles import CountryProfile, DeploymentSpec
from repro.workloads.traffic import TrafficGenerator, is_weekend, local_hour
from repro.workloads.world import World

_DAY = 86400.0


def profiles():
    return [
        CountryProfile(
            code="AA", name="Censorland", weight=2.0, tz_offset=8, n_asns=3,
            p_blocked=0.4, night_boost=2.0, weekend_factor=0.5,
            blocked_categories=(("News", 0.5),),
            deployments=(DeploymentSpec(vendor="single_rst", blocked_share=1.0),),
        ),
        CountryProfile(code="BB", name="Freeland", weight=1.0, tz_offset=-5, n_asns=2),
    ]


@pytest.fixture(scope="module")
def world():
    return World(profiles=profiles(), seed=5, n_domains=300, clients_per_asn=8)


@pytest.fixture(scope="module")
def generator(world):
    return TrafficGenerator(world, seed=5)


class TestTimeHelpers:
    def test_local_hour(self):
        assert local_hour(0.0, 0) == 0.0
        assert local_hour(0.0, 8) == 8.0
        assert local_hour(3600.0 * 20, -5) == 15.0
        assert 0 <= local_hour(123456789.0, 5.5) < 24

    def test_weekend_epoch_anchor(self):
        # 1970-01-01 (ts 0) was a Thursday.
        assert not is_weekend(0.0, 0)
        assert not is_weekend(1 * _DAY, 0)  # Friday
        assert is_weekend(2 * _DAY, 0)  # Saturday
        assert is_weekend(3 * _DAY, 0)  # Sunday
        assert not is_weekend(4 * _DAY, 0)  # Monday


class TestSpecGeneration:
    def test_specs_sorted_and_in_window(self, generator):
        specs = generator.specs(200, start_ts=1000.0, duration=_DAY)
        times = [s.ts for s in specs]
        assert times == sorted(times)
        assert all(1000.0 <= t < 1000.0 + _DAY for t in times)

    def test_conn_ids_unique(self, generator):
        specs = generator.specs(50, start_ts=0.0, duration=_DAY)
        ids = [s.conn_id for s in specs]
        assert len(set(ids)) == len(ids)

    def test_validation(self, generator):
        with pytest.raises(ConfigError):
            generator.specs(-1, 0.0, _DAY)
        with pytest.raises(ConfigError):
            generator.specs(1, 0.0, 0.0)
        with pytest.raises(ConfigError):
            TrafficGenerator(generator.world, diurnal_amplitude=1.5)

    def test_country_weights_respected(self, world):
        gen = TrafficGenerator(world, seed=9, diurnal_amplitude=0.0)
        specs = gen.specs(600, 0.0, _DAY)
        aa = sum(1 for s in specs if s.country == "AA")
        assert 320 <= aa <= 480  # 2:1 weights

    def test_client_fields_consistent(self, world, generator):
        for spec in generator.specs(100, 0.0, _DAY):
            state = world.country(spec.country)
            assert spec.asn in state.asns
            record = world.geo.lookup(spec.client_ip)
            assert record.country == spec.country
            assert record.asn == spec.asn
            assert 1024 <= spec.client_port < 65536
            assert spec.protocol in ("tls", "http")
            assert spec.domain in world.universe
            assert spec.host.endswith(spec.domain)

    def test_keyword_only_on_http(self, generator):
        specs = generator.specs(400, 0.0, _DAY)
        for spec in specs:
            if spec.keyword:
                assert spec.protocol == "http"
                assert spec.split_segments >= 2


class TestBlockedDemandModulation:
    def make_gen(self, world, boost_fn=None):
        return TrafficGenerator(world, seed=3, blocked_boost_fn=boost_fn)

    def test_night_boost(self, world):
        gen = self.make_gen(world)
        profile = profiles()[0]
        # AA local midnight: UTC 16:00 (tz +8).
        night_ts = 16 * 3600.0
        day_ts = 4 * 3600.0  # AA local noon
        p_night = gen._blocked_probability(profile, night_ts)
        p_day = gen._blocked_probability(profile, day_ts)
        assert p_night > p_day

    def test_weekend_factor(self, world):
        gen = self.make_gen(world)
        profile = profiles()[0]
        # Same local hour (noon) on Friday vs Saturday.
        friday_noon = 1 * _DAY + 4 * 3600.0
        saturday_noon = 2 * _DAY + 4 * 3600.0
        assert gen._blocked_probability(profile, saturday_noon) < gen._blocked_probability(
            profile, friday_noon
        )

    def test_boost_fn_applied(self, world):
        gen = self.make_gen(world, boost_fn=lambda code, ts: 0.0)
        profile = profiles()[0]
        assert gen._blocked_probability(profile, 0.0) == 0.0

    def test_probability_capped_at_one(self, world):
        gen = self.make_gen(world, boost_fn=lambda code, ts: 100.0)
        profile = profiles()[0]
        assert gen._blocked_probability(profile, 0.0) == 1.0


class TestRun:
    def test_run_produces_samples_and_timestamps(self, world):
        gen = TrafficGenerator(world, seed=8)
        samples, timestamps = gen.run(60, start_ts=0.0, duration=_DAY)
        assert 0 < len(samples) <= 60
        assert set(timestamps) == {s.conn_id for s in samples}

    def test_run_deterministic(self, world):
        a, _ = TrafficGenerator(world, seed=8).run(40, 0.0, _DAY)
        b, _ = TrafficGenerator(world, seed=8).run(40, 0.0, _DAY)
        assert [s.conn_id for s in a] == [s.conn_id for s in b]
        assert [len(s.packets) for s in a] == [len(s.packets) for s in b]
