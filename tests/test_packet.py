"""Unit tests for the Packet model and its wire encoding."""

import pytest

from repro.errors import ChecksumError, PacketDecodeError
from repro.netstack.flags import TCPFlags
from repro.netstack.options import DEFAULT_CLIENT_OPTIONS, mss_option
from repro.netstack.packet import Packet, PacketDirection


def sample_packet(**overrides):
    base = dict(
        ts=12.5,
        src="11.0.1.2",
        dst="198.41.0.7",
        ttl=57,
        ip_id=4242,
        sport=51000,
        dport=443,
        seq=123456,
        ack=654321,
        flags=TCPFlags.PSHACK,
        window=29200,
        options=(mss_option(1400),),
        payload=b"hello world",
    )
    base.update(overrides)
    return Packet(**base)


class TestConstruction:
    def test_ip_version_derived(self):
        assert sample_packet().ip_version == 4
        assert sample_packet(src="2a00::1", dst="2606:4700::5").ip_version == 6

    def test_seq_ack_wrap(self):
        pkt = sample_packet(seq=2**32 + 7, ack=2**33 + 9)
        assert pkt.seq == 7
        assert pkt.ack == 9

    def test_port_range_enforced(self):
        with pytest.raises(ValueError):
            sample_packet(sport=70000)

    def test_flow_and_conn_key(self):
        pkt = sample_packet()
        assert pkt.flow == ("11.0.1.2", 51000, "198.41.0.7", 443)
        reply = pkt.reply_template()
        assert reply.conn_key == pkt.conn_key
        assert reply.direction == PacketDirection.TO_CLIENT

    def test_has_payload(self):
        assert sample_packet().has_payload
        assert not sample_packet(payload=b"").has_payload

    def test_describe_mentions_flags_and_injected(self):
        text = sample_packet().clone(injected=True).describe()
        assert "PSH+ACK" in text
        assert "[injected]" in text


class TestWireRoundtrip:
    def test_ipv4_roundtrip(self):
        pkt = sample_packet()
        decoded = Packet.decode(pkt.encode(), ts=pkt.ts)
        assert decoded.src == pkt.src
        assert decoded.dst == pkt.dst
        assert decoded.ttl == pkt.ttl
        assert decoded.ip_id == pkt.ip_id
        assert decoded.sport == pkt.sport
        assert decoded.dport == pkt.dport
        assert decoded.seq == pkt.seq
        assert decoded.ack == pkt.ack
        assert decoded.flags == pkt.flags
        assert decoded.window == pkt.window
        assert tuple(decoded.options) == pkt.options
        assert decoded.payload == pkt.payload

    def test_ipv6_roundtrip(self):
        pkt = sample_packet(src="2a00:0:0:1::9", dst="2606:4700::1:2", ip_id=0)
        decoded = Packet.decode(pkt.encode())
        assert decoded.src == pkt.src
        assert decoded.dst == pkt.dst
        assert decoded.ip_version == 6
        assert decoded.payload == pkt.payload

    def test_strict_decode_accepts_valid_checksum(self):
        pkt = sample_packet()
        assert Packet.decode(pkt.encode(), strict=True).seq == pkt.seq

    def test_strict_decode_rejects_corrupted(self):
        raw = bytearray(sample_packet().encode())
        raw[-1] ^= 0xFF  # flip a payload byte
        with pytest.raises(ChecksumError):
            Packet.decode(bytes(raw), strict=True)

    def test_lenient_decode_ignores_corruption(self):
        raw = bytearray(sample_packet().encode())
        raw[-1] ^= 0xFF
        assert Packet.decode(bytes(raw)).payload.endswith(b"worl" + bytes([ord("d") ^ 0xFF]))

    def test_full_default_options_roundtrip(self):
        pkt = sample_packet(options=DEFAULT_CLIENT_OPTIONS)
        assert tuple(Packet.decode(pkt.encode()).options) == DEFAULT_CLIENT_OPTIONS


class TestDecodeErrors:
    def test_empty(self):
        with pytest.raises(PacketDecodeError):
            Packet.decode(b"")

    def test_bad_version(self):
        with pytest.raises(PacketDecodeError):
            Packet.decode(b"\x50" + bytes(40))

    def test_short_ipv4(self):
        with pytest.raises(PacketDecodeError):
            Packet.decode(b"\x45" + bytes(10))

    def test_non_tcp_protocol(self):
        raw = bytearray(sample_packet().encode())
        raw[9] = 17  # UDP
        with pytest.raises(PacketDecodeError):
            Packet.decode(bytes(raw))

    def test_truncated_tcp_header(self):
        raw = sample_packet().encode()[:24]  # IPv4 header + 4 TCP bytes
        with pytest.raises(PacketDecodeError):
            Packet.decode(raw)

    def test_bad_data_offset(self):
        raw = bytearray(sample_packet(options=()).encode())
        raw[20 + 12] = 0x30  # data offset 12 words > segment length
        with pytest.raises(PacketDecodeError):
            Packet.decode(bytes(raw))


class TestClone:
    def test_clone_overrides(self):
        pkt = sample_packet()
        moved = pkt.clone(ttl=9, ts=99.0)
        assert moved.ttl == 9 and moved.ts == 99.0
        assert pkt.ttl == 57  # original untouched

    def test_clone_preserves_annotations(self):
        pkt = sample_packet().clone(injected=True)
        assert pkt.clone(ttl=1).injected
