"""Unit tests for shared utilities."""

import random

import pytest

from repro._util import (
    chunk_payload,
    clamp,
    cumulative,
    derive_rng,
    derive_seed,
    int_to_ipv4,
    int_to_ipv6,
    ip_version,
    ipv4_to_int,
    ipv6_to_int,
    pairwise,
    stable_hash,
    weighted_choice,
    zipf_weights,
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_sensitive_to_parts(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)
        assert stable_hash("a", 1) != stable_hash("b", 1)

    def test_no_concatenation_collision(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_64_bit_range(self):
        assert 0 <= stable_hash("x") < 2**64


class TestDeriveRng:
    def test_independent_streams(self):
        a = derive_rng(7, "alpha")
        b = derive_rng(7, "beta")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_reproducible(self):
        assert derive_rng(7, "x").random() == derive_rng(7, "x").random()

    def test_seed_derivation(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestIpConversions:
    def test_ipv4_roundtrip(self):
        for addr in ("0.0.0.0", "10.1.2.3", "255.255.255.255", "198.41.128.7"):
            assert int_to_ipv4(ipv4_to_int(addr)) == addr

    def test_ipv6_roundtrip(self):
        for addr in ("::", "2a00::1", "2606:4700::abcd:1"):
            assert int_to_ipv6(ipv6_to_int(addr)) == addr

    def test_ip_version(self):
        assert ip_version("10.0.0.1") == 4
        assert ip_version("2a00::1") == 6
        with pytest.raises(ValueError):
            ip_version("not-an-ip")


class TestZipfWeights:
    def test_normalized(self):
        assert sum(zipf_weights(100)) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(50, exponent=1.2)
        assert all(a > b for a, b in zip(w, w[1:]))

    def test_single(self):
        assert zipf_weights(1) == [1.0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestWeightedChoice:
    def test_respects_weights(self):
        rng = random.Random(1)
        picks = [weighted_choice(rng, ["a", "b"], [0.99, 0.01]) for _ in range(200)]
        assert picks.count("a") > 180

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), ["a"], [0.5, 0.5])


class TestChunkPayload:
    def test_exact_multiple(self):
        assert chunk_payload(b"abcdef", 2) == [b"ab", b"cd", b"ef"]

    def test_remainder(self):
        assert chunk_payload(b"abcde", 2) == [b"ab", b"cd", b"e"]

    def test_empty(self):
        assert chunk_payload(b"", 5) == []

    def test_invalid_mss(self):
        with pytest.raises(ValueError):
            chunk_payload(b"x", 0)


class TestSmallHelpers:
    def test_clamp(self):
        assert clamp(5, 0, 10) == 5
        assert clamp(-1, 0, 10) == 0
        assert clamp(11, 0, 10) == 10

    def test_cumulative(self):
        assert cumulative([1, 2, 3]) == [1, 3, 6]
        assert cumulative([]) == []

    def test_pairwise(self):
        assert list(pairwise([1, 2, 3])) == [(1, 2), (2, 3)]
        assert list(pairwise([1])) == []
