"""Cached-vs-uncached parity: the fast path must change nothing.

The feature-key memo (:mod:`repro.core.featurekey`) and the
``classify_batch`` worker pool are pure performance features; these
tests enforce the tentpole invariant that every Table 1 decision --
signature, stage, ``possibly_tampered``, ``silence_gap``,
``n_data_segments`` (plus protocol/domain, which are never memoized) --
is bit-identical with and without them, over randomized, shuffled and
truncated captures covering all 19 signatures.
"""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.cdn.collector import ConnectionSample
from repro.core.classifier import ClassifierConfig, TamperingClassifier
from repro.core.featurekey import feature_key
from repro.core.model import SignatureId
from repro.errors import ClassificationError
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet

CLIENT = "11.0.0.5"
SERVER = "198.41.7.7"


def _pkt(ts, flags, seq=0, ack=0, payload=b"", ip_id=0, sport=40000):
    return Packet(
        ts=ts, src=CLIENT, dst=SERVER, sport=sport, dport=443,
        seq=seq, ack=ack, flags=flags, payload=payload, ip_id=ip_id,
    )


def _sample(packets: List[Packet], window_end: float, conn_id: int = 1) -> ConnectionSample:
    return ConnectionSample(
        conn_id=conn_id, packets=packets, window_end=window_end,
        client_ip=CLIENT, client_port=40000, server_ip=SERVER,
        server_port=443, ip_version=4,
    )


def _random_capture(rng: random.Random, conn_id: int) -> ConnectionSample:
    """A randomized capture that can land in any stage of the taxonomy.

    Builds a plausible inbound-only connection prefix (SYNs, handshake
    ACK, data segments, response ACKs, FIN) and then a random event
    (pure RSTs with assorted ack values including the forged 0, RST+ACKs,
    silence, or a clean close), with timestamps floored to 1 s, shuffled
    storage order and random truncation -- the distortions the real
    pipeline applies.
    """
    isn = rng.randrange(1, 2**31)
    server_isn = rng.randrange(1, 2**31)
    packets: List[Packet] = []
    t = float(rng.randrange(0, 5))

    packets.append(_pkt(t, TCPFlags.SYN, seq=isn, ip_id=rng.randrange(0, 65536)))
    if rng.random() < 0.2:  # duplicate SYN (retransmission)
        packets.append(_pkt(t + rng.choice([0.0, 1.0]), TCPFlags.SYN, seq=isn))
    stage_depth = rng.randrange(0, 4)  # 0=post-syn .. 3=post-data
    seq = isn + 1
    if stage_depth >= 1:
        t += rng.choice([0.0, 1.0])
        packets.append(_pkt(t, TCPFlags.ACK, seq=seq, ack=server_isn + 1))
    if stage_depth >= 2:
        payload = bytes([rng.randrange(1, 255)]) * rng.randrange(1, 40)
        t += rng.choice([0.0, 1.0])
        packets.append(_pkt(t, TCPFlags.PSHACK, seq=seq, ack=server_isn + 1, payload=payload))
        if rng.random() < 0.3:  # retransmission of the trigger segment
            packets.append(_pkt(t + rng.choice([0.0, 1.0]), TCPFlags.PSHACK,
                                seq=seq, ack=server_isn + 1, payload=payload))
        seq += len(payload)
    if stage_depth >= 3:
        extra = rng.randrange(1, 3)
        for _ in range(extra):
            kind = rng.randrange(0, 3)
            t += rng.choice([0.0, 1.0])
            if kind == 0:  # second data segment
                payload = b"x" * rng.randrange(1, 20)
                packets.append(_pkt(t, TCPFlags.PSHACK, seq=seq,
                                    ack=server_isn + 1, payload=payload))
                seq += len(payload)
            elif kind == 1:  # ACK of the response
                packets.append(_pkt(t, TCPFlags.ACK, seq=seq,
                                    ack=server_isn + rng.randrange(2, 3000)))
            else:  # client FIN
                packets.append(_pkt(t, TCPFlags.FINACK, seq=seq, ack=server_isn + 1))

    event = rng.randrange(0, 4)
    if event == 0:  # pure RSTs, assorted forged acks (incl. the 0 pattern)
        for _ in range(rng.randrange(1, 4)):
            ack = rng.choice([0, 0, server_isn + 1, rng.randrange(1, 2**31)])
            t += rng.choice([0.0, 1.0])
            packets.append(_pkt(t, TCPFlags.RST, seq=rng.randrange(1, 2**31), ack=ack))
    elif event == 1:  # RST+ACK teardown(s)
        for _ in range(rng.randrange(1, 3)):
            t += rng.choice([0.0, 1.0])
            packets.append(_pkt(t, TCPFlags.RSTACK, seq=seq, ack=server_isn + 1))
    elif event == 2 and rng.random() < 0.5:  # mixed RST / RST+ACK
        packets.append(_pkt(t, TCPFlags.RST, seq=seq, ack=0))
        packets.append(_pkt(t + 1.0, TCPFlags.RSTACK, seq=seq, ack=server_isn + 1))
    # event == 3 (and half of 2): silence -- no tear-down at all.

    rng.shuffle(packets)  # storage order is arbitrary within the capture
    if len(packets) > 3 and rng.random() < 0.3:
        packets = packets[: rng.randrange(3, len(packets) + 1)]  # truncation
    watch = rng.choice([1.0, 2.5, 3.0, 4.0, 10.0])
    window_end = max(p.ts for p in packets) + watch
    return _sample(packets, window_end, conn_id=conn_id)


def _decision(result):
    return (
        result.signature,
        result.stage,
        result.possibly_tampered,
        result.silence_gap,
        result.n_data_segments,
        result.protocol,
        result.domain,
    )


class TestCacheConfig:
    def test_cache_size_validation(self):
        with pytest.raises(ClassificationError):
            ClassifierConfig(cache_size=-1)
        with pytest.raises(ClassificationError):
            TamperingClassifier().classify_batch([], workers=-1)

    def test_cache_disabled_records_nothing(self):
        classifier = TamperingClassifier(ClassifierConfig(cache_size=0))
        sample = _sample([_pkt(0.0, TCPFlags.SYN, seq=5)], window_end=10.0)
        classifier.classify(sample)
        info = classifier.cache_info()
        assert info.currsize == 0 and info.hits == 0 and info.misses == 0

    def test_cache_hits_on_equivalent_connections(self):
        classifier = TamperingClassifier()
        for conn_id, isn in enumerate([100, 9999, 123456]):
            sample = _sample(
                [_pkt(float(conn_id), TCPFlags.SYN, seq=isn),
                 _pkt(float(conn_id), TCPFlags.RST, seq=isn + 1, ack=0)],
                window_end=float(conn_id) + 10.0,
                conn_id=conn_id,
            )
            result = classifier.classify(sample)
            assert result.signature == SignatureId.SYN_RST
        info = classifier.cache_info()
        assert info.misses == 1 and info.hits == 2  # ISN/time renumbered away

    def test_lru_eviction_is_bounded(self):
        classifier = TamperingClassifier(ClassifierConfig(cache_size=4))
        for i in range(10):
            sample = _sample(
                [_pkt(0.0, TCPFlags.SYN, seq=1),
                 _pkt(float(i), TCPFlags.RST, seq=2, ack=0)],
                window_end=float(i) + 10.0,
            )
            classifier.classify(sample)
        assert classifier.cache_info().currsize == 4

    def test_cache_clear(self):
        classifier = TamperingClassifier()
        sample = _sample([_pkt(0.0, TCPFlags.SYN, seq=5)], window_end=10.0)
        classifier.classify(sample)
        classifier.classify(sample)
        assert classifier.cache_info().hits == 1
        classifier.cache_clear()
        info = classifier.cache_info()
        assert info.hits == 0 and info.misses == 0 and info.currsize == 0


class TestFeatureKey:
    def test_shuffle_invariant_with_reorder(self):
        rng = random.Random(3)
        sample = _random_capture(rng, conn_id=1)
        base = feature_key(sample.packets, sample.window_end, 10, reorder=True)
        for _ in range(5):
            shuffled = list(sample.packets)
            rng.shuffle(shuffled)
            assert feature_key(shuffled, sample.window_end, 10, reorder=True) == base

    def test_stored_order_matters_without_reorder(self):
        a = _pkt(0.0, TCPFlags.SYN, seq=1)
        b = _pkt(0.0, TCPFlags.RST, seq=2, ack=7)
        k1 = feature_key([a, b], 10.0, 10, reorder=False)
        k2 = feature_key([b, a], 10.0, 10, reorder=False)
        assert k1 != k2

    def test_time_and_isn_translation_invariant(self):
        def build(t0, isn):
            return [
                _pkt(t0, TCPFlags.SYN, seq=isn),
                _pkt(t0 + 1.0, TCPFlags.ACK, seq=isn + 1, ack=500),
            ]

        k1 = feature_key(build(0.0, 100), 10.0, 10, reorder=True)
        k2 = feature_key(build(700.0, 424242), 710.0, 10, reorder=True)
        assert k1 == k2

    def test_ack_zero_not_collapsed_with_smallest_ack(self):
        # ack==0 drives the RST(0) signature; renumbering must keep it
        # distinct from "smallest non-zero ack".
        base = [_pkt(0.0, TCPFlags.PSHACK, seq=1, ack=9, payload=b"q")]
        zero = base + [_pkt(1.0, TCPFlags.RST, seq=2, ack=0),
                       _pkt(1.0, TCPFlags.RST, seq=2, ack=9)]
        nonzero = base + [_pkt(1.0, TCPFlags.RST, seq=2, ack=5),
                          _pkt(1.0, TCPFlags.RST, seq=2, ack=9)]
        assert (feature_key(zero, 10.0, 10, True)
                != feature_key(nonzero, 10.0, 10, True))

    def test_full_buffer_ignores_window_end(self):
        packets = [_pkt(float(i), TCPFlags.ACK, seq=1, ack=i + 1) for i in range(10)]
        k1 = feature_key(packets, 100.0, max_packets=10, reorder=True)
        k2 = feature_key(packets, 500.0, max_packets=10, reorder=True)
        assert k1 == k2
        # ... but a truncated capture must keep the slack.
        k3 = feature_key(packets[:5], 100.0, max_packets=10, reorder=True)
        k4 = feature_key(packets[:5], 500.0, max_packets=10, reorder=True)
        assert k3 != k4


class TestRandomizedParity:
    """The tentpole guarantee: zero divergent classifications."""

    N_CAPTURES = 400

    def _captures(self) -> List[ConnectionSample]:
        rng = random.Random(1729)
        return [_random_capture(rng, conn_id=i) for i in range(self.N_CAPTURES)]

    def test_cached_equals_uncached_on_randomized_captures(self):
        captures = self._captures()
        cached = TamperingClassifier(ClassifierConfig(cache_size=256))
        uncached = TamperingClassifier(ClassifierConfig(cache_size=0))
        divergent = [
            (s.conn_id, _decision(a), _decision(b))
            for s, a, b in zip(
                captures, cached.classify_all(captures), uncached.classify_all(captures)
            )
            if _decision(a) != _decision(b)
        ]
        assert divergent == []
        info = cached.cache_info()
        assert info.hits > 0  # the workload is actually repetitive

    def test_parity_covers_every_stage_without_reorder(self):
        captures = self._captures()
        config_c = ClassifierConfig(reorder=False, cache_size=256)
        config_u = ClassifierConfig(reorder=False, cache_size=0)
        cached = TamperingClassifier(config_c).classify_all(captures)
        uncached = TamperingClassifier(config_u).classify_all(captures)
        assert [_decision(r) for r in cached] == [_decision(r) for r in uncached]

    def test_shuffled_storage_order_shares_decisions(self):
        rng = random.Random(99)
        captures = self._captures()[:100]
        classifier = TamperingClassifier()
        baseline = [_decision(r) for r in classifier.classify_all(captures)]
        shuffled_samples = []
        for sample in captures:
            packets = list(sample.packets)
            rng.shuffle(packets)
            shuffled_samples.append(_sample(packets, sample.window_end, sample.conn_id))
        shuffled = [_decision(r) for r in classifier.classify_all(shuffled_samples)]
        assert baseline == shuffled

    def test_all_19_signatures_reachable_and_cached_identically(self, small_study):
        """Study traffic: every signature the world produces, twice."""
        samples = small_study.samples
        cached = TamperingClassifier()
        uncached = TamperingClassifier(ClassifierConfig(cache_size=0))
        results_c = cached.classify_all(samples)
        results_u = uncached.classify_all(samples)
        assert [_decision(a) for a in results_c] == [_decision(b) for b in results_u]
        seen = {r.signature for r in results_c if r.signature.is_tampering}
        assert len(seen) >= 10  # a broad slice of the 19-signature catalogue
        assert cached.cache_info().hit_rate > 0.5


class TestBatchParity:
    def test_classify_batch_matches_sequential(self):
        rng = random.Random(7)
        captures = [_random_capture(rng, conn_id=i) for i in range(240)]
        classifier = TamperingClassifier()
        sequential = classifier.classify_all(captures)
        parallel = TamperingClassifier().classify_batch(captures, workers=2, batch_size=16)
        assert len(parallel) == len(sequential)
        for seq_result, par_result in zip(sequential, parallel):
            assert _decision(seq_result) == _decision(par_result)
            assert par_result.sample is seq_result.sample  # caller's objects

    def test_classify_batch_serial_fallback(self):
        rng = random.Random(8)
        captures = [_random_capture(rng, conn_id=i) for i in range(20)]
        classifier = TamperingClassifier()
        assert [_decision(r) for r in classifier.classify_batch(captures, workers=0)] == [
            _decision(r) for r in classifier.classify_all(captures)
        ]

    def test_classify_batch_empty(self):
        assert TamperingClassifier().classify_batch([], workers=4) == []
