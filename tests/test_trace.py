"""Tests for end-to-end request tracing: trace context parsing and
propagation, the bounded span-tree recorder, exemplars, the critical-
path analyzer, and the ``repro trace`` CLI.

The acceptance test is the serve round trip: one sampled
``POST /v1/samples`` must yield a single connected span tree -- one
trace id, valid parent links, no orphans -- spanning HTTP accept,
batcher enqueue and queue wait, classify, rollup fold, and WAL append,
with the trace id surfacing as an exemplar in ``/metrics``.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.cli import main
from repro.errors import ServeError, StreamError
from repro.obs import (
    NULL_RECORDER,
    HeadSampler,
    MetricsRegistry,
    Observability,
    SpanRecorder,
    TraceContext,
    build_trees,
    critical_path,
    mint_span_id,
    mint_trace_id,
    parse_traceparent,
    render_trace_report,
    stage_self_times,
    trace_report_data,
)
from repro.serve import ServeClient, ServeConfig, ServeService
from repro.stream import IterableSource, StreamEngine, StreamItem
from repro.workloads.scenarios import two_week_study


@pytest.fixture(scope="module")
def study():
    return two_week_study(n_connections=200, seed=13)


# ----------------------------------------------------------------------
# Trace context: minting, wire format, parsing
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_mint_shapes(self):
        assert len(mint_trace_id()) == 32
        assert len(mint_span_id()) == 16
        assert mint_trace_id() != mint_trace_id()

    def test_traceparent_round_trip(self):
        ctx = TraceContext(mint_trace_id(), mint_span_id(), sampled=True)
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed == ctx

    def test_unsampled_flag_round_trip(self):
        ctx = TraceContext(mint_trace_id(), mint_span_id(), sampled=False)
        header = ctx.to_traceparent()
        assert header.endswith("-00")
        assert parse_traceparent(header).sampled is False

    def test_with_parent_keeps_trace_id(self):
        ctx = TraceContext(mint_trace_id(), mint_span_id())
        child = ctx.with_parent("deadbeefdeadbeef")
        assert child.trace_id == ctx.trace_id
        assert child.span_id == "deadbeefdeadbeef"

    @pytest.mark.parametrize("header", [
        None,
        "",
        "not a header",
        "00-abc-def-01",                                   # wrong lengths
        "01-" + "a" * 32 + "-" + "b" * 16 + "-01",          # bad version
        "00-" + "A" * 32 + "-" + "b" * 16 + "-01",          # uppercase hex
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",          # all-zero trace
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",          # all-zero span
        "00-" + "a" * 32 + "-" + "b" * 16 + "-1",           # short flags
        "00-" + "a" * 32 + "-" + "b" * 16,                  # missing flags
    ])
    def test_malformed_is_treated_as_absent(self, header):
        assert parse_traceparent(header) is None


class TestHeadSampler:
    def test_zero_disables(self):
        sampler = HeadSampler(0)
        assert not any(sampler.decide() for _ in range(10))

    def test_one_samples_everything(self):
        sampler = HeadSampler(1)
        assert all(sampler.decide() for _ in range(10))

    def test_one_in_n_and_first_is_sampled(self):
        sampler = HeadSampler(4)
        decisions = [sampler.decide() for _ in range(9)]
        assert decisions == [True, False, False, False,
                             True, False, False, False, True]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HeadSampler(-1)


# ----------------------------------------------------------------------
# The recorder: nesting, bounds, eviction, pinning, exemplars
# ----------------------------------------------------------------------
def _ctx():
    return TraceContext(mint_trace_id(), mint_span_id(), sampled=True)


class TestSpanRecorder:
    def test_inactive_recorder_stores_nothing(self):
        rec = SpanRecorder()
        assert rec.active is None
        assert rec.record_span("x", 0.0, 0.1) is None
        assert rec.spans() == []

    def test_unsampled_context_deactivates(self):
        rec = SpanRecorder()
        rec.activate(TraceContext(mint_trace_id(), mint_span_id(),
                                  sampled=False))
        assert rec.active is None

    def test_begin_finish_nest_under_stack(self):
        rec = SpanRecorder()
        ctx = _ctx()
        rec.activate(ctx)
        outer = rec.begin("fold")
        inner = rec.begin("wal.append")
        rec.finish(inner)
        rec.finish(outer)
        spans = {s["name"]: s for s in rec.spans()}
        assert spans["fold"]["parent"] == ctx.span_id
        assert spans["wal.append"]["parent"] == spans["fold"]["span"]
        assert spans["fold"]["trace"] == ctx.trace_id

    def test_record_span_explicit_ctx_parent_semantics(self):
        rec = SpanRecorder()
        ctx = _ctx()
        child = rec.record_span("queue", 0.0, 0.1, ctx=ctx)
        root = rec.record_span("request", 0.0, 0.2, ctx=ctx,
                               span_id=ctx.span_id, parent_id="")
        assert child is not None and root == ctx.span_id
        spans = {s["name"]: s for s in rec.spans()}
        assert spans["queue"]["parent"] == ctx.span_id
        assert spans["request"]["parent"] is None

    def test_max_spans_per_trace_drops_and_counts(self):
        rec = SpanRecorder(max_spans_per_trace=3)
        rec.activate(_ctx())
        for i in range(5):
            rec.record_span(f"s{i}", float(i), 0.01)
        assert len(rec.spans()) == 3
        assert rec.stats()["dropped_spans"] == 2

    def test_eviction_drops_cheapest_unpinned(self):
        rec = SpanRecorder(max_traces=2)
        cheap, costly, newcomer = _ctx(), _ctx(), _ctx()
        rec.record_span("a", 0.0, 0.001, ctx=cheap)
        rec.record_span("b", 0.0, 5.0, ctx=costly)
        rec.record_span("c", 0.0, 0.5, ctx=newcomer)
        traces = {s["trace"] for s in rec.spans()}
        assert traces == {costly.trace_id, newcomer.trace_id}
        assert rec.stats()["evicted_traces"] == 1

    def test_pinned_trace_survives_eviction(self):
        rec = SpanRecorder(max_traces=2)
        pinned, costly, newcomer = _ctx(), _ctx(), _ctx()
        rec.record_span("a", 0.0, 0.001, ctx=pinned)
        rec.pin(pinned.trace_id, "http.429")
        rec.record_span("b", 0.0, 5.0, ctx=costly)
        rec.record_span("c", 0.0, 0.5, ctx=newcomer)
        spans = rec.spans()
        traces = {s["trace"] for s in spans}
        assert pinned.trace_id in traces
        pinned_span = next(s for s in spans if s["trace"] == pinned.trace_id)
        assert pinned_span["pinned"] == "http.429"

    def test_exemplars_attach_to_matching_histograms(self):
        registry = MetricsRegistry()
        hist = registry.histogram("wal.append")
        rec = SpanRecorder(registry=registry)
        ctx = _ctx()
        rec.record_span("wal.append", time.perf_counter(), 0.002, ctx=ctx)
        assert hist.exemplars, "span did not leave an exemplar"
        (exemplar,) = hist.exemplars.values()
        assert exemplar[0] == ctx.trace_id
        text = registry.render_prometheus()
        assert f'# {{trace_id="{ctx.trace_id}"}}' in text

    def test_null_recorder_is_inert(self):
        NULL_RECORDER.activate(_ctx())
        assert NULL_RECORDER.active is None
        NULL_RECORDER.finish(NULL_RECORDER.begin("x"))
        assert NULL_RECORDER.record_span("x", 0.0, 0.1) is None
        assert NULL_RECORDER.spans() == []
        assert NULL_RECORDER.stats()["spans"] == 0


# ----------------------------------------------------------------------
# Offline analysis: trees, critical path, report
# ----------------------------------------------------------------------
def _span(name, trace, span, parent, ts, duration):
    return {"kind": "trace", "name": name, "trace": trace, "span": span,
            "parent": parent, "ts": ts, "duration_seconds": duration}


class TestSpanTreeAnalysis:
    def test_build_trees_links_and_orphans_become_roots(self):
        spans = [
            _span("request", "t1", "r", None, 0.0, 0.5),
            _span("fold", "t1", "f", "r", 0.1, 0.3),
            _span("wal", "t1", "w", "f", 0.2, 0.1),
            _span("orphan", "t1", "o", "missing-parent", 0.3, 0.05),
            {"kind": "span", "name": "ring-span", "ts": 0.0,
             "duration_seconds": 0.1},
        ]
        trees = build_trees(spans)
        roots = trees["t1"]
        assert [r.name for r in roots] == ["request", "orphan"]
        request = roots[0]
        assert [c.name for c in request.walk()] == ["request", "fold", "wal"]

    def test_critical_path_follows_latest_end(self):
        # The fold branch ends later than the request span itself: the
        # async tree's wall time is governed by the fold chain.
        spans = [
            _span("request", "t1", "r", None, 0.0, 0.2),
            _span("enqueue", "t1", "e", "r", 0.05, 0.01),
            _span("fold", "t1", "f", "r", 0.3, 0.4),
            _span("wal", "t1", "w", "f", 0.5, 0.15),
        ]
        path = critical_path(build_trees(spans)["t1"])
        assert [n.name for n in path] == ["request", "fold", "wal"]

    def test_self_time_subtracts_children_and_clamps(self):
        spans = [
            _span("fold", "t1", "f", None, 0.0, 0.4),
            _span("wal", "t1", "w", "f", 0.1, 0.3),
        ]
        trees = build_trees(spans)
        (fold,) = trees["t1"]
        assert fold.self_time() == pytest.approx(0.1)
        totals = stage_self_times(trees)
        assert totals["wal"] == pytest.approx(0.3)
        # A child reported longer than its parent must not go negative.
        overlong = build_trees([
            _span("fold", "t2", "f", None, 0.0, 0.1),
            _span("wal", "t2", "w", "f", 0.0, 0.5),
        ])
        assert overlong["t2"][0].self_time() == 0.0

    def test_report_data_ranks_filters_and_renders(self):
        spans = [
            _span("request", "slow", "r1", None, 0.0, 1.0),
            _span("fold", "slow", "f1", "r1", 0.1, 0.8),
            _span("request", "fast", "r2", None, 0.0, 0.01),
        ]
        data = trace_report_data(spans, top=1)
        assert data["n_traces"] == 2
        assert [t["trace_id"] for t in data["traces"]] == ["slow"]
        assert data["traces"][0]["critical_path"][0]["name"] == "request"
        filtered = trace_report_data(spans, top=5, trace_filter="fast")
        assert [t["trace_id"] for t in filtered["traces"]] == ["fast"]
        text = render_trace_report(data)
        assert "critical path:" in text
        assert "per-stage self time" in text
        assert "request" in text


# ----------------------------------------------------------------------
# Engine integration: pull-mode head sampling
# ----------------------------------------------------------------------
class TestEngineTracing:
    def test_trace_sample_n_validated(self, study):
        source = IterableSource(study.samples, timestamps=study.timestamps)
        with pytest.raises(StreamError):
            StreamEngine(source, n_workers=0, trace_sample_n=-1)

    def test_pull_mode_traces_cover_the_fold_path(self, study, tmp_path):
        obs = Observability()
        engine = StreamEngine(
            IterableSource(study.samples, timestamps=study.timestamps),
            geodb=study.world.geo,
            n_workers=0,
            store_dir=str(tmp_path / "store"),
            obs=obs,
            trace_sample_n=16,
        )
        report = engine.run()
        assert report.samples_processed == len(study.samples)
        spans = obs.trace_recorder.spans()
        assert spans, "head sampling produced no spans"
        names = {s["name"] for s in spans}
        assert "rollup.fold" in names
        assert "wal.append" in names
        assert names & {"classify", "classify.hit", "classify.miss"}
        # wal.append nests under the fold via the begin/finish stack.
        by_id = {s["span"]: s for s in spans}
        wal = next(s for s in spans if s["name"] == "wal.append")
        assert by_id[wal["parent"]]["name"] == "rollup.fold"
        # The recorder never leaks an active context past the run.
        assert obs.trace_recorder.active is None

    def test_untraced_run_records_no_trace_spans(self, study):
        obs = Observability()
        engine = StreamEngine(
            IterableSource(study.samples, timestamps=study.timestamps),
            geodb=study.world.geo,
            n_workers=0,
            obs=obs,
        )
        engine.run()
        assert obs.trace_recorder.stats()["spans"] == 0

    def test_stream_item_trace_does_not_affect_equality(self, study):
        sample = study.samples[0]
        plain = StreamItem(sample=sample, ts=1.0)
        traced = StreamItem(sample=sample, ts=1.0, trace=_ctx())
        assert plain == traced


# ----------------------------------------------------------------------
# Serve round trip: the acceptance test
# ----------------------------------------------------------------------
class RunningService:
    def __init__(self, service):
        self.service = service
        self.thread = threading.Thread(target=service.run, daemon=True)

    def __enter__(self):
        self.thread.start()
        assert self.service.ready.wait(15), "service never became ready"
        return self.service

    def __exit__(self, exc_type, exc, tb):
        if self.thread.is_alive():
            self.service.request_shutdown_threadsafe()
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "service failed to drain"


def _wait_folded(client, n, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            payload = client._json("GET", "/readyz")
        except ServeError:
            time.sleep(0.02)
            continue
        if payload.get("folded", -1) >= n and payload.get("queued") == 0:
            return
        time.sleep(0.02)
    raise AssertionError(f"server never folded {n} records")


class TestServeTracing:
    def test_sampled_post_yields_one_connected_span_tree(
        self, tmp_path, study, capsys
    ):
        obs_dir = str(tmp_path / "obs")
        service = ServeService(
            str(tmp_path / "store"),
            config=ServeConfig(port=0, batch_max_delay_seconds=0.005),
            geodb=study.geo,
            obs_dir=obs_dir,
        )
        n = 40
        with RunningService(service):
            client = ServeClient(port=service.port, trace_sample_n=1)
            client.post_samples(study.samples[:n],
                                timestamps=study.timestamps)
            ctx = client.last_trace
            assert ctx is not None and ctx.sampled
            _wait_folded(client, n)
            metrics_text = client.metrics_text()
            client.close()

        spans = [s for s in service.obs.trace_recorder.spans()
                 if s["trace"] == ctx.trace_id]
        assert spans, "the sampled POST left no spans"

        # One trace id, every parent link resolves, no orphans: the
        # only unrecorded parent is the client's root span id.
        by_id = {s["span"]: s for s in spans}
        roots = [s for s in spans if s["parent"] not in by_id]
        assert len(roots) == 1
        request = roots[0]
        assert request["name"] == "serve.http.samples"
        assert request["parent"] == ctx.span_id
        assert request["attrs"]["status"] == 202

        names = {s["name"] for s in spans}
        assert {"serve.http.samples", "batcher.enqueue",
                "batcher.queue_wait", "rollup.fold",
                "wal.append"} <= names
        assert names & {"classify.hit", "classify.miss", "classify"}

        # The whole tree hangs together under the request span.
        trees = build_trees(spans)
        assert list(trees) == [ctx.trace_id]
        assert len(trees[ctx.trace_id]) == 1
        walked = sum(1 for _ in trees[ctx.trace_id][0].walk())
        assert walked == len(spans)

        # The trace id surfaces as an exemplar on /metrics.
        assert f'trace_id="{ctx.trace_id}"' in metrics_text

        # ... and `repro trace` reconstructs the critical path from the
        # drain's export.
        assert main(["trace", obs_dir, "--trace", ctx.trace_id]) == 0
        out = capsys.readouterr().out
        assert ctx.trace_id in out
        assert "critical path:" in out
        assert "serve.http.samples" in out
        data = json.loads(
            (main(["trace", obs_dir, "--json"]), capsys.readouterr().out)[1]
        )
        assert data["n_traces"] >= 1
        assert any(t["trace_id"] == ctx.trace_id for t in data["traces"])

    def test_client_traceparent_is_echoed_and_unsampled_is_untraced(
        self, tmp_path, study
    ):
        service = ServeService(
            str(tmp_path / "store"),
            config=ServeConfig(port=0, trace_sample_n=0),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port)
            unsampled = TraceContext(mint_trace_id(), mint_span_id(),
                                     sampled=False)
            status, headers, _ = client._request(
                "POST", "/v1/samples", body=b"[]",
                headers={"Content-Type": "application/json",
                         "traceparent": unsampled.to_traceparent()},
            )
            assert status == 202
            # Echoed untouched: the caller said "don't sample".
            assert headers.get("traceparent") == unsampled.to_traceparent()

            sampled = TraceContext(mint_trace_id(), mint_span_id())
            status, headers, _ = client._request(
                "POST", "/v1/samples", body=b"[]",
                headers={"Content-Type": "application/json",
                         "traceparent": sampled.to_traceparent()},
            )
            assert status == 202
            echoed = parse_traceparent(headers.get("traceparent"))
            assert echoed.trace_id == sampled.trace_id
            assert echoed.span_id != sampled.span_id  # server request span
            client.close()

        spans = service.obs.trace_recorder.spans()
        traces = {s["trace"] for s in spans}
        assert unsampled.trace_id not in traces
        assert sampled.trace_id in traces

    def test_rejections_are_pinned_with_request_context(
        self, tmp_path, study
    ):
        service = ServeService(
            str(tmp_path / "store"),
            config=ServeConfig(
                port=0,
                trace_sample_n=0,  # only the rejection mint traces here
                rate_records_per_second=1e6,
                rate_burst_records=8,
            ),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port)
            status, headers, payload = client._request(
                "POST", "/v1/samples",
                body=json.dumps(
                    [s.to_dict() for s in study.samples[:9]]
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            assert status == 429
            body = json.loads(payload)
            assert body["request_id"] == headers["x-request-id"]
            client.close()

        spans = service.obs.trace_recorder.spans()
        rejected = [s for s in spans if s.get("pinned") == "http.429"]
        assert rejected, "429 was not captured as a pinned trace"
        assert rejected[0]["attrs"]["status"] == 429
        events = service.obs.tracer.events("serve.rejected")
        assert events and events[0]["attrs"]["status"] == 429
        assert events[0]["attrs"]["request_id"]

    def test_server_head_sampling_mints_without_client_header(
        self, tmp_path, study
    ):
        service = ServeService(
            str(tmp_path / "store"),
            config=ServeConfig(port=0, trace_sample_n=1,
                               batch_max_delay_seconds=0.005),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port)  # no traceparent sent
            client.post_samples(study.samples[:5],
                                timestamps=study.timestamps)
            _wait_folded(client, 5)
            client.close()
        stats = service.obs.trace_recorder.stats()
        assert stats["traces"] >= 1
        assert stats["spans"] > 0


class TestTraceCli:
    def test_trace_errors_without_trace_spans(self, tmp_path, capsys):
        export = str(tmp_path / "obs")
        obs = Observability()
        obs.timer("classify").record(0.001)
        obs.export(export)
        assert main(["trace", export]) == 1
        assert "no trace spans" in capsys.readouterr().err

    def test_trace_filter_miss_errors(self, tmp_path, study, capsys):
        export = str(tmp_path / "obs")
        obs = Observability()
        engine = StreamEngine(
            IterableSource(study.samples[:64],
                           timestamps=study.timestamps),
            geodb=study.world.geo, n_workers=0, obs=obs, trace_sample_n=8,
        )
        engine.run()
        obs.export(export)
        assert main(["trace", export, "--trace", "feedfacefeedface"]) == 1
        capsys.readouterr()
        assert main(["trace", export, "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "per-stage self time" in out
