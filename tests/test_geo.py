"""Unit tests for the synthetic geolocation database."""

import random

import pytest

from repro.cdn.geo import GeoDatabase
from repro.errors import GeoError


@pytest.fixture
def geo():
    db = GeoDatabase()
    db.register_asn("IR", 1001)
    db.register_asn("IR", 1002)
    db.register_asn("CN", 2001)
    return db


class TestRegistration:
    def test_idempotent_same_country(self, geo):
        geo.register_asn("IR", 1001)
        assert geo.asns.count(1001) == 1

    def test_conflicting_country_rejected(self, geo):
        with pytest.raises(GeoError):
            geo.register_asn("CN", 1001)

    def test_asns_in(self, geo):
        assert geo.asns_in("IR") == [1001, 1002]
        assert geo.asns_in("CN") == [2001]
        assert geo.asns_in("US") == []


class TestLookup:
    def test_roundtrip_v4(self, geo):
        rng = random.Random(1)
        for asn in (1001, 1002, 2001):
            addr = geo.client_address(rng, asn, version=4)
            record = geo.lookup(addr)
            assert record.asn == asn

    def test_roundtrip_v6(self, geo):
        rng = random.Random(2)
        addr = geo.client_address(rng, 2001, version=6)
        assert ":" in addr
        assert geo.lookup(addr).country == "CN"

    def test_unknown_space_raises(self, geo):
        with pytest.raises(GeoError):
            geo.lookup("203.0.113.9")

    def test_lookup_or_none(self, geo):
        assert geo.lookup_or_none("203.0.113.9") is None
        assert geo.lookup_or_none("not-an-ip") is None

    def test_country_of(self, geo):
        rng = random.Random(3)
        addr = geo.client_address(rng, 1002)
        assert geo.country_of(addr) == "IR"
        assert geo.country_of("203.0.113.9") is None

    def test_unregistered_asn_cannot_mint(self, geo):
        with pytest.raises(GeoError):
            geo.client_address(random.Random(0), 9999)

    def test_bad_version(self, geo):
        with pytest.raises(ValueError):
            geo.client_address(random.Random(0), 1001, version=5)


class TestEdgeSpace:
    def test_edge_addresses_in_cdn_prefix(self):
        rng = random.Random(5)
        for _ in range(20):
            assert GeoDatabase.is_edge_address(GeoDatabase.edge_address(rng, 4))
            assert GeoDatabase.is_edge_address(GeoDatabase.edge_address(rng, 6))

    def test_edge_space_never_geolocates_to_clients(self, geo):
        rng = random.Random(6)
        addr = GeoDatabase.edge_address(rng, 4)
        assert geo.lookup_or_none(addr) is None

    def test_client_space_is_not_edge(self, geo):
        rng = random.Random(7)
        addr = geo.client_address(rng, 1001)
        assert not GeoDatabase.is_edge_address(addr)


class TestDeterminism:
    def test_same_registration_order_same_layout(self):
        def build():
            db = GeoDatabase()
            db.register_asn("A", 1)
            db.register_asn("B", 2)
            return db.client_address(random.Random(0), 2)

        assert build() == build()
