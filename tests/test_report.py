"""Unit tests for plain-text report rendering."""

import pytest

from repro.core.report import (
    cdf_points,
    percentile,
    render_cdf,
    render_matrix,
    render_table,
    render_timeseries,
)


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["name", "value"], [["a", 1], ["longer", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]
        assert "longer" in text and "2.50" in text

    def test_float_format(self):
        text = render_table(["x"], [[1.23456]], float_format="{:.4f}")
        assert "1.2346" in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_rows_wider_than_headers(self):
        """Regression: extra columns raised IndexError in line()."""
        text = render_table(["only"], [["a", "b", "extra-wide-cell"]])
        assert "extra-wide-cell" in text
        header_line = text.splitlines()[0]
        assert header_line.startswith("only")


class TestPercentile:
    def test_bounds(self):
        values = [1, 2, 3, 4, 5]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 5
        assert percentile(values, 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)

    def test_single_value(self):
        assert percentile([7], 99) == 7

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestCdf:
    def test_points_monotonic(self):
        pts = cdf_points([5, 1, 9, 3, 7], n_points=5)
        xs = [x for x, _ in pts]
        ys = [y for _, y in pts]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[0] == 0.0 and ys[-1] == 1.0

    def test_empty(self):
        assert cdf_points([]) == []

    def test_single_point_degenerates_to_max(self):
        assert cdf_points([3, 1, 2], n_points=1) == [(3.0, 1.0)]

    def test_invalid_n_points(self):
        with pytest.raises(ValueError):
            cdf_points([1, 2], n_points=0)

    def test_render_cdf(self):
        text = render_cdf({"series-a": [1, 2, 3], "empty": []}, title="CDF")
        assert "series-a" in text
        assert "p50" in text
        assert "empty" in text


class TestRenderTimeseries:
    def test_downsampling_and_labels(self):
        series = {"CN": [(i * 3600.0, float(i)) for i in range(48)]}
        text = render_timeseries(series, max_points=4, t0=0.0)
        assert "CN" in text
        assert "day 0.0" in text

    def test_empty(self):
        assert "CN" in render_timeseries({"CN": []})

    def test_column_cap_and_final_bucket(self):
        """Regression: step sampling overshot max_points and dropped the
        newest bucket -- exactly where a live event lands."""
        for n, max_points in [(15, 14), (48, 14), (29, 4), (100, 7)]:
            series = {"CN": [(i * 3600.0, float(i)) for i in range(n)]}
            text = render_timeseries(series, max_points=max_points, t0=0.0,
                                     time_unit=3600.0, unit_label="hour")
            header = text.splitlines()[0]
            n_cols = header.count("hour")
            assert n_cols <= max_points, (n, max_points, n_cols)
            assert f"hour {float(n - 1):.1f}" in header  # newest bucket kept
            assert f"{float(n - 1):.1f}" in text.splitlines()[2]

    def test_no_downsampling_when_few_points(self):
        series = {"CN": [(0.0, 1.0), (3600.0, 2.0)]}
        text = render_timeseries(series, max_points=14, t0=0.0,
                                 time_unit=3600.0, unit_label="hour")
        assert text.splitlines()[0].count("hour") == 2


class TestRenderMatrix:
    def test_normalized_rows(self):
        matrix = {("a", "a"): 3.0, ("a", "b"): 1.0, ("b", "b"): 2.0}
        text = render_matrix(matrix)
        assert "0.75" in text  # 3/4 on the diagonal
        assert "first \\ next" in text

    def test_unnormalized(self):
        text = render_matrix({("a", "a"): 3.0}, normalize_rows=False)
        assert "3.00" in text
