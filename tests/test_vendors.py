"""Integration: every vendor preset produces its documented signature.

This is the ground-truth table from :mod:`repro.middlebox.vendors`: a
client requests a blocked domain through one device, the server-side
capture is classified, and the signature must match the paper's Table 1
entry for that censor fingerprint.
"""

import pytest

from repro.core.model import SignatureId, Stage
from tests.conftest import run_vendor

#: vendor name -> expected signature (TLS flow unless noted).
VENDOR_EXPECTATIONS = [
    ("syn_blackhole", SignatureId.SYN_NONE),
    ("syn_rst_injector", SignatureId.SYN_RST),
    ("syn_rstack_injector", SignatureId.SYN_RSTACK),
    ("gfw_syn", SignatureId.SYN_RST_RSTACK),
    ("iran_drop", SignatureId.ACK_NONE),
    ("iran_double_rst", SignatureId.ACK_RST_RST),
    ("iran_rstack", SignatureId.ACK_RSTACK),
    ("iran_double_rstack", SignatureId.ACK_RSTACK_RSTACK),
    ("psh_blackhole", SignatureId.PSH_NONE),
    ("single_rst", SignatureId.PSH_RST),
    ("single_rstack", SignatureId.PSH_RSTACK),
    ("gfw", SignatureId.PSH_RST_RSTACK),
    ("gfw_double_rstack", SignatureId.PSH_RSTACK_RSTACK),
    ("same_ack_injector", SignatureId.PSH_RST_EQ_RST),
    ("korea_guesser", SignatureId.PSH_RST_NEQ_RST),
    ("zero_ack_injector", SignatureId.PSH_RST_RST0),
]


@pytest.mark.parametrize("vendor,expected", VENDOR_EXPECTATIONS, ids=[v for v, _ in VENDOR_EXPECTATIONS])
def test_vendor_signature(vendor, expected):
    result = run_vendor(vendor)
    assert result.signature == expected, (
        f"{vendor}: expected {expected.display}, got {result.signature.display}"
    )
    assert result.possibly_tampered


@pytest.mark.parametrize("vendor,expected", VENDOR_EXPECTATIONS, ids=[v for v, _ in VENDOR_EXPECTATIONS])
def test_vendor_signature_stable_across_seeds(vendor, expected):
    for seed in (11, 23, 87):
        result = run_vendor(vendor, seed=seed)
        assert result.signature == expected, f"{vendor} seed={seed}"


@pytest.mark.parametrize("vendor", [v for v, _ in VENDOR_EXPECTATIONS])
def test_vendor_negative_control(vendor):
    """With the policy targeting another domain, nothing is tampered."""
    result = run_vendor(vendor, blocked=False)
    assert result.signature == SignatureId.NOT_TAMPERING


class TestTurkmenistanHttpOnly:
    def test_http_flow_gets_post_ack_rst(self):
        result = run_vendor("tm_http", protocol="http", http_only=True)
        assert result.signature == SignatureId.ACK_RST

    def test_tls_flow_unaffected(self):
        result = run_vendor("tm_http", protocol="tls", http_only=True)
        assert result.signature == SignatureId.NOT_TAMPERING


class TestEnterpriseDevices:
    def _segments(self):
        from repro.netstack.http import build_http_request

        head = build_http_request("blocked.example", path="/upload", method="POST")
        body = b"field=1&note=confidential-data"
        return [head, body]

    def test_enterprise_rst_post_data(self):
        result = run_vendor("enterprise_rst", protocol="http", segments=self._segments())
        assert result.signature == SignatureId.DATA_RST
        assert result.stage == Stage.POST_DATA

    def test_enterprise_firewall_post_data(self):
        result = run_vendor("enterprise_firewall", protocol="http", segments=self._segments())
        assert result.signature == SignatureId.DATA_RSTACK

    def test_single_segment_request_escapes_late_classifier(self):
        result = run_vendor("enterprise_firewall", protocol="tls")
        assert result.signature == SignatureId.NOT_TAMPERING


class TestTriggerVisibility:
    """Off-path injectors let the trigger through: domain is recoverable."""

    def test_post_psh_vendors_leak_domain(self):
        for vendor in ("gfw", "single_rst", "korea_guesser"):
            result = run_vendor(vendor)
            assert result.domain == "blocked.example", vendor
            assert result.protocol == "tls"

    def test_in_path_droppers_hide_domain(self):
        for vendor in ("iran_drop", "iran_rstack"):
            result = run_vendor(vendor)
            assert result.domain is None, vendor

    def test_injected_packets_marked(self):
        result = run_vendor("gfw")
        injected = [p for p in result.sample.packets if p.injected]
        assert len(injected) >= 2


def test_unknown_preset_raises():
    from repro.middlebox.policy import BlockPolicy
    from repro.middlebox.vendors import make_preset

    with pytest.raises(KeyError):
        make_preset("no-such-vendor", BlockPolicy.nothing())


def test_preset_names_sorted():
    from repro.middlebox.vendors import VENDOR_PRESETS, preset_names

    names = preset_names()
    assert names == sorted(names)
    assert set(names) == set(VENDOR_PRESETS)
