"""Tests for middlebox fingerprinting (the Weaver-style step)."""

import pytest

from repro.core.classifier import TamperingClassifier
from repro.core.fingerprint import (
    Fingerprint,
    FingerprintIndex,
    IpIdBehaviour,
    TtlBehaviour,
    fingerprint_sample,
)
from repro.core.model import SignatureId
from tests.conftest import capture, make_client, run_connection, run_vendor


def fingerprint_vendor(vendor, **kwargs):
    result = run_vendor(vendor, **kwargs)
    return fingerprint_sample(result.sample, result)


class TestBehaviourExtraction:
    def test_gfw_is_fixed_distinct_random_ipid(self):
        fp = fingerprint_vendor("gfw")
        assert fp is not None
        assert fp.signature == SignatureId.PSH_RST_RSTACK
        assert fp.ttl == TtlBehaviour.FIXED_DISTINCT
        assert fp.ip_id == IpIdBehaviour.RANDOMISED

    def test_korea_guesser_randomised_ttl(self):
        fp = fingerprint_vendor("korea_guesser")
        assert fp.signature == SignatureId.PSH_RST_NEQ_RST
        assert fp.ttl == TtlBehaviour.RANDOMISED

    def test_stealthy_vendor_mimics(self):
        fp = fingerprint_vendor("single_rstack")
        assert fp.ttl == TtlBehaviour.MIMIC
        assert fp.ip_id == IpIdBehaviour.CONSISTENT

    def test_counter_ipid_vendor(self):
        fp = fingerprint_vendor("iran_double_rst")
        assert fp.ip_id == IpIdBehaviour.COUNTER

    def test_drop_vendor_has_no_fingerprint(self):
        result = run_vendor("iran_drop")
        assert fingerprint_sample(result.sample, result) is None

    def test_clean_connection_has_no_fingerprint(self):
        sample = capture(run_connection(make_client()), conn_id=1)
        result = TamperingClassifier().classify(sample)
        assert fingerprint_sample(sample, result) is None


class TestCatalogue:
    def test_gfw_labelled(self):
        fp = fingerprint_vendor("gfw")
        from repro.core.fingerprint import FingerprintCluster
        from collections import Counter

        cluster = FingerprintCluster(fp, count=1, countries=Counter(), vendors=Counter())
        assert "GFW" in cluster.label

    def test_unknown_combination(self):
        from collections import Counter
        from repro.core.fingerprint import FingerprintCluster

        fp = Fingerprint(SignatureId.DATA_RST, TtlBehaviour.UNKNOWN, IpIdBehaviour.UNKNOWN)
        cluster = FingerprintCluster(fp, count=1, countries=Counter(), vendors=Counter())
        assert cluster.label == "unrecognised device"


class TestIndex:
    def test_clusters_on_study(self, small_study):
        classifier = TamperingClassifier()
        results = classifier.classify_all(small_study.samples)
        index = FingerprintIndex.build(small_study.samples, results, geodb=small_study.world.geo)
        clusters = index.clusters(min_count=5)
        assert clusters
        assert clusters == sorted(clusters, key=lambda c: -c.count)

        # Clusters of real tampering should be vendor-pure.
        for cluster in clusters:
            if cluster.count >= 10 and cluster.dominant_vendor:
                assert cluster.purity > 0.75, (
                    cluster.fingerprint.describe(), dict(cluster.vendors)
                )

    def test_min_count_filter(self, small_study):
        classifier = TamperingClassifier()
        results = classifier.classify_all(small_study.samples)
        index = FingerprintIndex.build(small_study.samples, results)
        all_clusters = index.clusters(min_count=1)
        big_clusters = index.clusters(min_count=10)
        assert len(big_clusters) <= len(all_clusters)

    def test_countries_recorded(self, small_study):
        classifier = TamperingClassifier()
        results = classifier.classify_all(small_study.samples)
        index = FingerprintIndex.build(small_study.samples, results, geodb=small_study.world.geo)
        top = index.clusters()[0]
        assert sum(top.countries.values()) == top.count
        assert "??" not in top.countries
