"""Unit tests for the path simulator."""

import pytest

from repro.errors import SimulationError
from repro.middlebox.actions import Verdict
from repro.middlebox.device import Middlebox
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import PacketDirection
from repro.network.conditions import LegConditions, NetworkConditions
from repro.network.sim import PathSimulator
from tests.conftest import SERVER_IP, make_client, run_connection


class CountingBox(Middlebox):
    """Transparent device that counts what it sees."""

    def __init__(self):
        self.seen_to_server = 0
        self.seen_to_client = 0

    def process(self, pkt, now):
        if pkt.direction == PacketDirection.TO_SERVER:
            self.seen_to_server += 1
        else:
            self.seen_to_client += 1
        return Verdict.allow()


class TestCleanConnection:
    def test_graceful_transfer(self):
        client = make_client(protocol="http")
        result = run_connection(client, server_port=80)
        flags = [p.flags for p in result.server_inbound]
        assert flags[0] == TCPFlags.SYN
        assert TCPFlags.PSHACK in flags
        assert any(f.is_fin for f in flags)
        assert not any(f.is_rst for f in flags)
        assert result.injected_reached_server == 0

    def test_inbound_all_to_server(self):
        result = run_connection(make_client())
        assert all(p.direction == PacketDirection.TO_SERVER for p in result.server_inbound)

    def test_timestamps_monotonic_at_server(self):
        result = run_connection(make_client())
        ts = [p.ts for p in result.server_inbound]
        assert ts == sorted(ts)
        assert result.duration >= 0

    def test_middlebox_sees_both_directions(self):
        box = CountingBox()
        result = run_connection(make_client(), middleboxes=[box])
        assert box.seen_to_server == len(result.server_inbound)
        assert box.seen_to_client > 0


class TestTtlDecrement:
    def test_client_packets_lose_path_hops(self):
        cond = NetworkConditions.simple(n_middleboxes=0, hops=14)
        client = make_client()
        from repro.cdn.edge import EdgeConfig, make_edge_server

        server = make_edge_server(SERVER_IP, EdgeConfig(port=client.peer_port), seed=1)
        sim = PathSimulator(client, server, conditions=cond)
        result = sim.run(start=0.0)
        assert all(p.ttl == client.config.initial_ttl - 14 for p in result.server_inbound)

    def test_ttl_expiry_drops_packet(self):
        cond = NetworkConditions(legs=(LegConditions(hops=100),))
        client = make_client()
        from repro.cdn.edge import EdgeConfig, make_edge_server

        server = make_edge_server(SERVER_IP, EdgeConfig(port=client.peer_port), seed=1)
        sim = PathSimulator(client, server, conditions=cond)
        result = sim.run(start=0.0)
        assert result.server_inbound == []


class TestLoss:
    def test_full_loss_isolates_endpoints(self):
        cond = NetworkConditions(legs=(LegConditions(loss=0.999),))
        client = make_client()
        from repro.cdn.edge import EdgeConfig, make_edge_server

        server = make_edge_server(SERVER_IP, EdgeConfig(port=client.peer_port), seed=1)
        sim = PathSimulator(client, server, conditions=cond, seed=4)
        result = sim.run(start=0.0)
        # With near-total loss almost nothing arrives; the client aborts.
        assert len(result.server_inbound) <= 1


class TestValidation:
    def test_conditions_mismatch_rejected(self):
        client = make_client()
        from repro.cdn.edge import EdgeConfig, make_edge_server

        server = make_edge_server(SERVER_IP, EdgeConfig(port=client.peer_port), seed=1)
        with pytest.raises(SimulationError):
            PathSimulator(client, server, middleboxes=[CountingBox()],
                          conditions=NetworkConditions.simple(n_middleboxes=0))

    def test_deadline_bounds_events(self):
        client = make_client()
        from repro.cdn.edge import EdgeConfig, make_edge_server

        server = make_edge_server(SERVER_IP, EdgeConfig(port=client.peer_port), seed=1)
        sim = PathSimulator(client, server)
        result = sim.run(start=50.0, deadline=0.001)
        assert result.end <= 50.1


class TestTimerGuard:
    def test_endpoint_that_never_advances_timer_is_rejected(self):
        """Regression: a stuck timer must raise, not spin forever."""

        class StuckClient:
            def __init__(self):
                self.done = False
                self._t = 1.0

            def begin(self, now):
                return []

            def on_packet(self, pkt, now):
                return []

            def on_timer(self, now):
                return []  # never advances or disarms self._t

            def next_timer(self):
                return self._t

        from repro.cdn.edge import EdgeConfig, make_edge_server

        server = make_edge_server(SERVER_IP, EdgeConfig(port=443), seed=1)
        sim = PathSimulator(StuckClient(), server)
        with pytest.raises(SimulationError):
            sim.run(start=0.0)


class TestInjectedPacketRouting:
    def test_injection_reaches_both_ends(self):
        from repro.middlebox.device import TamperBehavior, TamperingMiddlebox
        from repro.middlebox.injector import InjectionSpec
        from repro.middlebox.policy import BlockPolicy, DomainRule

        device = TamperingMiddlebox(
            BlockPolicy([DomainRule(["blocked.example"])]),
            TamperBehavior(
                inject_to_server=InjectionSpec.single(),
                inject_to_client=InjectionSpec.single(),
            ),
        )
        client = make_client()
        result = run_connection(client, middleboxes=[device], server_port=client.peer_port)
        assert any(p.injected for p in result.server_inbound)
        assert any(p.injected for p in result.client_received)

    def test_middlebox_chain_order(self):
        """Packets traverse devices client-side first; a drop at the
        first device means the second never sees the flow."""
        from repro.middlebox.actions import Verdict
        from repro.middlebox.device import Middlebox

        class DropAll(Middlebox):
            def process(self, pkt, now):
                return Verdict.drop()

        class Counter(Middlebox):
            def __init__(self):
                self.seen = 0

            def process(self, pkt, now):
                self.seen += 1
                return Verdict.allow()

        counter = Counter()
        client = make_client()
        result = run_connection(client, middleboxes=[DropAll(), counter],
                                server_port=client.peer_port)
        assert counter.seen == 0
        assert result.server_inbound == []


class TestDeterminism:
    def test_same_seed_same_capture(self):
        def run_once():
            client = make_client(seed=77)
            return run_connection(client, seed=5)

        a, b = run_once(), run_once()
        assert [(p.ts, p.flags, p.seq, p.ip_id) for p in a.server_inbound] == [
            (p.ts, p.flags, p.seq, p.ip_id) for p in b.server_inbound
        ]
