"""Unit tests for the signature taxonomy metadata."""

from repro.core.model import (
    SIGNATURES,
    SignatureId,
    Stage,
    TABLE1_ORDER,
    signature_info,
    signatures_in_stage,
)


class TestTaxonomy:
    def test_nineteen_signatures(self):
        assert len(SIGNATURES) == 19
        assert len(TABLE1_ORDER) == 19

    def test_stage_partition(self):
        assert len(signatures_in_stage(Stage.POST_SYN)) == 4
        assert len(signatures_in_stage(Stage.POST_ACK)) == 5
        assert len(signatures_in_stage(Stage.POST_PSH)) == 8
        assert len(signatures_in_stage(Stage.POST_DATA)) == 2

    def test_non_matches_excluded(self):
        assert SignatureId.NOT_TAMPERING not in SIGNATURES
        assert SignatureId.OTHER not in SIGNATURES

    def test_is_tampering(self):
        assert SignatureId.SYN_RST.is_tampering
        assert SignatureId.PSH_RST_RST0.is_tampering
        assert not SignatureId.NOT_TAMPERING.is_tampering
        assert not SignatureId.OTHER.is_tampering

    def test_drop_signatures(self):
        drops = [s for s in SignatureId if s.is_drop]
        assert set(drops) == {SignatureId.SYN_NONE, SignatureId.ACK_NONE, SignatureId.PSH_NONE}

    def test_stage_property(self):
        assert SignatureId.SYN_RST.stage == Stage.POST_SYN
        assert SignatureId.ACK_RSTACK.stage == Stage.POST_ACK
        assert SignatureId.PSH_RST_NEQ_RST.stage == Stage.POST_PSH
        assert SignatureId.DATA_RSTACK.stage == Stage.POST_DATA
        assert SignatureId.NOT_TAMPERING.stage == Stage.NONE

    def test_display_uses_paper_notation(self):
        assert SignatureId.SYN_NONE.display == "⟨SYN → ∅⟩"
        assert SignatureId.PSH_RST_RST0.display == "⟨PSH+ACK → RST; RST₀⟩"
        assert SignatureId.DATA_RSTACK.display == "⟨PSH+ACK; Data → RST+ACK⟩"

    def test_displays_unique(self):
        displays = [info.display for info in SIGNATURES.values()]
        assert len(set(displays)) == len(displays)

    def test_signature_info_lookup(self):
        info = signature_info(SignatureId.PSH_RST_NEQ_RST)
        assert info.prior_work == "[84]*"
        assert "ACK numbers" in info.description

    def test_stage_is_data_bearing(self):
        assert Stage.POST_PSH.is_data_bearing
        assert Stage.POST_DATA.is_data_bearing
        assert not Stage.POST_SYN.is_data_bearing
        assert not Stage.POST_ACK.is_data_bearing
