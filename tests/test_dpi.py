"""Unit tests for the DPI engine."""

from repro.middlebox.dpi import DpiEngine
from repro.netstack.flags import TCPFlags
from repro.netstack.http import build_http_request
from repro.netstack.packet import Packet, PacketDirection
from repro.netstack.tls import build_client_hello


def pkt(payload=b"", flags=TCPFlags.PSHACK, direction=PacketDirection.TO_SERVER,
        sport=40000, seq=100):
    return Packet(src="11.0.0.1", dst="198.41.0.1", sport=sport, dport=443,
                  seq=seq, ack=1, flags=flags, payload=payload, direction=direction)


class TestDomainExtraction:
    def test_tls_sni(self):
        engine = DpiEngine()
        state = engine.observe(pkt(build_client_hello("secret.example")))
        assert state.protocol == "tls"
        assert state.domain == "secret.example"

    def test_http_host(self):
        engine = DpiEngine()
        state = engine.observe(pkt(build_http_request("h.example")))
        assert state.protocol == "http"
        assert state.domain == "h.example"

    def test_split_client_hello_reassembled(self):
        engine = DpiEngine()
        hello = build_client_hello("split.example")
        half = len(hello) // 2
        state = engine.observe(pkt(hello[:half], seq=100))
        assert state.domain is None  # truncated: cannot parse yet
        state = engine.observe(pkt(hello[half:], seq=100 + half))
        assert state.domain == "split.example"
        assert state.client_data_packets == 2

    def test_garbage_payload_no_domain(self):
        engine = DpiEngine()
        state = engine.observe(pkt(b"\x00\x01\x02garbage"))
        assert state.domain is None
        assert state.protocol is None


class TestFlowTracking:
    def test_syn_and_ack_observed(self):
        engine = DpiEngine()
        engine.observe(pkt(flags=TCPFlags.SYN))
        state = engine.observe(pkt(flags=TCPFlags.ACK))
        assert state.saw_syn
        assert state.saw_client_ack

    def test_server_packets_not_accumulated(self):
        engine = DpiEngine()
        state = engine.observe(pkt(b"response-bytes", direction=PacketDirection.TO_CLIENT))
        assert state.client_data_packets == 0
        assert not state.payload

    def test_flows_keyed_independently(self):
        engine = DpiEngine()
        engine.observe(pkt(build_client_hello("a.example"), sport=1111))
        engine.observe(pkt(build_client_hello("b.example"), sport=2222))
        assert len(engine) == 2
        assert engine.flow(pkt(sport=1111)).domain == "a.example"
        assert engine.flow(pkt(sport=2222)).domain == "b.example"

    def test_forget(self):
        engine = DpiEngine()
        p = pkt(b"hello")
        engine.observe(p)
        engine.forget(p)
        assert len(engine) == 0

    def test_forget_key(self):
        engine = DpiEngine()
        p = pkt(b"hello")
        engine.observe(p)
        engine.forget_key(p.conn_key)
        assert len(engine) == 0

    def test_inspect_bytes_bounded(self):
        engine = DpiEngine(max_inspect_bytes=10)
        state = engine.observe(pkt(b"x" * 100))
        assert len(state.payload) == 10

    def test_out_of_order_segments_reassembled(self):
        engine = DpiEngine()
        hello = build_client_hello("ooo.example")
        half = len(hello) // 2
        # Second half arrives first.
        state = engine.observe(pkt(hello[half:], seq=100 + half))
        assert state.domain is None
        state = engine.observe(pkt(hello[:half], seq=100))
        assert state.domain == "ooo.example"

    def test_retransmission_counted_once(self):
        engine = DpiEngine()
        hello = build_client_hello("retrans.example")
        engine.observe(pkt(hello, seq=100))
        state = engine.observe(pkt(hello, seq=100))  # retransmission
        assert state.client_data_packets == 1
        assert state.payload == hello

    def test_domain_extraction_stops_after_found(self):
        engine = DpiEngine()
        engine.observe(pkt(build_client_hello("first.example"), seq=1))
        state = engine.observe(pkt(build_http_request("second.example"), seq=999))
        assert state.domain == "first.example"
