"""Tests for sampled-rate intervals and changepoint detection."""

import math

import pytest

from repro.core.stats import Changepoint, detect_changepoints, wilson_interval


class TestWilsonInterval:
    def test_basic_containment(self):
        lo, hi = wilson_interval(50, 100)
        assert lo < 0.5 < hi
        assert 0.4 < lo < 0.45 and 0.55 < hi < 0.6

    def test_extremes_stay_in_bounds(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0 and 0 < hi < 0.25
        lo, hi = wilson_interval(20, 20)
        assert 0.75 < lo < 1.0 and hi == 1.0

    def test_narrower_with_more_samples(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_zero_total(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_wider_z_wider_interval(self):
        i95 = wilson_interval(30, 100, z=1.96)
        i99 = wilson_interval(30, 100, z=2.58)
        assert (i99[1] - i99[0]) > (i95[1] - i95[0])


class TestChangepoints:
    def step_series(self, low=10.0, high=40.0, at=20, n=40, noise=0.0):
        import random

        rng = random.Random(1)
        out = []
        for i in range(n):
            base = low if i < at else high
            out.append((float(i), base + rng.uniform(-noise, noise)))
        return out

    def test_detects_step_up(self):
        cps = detect_changepoints(self.step_series(noise=1.0), window=5)
        assert len(cps) == 1
        cp = cps[0]
        assert cp.is_increase
        assert 17 <= cp.ts <= 23  # near the true changepoint at 20
        # The strongest-scoring window pair may straddle the step,
        # diluting the measured delta; it must still be the right order.
        assert 15.0 < cp.delta < 36.0

    def test_detects_step_down(self):
        series = [(t, 60.0 - v + 20) for t, v in self.step_series(noise=1.0)]
        cps = detect_changepoints(series, window=5)
        assert len(cps) == 1
        assert not cps[0].is_increase

    def test_flat_series_quiet(self):
        series = [(float(i), 12.0) for i in range(40)]
        assert detect_changepoints(series, window=5) == []

    def test_noisy_flat_series_quiet(self):
        import random

        rng = random.Random(2)
        series = [(float(i), 12.0 + rng.uniform(-2, 2)) for i in range(40)]
        assert detect_changepoints(series, window=5) == []

    def test_min_delta_suppresses_small_shifts(self):
        series = self.step_series(low=10.0, high=12.0, noise=0.0)
        assert detect_changepoints(series, window=5, min_delta=5.0) == []
        assert detect_changepoints(series, window=5, min_delta=1.0)

    def test_short_series(self):
        assert detect_changepoints([(0.0, 1.0)], window=5) == []

    def test_window_validation(self):
        with pytest.raises(ValueError):
            detect_changepoints([], window=1)


class TestOnIranScenario:
    def test_finds_the_escalation(self):
        """§5.6 operationalised: the detector locates the protest
        escalation in the Iranian series without being told."""
        from repro.core.model import Stage
        from repro.workloads.scenarios import SEP_13_2022, iran_protest_study

        study = iran_protest_study(n_connections=2500, seed=13, days=10.0)
        data = study.analyze().in_countries(["IR"])
        series = data.timeseries(
            bucket_seconds=43200.0,
            stages=(Stage.POST_SYN, Stage.POST_ACK, Stage.POST_PSH, Stage.POST_DATA),
        )["IR"]
        cps = detect_changepoints(series, window=3, threshold_sigma=2.0, min_delta=8.0)
        assert cps, "the escalation must be detected"
        first = cps[0]
        days_in = (first.ts - SEP_13_2022) / 86400.0
        assert first.is_increase
        assert 0.0 <= days_in <= 5.0, f"detected at day {days_in:.1f}"
