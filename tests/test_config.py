"""Tests for profile serialization and custom-world configs."""

import io
import json

import pytest

from repro.errors import ConfigError
from repro.workloads.config import (
    dump_profiles,
    load_profiles,
    profile_from_dict,
    profile_to_dict,
)
from repro.workloads.profiles import CountryProfile, DeploymentSpec, default_profiles


class TestRoundtrip:
    def test_single_profile(self):
        original = CountryProfile(
            code="XX", name="Testland", weight=2.5, tz_offset=3.5, n_asns=4,
            p_blocked=0.3,
            blocked_categories=(("News", 0.5), ("Chat", 0.2)),
            substring_fragments=("wn.com",),
            deployments=(
                DeploymentSpec(vendor="gfw", blocked_share=0.6, asn_share=0.5),
                DeploymentSpec(vendor="iran_drop", blocked_share=0.4),
            ),
        )
        assert profile_from_dict(profile_to_dict(original)) == original

    def test_all_default_profiles(self):
        for profile in default_profiles():
            assert profile_from_dict(profile_to_dict(profile)) == profile

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "profiles.json")
        originals = default_profiles()
        assert dump_profiles(path, originals) == len(originals)
        loaded = load_profiles(path)
        assert loaded == originals

    def test_buffer_roundtrip(self):
        buf = io.StringIO()
        dump_profiles(buf, default_profiles()[:3])
        buf.seek(0)
        assert len(load_profiles(buf)) == 3

    def test_json_is_plain_data(self):
        blob = json.dumps(profile_to_dict(default_profiles()[0]))
        assert "DeploymentSpec" not in blob


class TestValidation:
    def test_unknown_profile_field(self):
        data = profile_to_dict(default_profiles()[0])
        data["typo_field"] = 1
        with pytest.raises(ConfigError):
            profile_from_dict(data)

    def test_unknown_deployment_field(self):
        data = profile_to_dict(default_profiles()[0])
        data["deployments"] = [{"vendor": "gfw", "blocked_share": 1.0, "oops": 2}]
        with pytest.raises(ConfigError):
            profile_from_dict(data)

    def test_missing_required_field(self):
        with pytest.raises(ConfigError):
            profile_from_dict({"code": "XX"})

    def test_profile_invariants_still_enforced(self):
        data = profile_to_dict(default_profiles()[0])
        data["p_blocked"] = 2.0  # CountryProfile rejects this itself
        with pytest.raises(ConfigError):
            profile_from_dict(data)

    def test_non_array_file(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as fh:
            json.dump({"not": "a list"}, fh)
        with pytest.raises(ConfigError):
            load_profiles(path)


class TestWorldFromConfig:
    def test_custom_world_runs(self, tmp_path):
        from repro.workloads.scenarios import two_week_study

        path = str(tmp_path / "tiny.json")
        tiny = [
            profile_to_dict(CountryProfile(
                code="AA", name="A", weight=1.0, n_asns=2, p_blocked=0.4,
                blocked_categories=(("News", 0.5),),
                deployments=(DeploymentSpec(vendor="single_rst", blocked_share=1.0),),
            )),
            profile_to_dict(CountryProfile(code="BB", name="B", weight=1.0, n_asns=1)),
        ]
        with open(path, "w") as fh:
            json.dump(tiny, fh)
        study = two_week_study(n_connections=60, seed=3,
                               profiles=load_profiles(path), n_domains=300)
        data = study.analyze()
        assert set(data.countries) <= {"AA", "BB"}
