"""Tests for the active measurement comparator."""

import pytest

from repro.active.compare import compare_coverage
from repro.active.prober import ActiveProber, ProbeOutcome, Vantage
from repro.errors import ConfigError
from repro.workloads.profiles import CountryProfile, DeploymentSpec
from repro.workloads.world import World


def profiles():
    return [
        CountryProfile(
            code="AA", name="Censorland", weight=1.0, n_asns=3, p_blocked=0.5,
            scanner_rate=0, silent_syn_rate=0, happy_rst_rate=0, impatient_rate=0,
            abortive_close_rate=0, never_close_rate=0,
            blocked_categories=(("News", 0.6), ("Chat", 0.5)),
            deployments=(
                DeploymentSpec(vendor="gfw", blocked_share=0.5),
                DeploymentSpec(vendor="iran_drop", blocked_share=0.5),
            ),
        ),
        CountryProfile(
            code="BB", name="Freeland", weight=1.0, n_asns=2,
            scanner_rate=0, silent_syn_rate=0, happy_rst_rate=0, impatient_rate=0,
            abortive_close_rate=0, never_close_rate=0,
        ),
    ]


@pytest.fixture(scope="module")
def world():
    return World(profiles=profiles(), seed=11, n_domains=400, clients_per_asn=8)


@pytest.fixture(scope="module")
def prober(world):
    return ActiveProber(world, seed=11)


class TestVantages:
    def test_spread_over_asns(self, world, prober):
        vantages = prober.vantages("AA", count=3)
        assert len(vantages) == 3
        assert {v.asn for v in vantages} == set(world.country("AA").asns)
        for v in vantages:
            assert world.geo.lookup(v.client_ip).country == "AA"

    def test_count_validation(self, prober):
        with pytest.raises(ConfigError):
            prober.vantages("AA", count=0)


class TestProbe:
    def test_blocked_domain_anomalous(self, world, prober):
        blocked = sorted(world.blocklist("AA"))[0]
        vantage = prober.vantages("AA", 1)[0]
        result = prober.probe(vantage, blocked)
        assert result.blocked
        assert result.outcome in (ProbeOutcome.RESET, ProbeOutcome.TIMEOUT)

    def test_clean_domain_ok(self, world, prober):
        clean = next(n for n in world.universe.names if n not in world.blocklist("AA"))
        vantage = prober.vantages("AA", 1)[0]
        result = prober.probe(vantage, clean)
        assert result.outcome == ProbeOutcome.OK

    def test_free_country_all_ok(self, world, prober):
        blocked = sorted(world.blocklist("AA"))[0]
        vantage = prober.vantages("BB", 1)[0]
        assert prober.probe(vantage, blocked).outcome == ProbeOutcome.OK

    def test_vendor_outcomes_differ(self, world, prober):
        """Drop-based censorship times out; injection-based resets."""
        state = world.country("AA")
        vantage = prober.vantages("AA", 1)[0]
        outcomes = {}
        for dep in state.deployments:
            domain = sorted(dep.blocked_domains)[0]
            outcomes[dep.spec.vendor] = prober.probe(vantage, domain).outcome
        assert outcomes["gfw"] == ProbeOutcome.RESET
        assert outcomes["iran_drop"] == ProbeOutcome.TIMEOUT

    def test_blockpage_outcome(self):
        from repro.middlebox.policy import BlockPolicy, DomainRule
        from repro.middlebox.vendors import iran_blockpage
        from repro.core.classifier import TamperingClassifier
        from tests.conftest import make_client, run_connection

        # Direct check of the client-side classifier on a blockpage flow.
        device = iran_blockpage(BlockPolicy([DomainRule(["blocked.example"])]), seed=2)
        client = make_client()
        result = run_connection(client, middleboxes=[device], server_port=client.peer_port)
        outcome = ActiveProber._classify_client_side(result, client)
        assert outcome == ProbeOutcome.BLOCKPAGE


class TestScan:
    def test_scan_partitions_domains(self, world, prober):
        blocked = sorted(world.blocklist("AA"))[:4]
        clean = [n for n in world.universe.names if n not in world.blocklist("AA")][:4]
        report = prober.scan(blocked + clean, countries=["AA", "BB"], vantages_per_country=1)
        assert len(report) == 2 * 8
        assert set(blocked) <= report.blocked_domains("AA")
        assert set(clean) <= report.reachable_domains("AA")
        assert report.blocked_domains("BB") == set()
        assert report.countries == ["AA", "BB"]


class TestCompare:
    def test_partition_logic(self, world, prober):
        blocked = sorted(world.blocklist("AA"))
        listed = blocked[: len(blocked) // 2]  # the "test list" half
        scan = prober.scan(listed, countries=["AA"], vantages_per_country=1)

        # Fake a passive dataset that saw tampering on a different slice.
        from repro.core.aggregate import AnalysisDataset, AnalyzedConnection
        from repro.core.model import SignatureId, Stage

        passive_slice = blocked[len(blocked) // 3 :]
        conns = [
            AnalyzedConnection(
                conn_id=i, ts=0.0, country="AA", asn=1000,
                signature=SignatureId.PSH_RST, stage=Stage.POST_PSH,
                ip_version=4, server_port=443, protocol="tls",
                domain=name, client_ip="11.0.0.1", possibly_tampered=True,
            )
            for i, name in enumerate(passive_slice)
        ]
        passive = AnalysisDataset(conns)

        report = compare_coverage(world, scan, passive, countries=["AA"])
        cmp = report["AA"]
        assert cmp.truth_blocked == frozenset(blocked)
        assert cmp.active_detected == frozenset(listed)
        assert cmp.passive_detected == frozenset(passive_slice)
        assert cmp.both == frozenset(listed) & frozenset(passive_slice)
        assert cmp.active_only == frozenset(listed) - frozenset(passive_slice)
        assert cmp.passive_only == frozenset(passive_slice) - frozenset(listed)
        assert cmp.invisible == frozenset(blocked) - frozenset(listed) - frozenset(passive_slice)
        assert cmp.union_recall >= max(cmp.active_recall, cmp.passive_recall)

    def test_empty_truth_recall_zero(self, world, prober):
        from repro.core.aggregate import AnalysisDataset

        scan = prober.scan([], countries=["BB"], vantages_per_country=1)
        report = compare_coverage(world, scan, AnalysisDataset([]), countries=["BB"])
        assert report["BB"].active_recall == 0.0
