"""Unit tests for internet and TCP checksums."""

import pytest

from repro.netstack.checksum import internet_checksum, tcp_checksum, verify_tcp_checksum


class TestInternetChecksum:
    def test_rfc1071_worked_example(self):
        # Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == 0x220D

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padding(self):
        # Trailing odd byte is padded with zero.
        assert internet_checksum(b"\xab") == internet_checksum(b"\xab\x00")

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF

    def test_carry_folding(self):
        # Many 0xffff words force repeated carry folds.
        assert internet_checksum(b"\xff\xff" * 1000) == 0


class TestTcpChecksum:
    def test_verify_accepts_correct_checksum(self):
        segment = bytearray(20)
        segment[0:2] = (1234).to_bytes(2, "big")
        csum = tcp_checksum("10.0.0.1", "10.0.0.2", 4, bytes(segment))
        segment[16:18] = csum.to_bytes(2, "big")
        assert verify_tcp_checksum("10.0.0.1", "10.0.0.2", 4, bytes(segment))

    def test_verify_rejects_corruption(self):
        segment = bytearray(20)
        csum = tcp_checksum("10.0.0.1", "10.0.0.2", 4, bytes(segment))
        segment[16:18] = csum.to_bytes(2, "big")
        segment[4] ^= 0xFF
        assert not verify_tcp_checksum("10.0.0.1", "10.0.0.2", 4, bytes(segment))

    def test_checksum_depends_on_addresses(self):
        segment = bytes(20)
        a = tcp_checksum("10.0.0.1", "10.0.0.2", 4, segment)
        b = tcp_checksum("10.0.0.1", "10.0.0.3", 4, segment)
        assert a != b

    def test_ipv6_pseudo_header(self):
        segment = bytes(20)
        csum = tcp_checksum("2001:db8::1", "2001:db8::2", 6, segment)
        assert 0 <= csum <= 0xFFFF

    def test_bad_version_raises(self):
        with pytest.raises(ValueError):
            tcp_checksum("10.0.0.1", "10.0.0.2", 5, bytes(20))
