"""Unit tests for path conditions."""

import random

import pytest

from repro.errors import ConfigError
from repro.network.conditions import LegConditions, NetworkConditions


class TestLegConditions:
    def test_validation(self):
        with pytest.raises(ConfigError):
            LegConditions(latency=-1)
        with pytest.raises(ConfigError):
            LegConditions(hops=0)
        with pytest.raises(ConfigError):
            LegConditions(loss=1.0)
        with pytest.raises(ConfigError):
            LegConditions(jitter=-0.1)

    def test_latency_without_jitter_is_constant(self):
        leg = LegConditions(latency=0.05, jitter=0.0)
        rng = random.Random(0)
        assert leg.sample_latency(rng) == 0.05

    def test_latency_with_jitter_bounded(self):
        leg = LegConditions(latency=0.05, jitter=0.01)
        rng = random.Random(0)
        for _ in range(100):
            lat = leg.sample_latency(rng)
            assert 0.05 <= lat <= 0.06

    def test_loss_zero_never_drops(self):
        leg = LegConditions(loss=0.0)
        rng = random.Random(0)
        assert not any(leg.drops_packet(rng) for _ in range(100))

    def test_loss_probability_roughly_respected(self):
        leg = LegConditions(loss=0.3)
        rng = random.Random(42)
        drops = sum(leg.drops_packet(rng) for _ in range(2000))
        assert 450 < drops < 750


class TestNetworkConditions:
    def test_needs_a_leg(self):
        with pytest.raises(ConfigError):
            NetworkConditions(())

    def test_simple_divides_hops(self):
        cond = NetworkConditions.simple(n_middleboxes=2, hops=14, latency=0.06)
        assert cond.n_middleboxes == 2
        assert len(cond.legs) == 3
        assert cond.total_hops == 14
        assert cond.total_latency == pytest.approx(0.06)

    def test_simple_single_leg(self):
        cond = NetworkConditions.simple(n_middleboxes=0, hops=9)
        assert len(cond.legs) == 1
        assert cond.total_hops == 9

    def test_random_path_plausible(self):
        rng = random.Random(3)
        for _ in range(50):
            cond = NetworkConditions.random_path(rng, n_middleboxes=1)
            assert 8 <= cond.total_hops <= 22
            assert 0.010 <= cond.total_latency <= 0.121
            assert cond.n_middleboxes == 1

    def test_random_path_deterministic_per_seed(self):
        a = NetworkConditions.random_path(random.Random(9), n_middleboxes=2)
        b = NetworkConditions.random_path(random.Random(9), n_middleboxes=2)
        assert a == b
