"""Unit tests for synthetic test-list generation."""

import pytest

from repro.workloads.domains import DomainUniverse
from repro.workloads.testlist_gen import SENSITIVE_CATEGORIES, TRANCO_TIERS, build_test_lists


@pytest.fixture(scope="module")
def universe():
    return DomainUniverse.generate(seed=9, n_domains=600)


@pytest.fixture(scope="module")
def lists(universe):
    return build_test_lists(universe, seed=9, country_blocklists={
        "AA": universe.names[:40],
        "BB": universe.names[40:60],
    })


class TestStructure:
    def test_all_expected_lists(self, lists):
        expected = {
            "Tranco_1K", "Tranco_10K", "Tranco_100K", "Tranco_1M",
            "Majestic_1K", "Majestic_10K", "Majestic_100K", "Majestic_1M",
            "Greatfire_all", "Greatfire_30d",
            "Citizenlab", "Citizenlab_global", "Citizenlab_country",
        }
        assert expected <= set(lists)

    def test_tranco_tiers_nested_in_size(self, lists):
        sizes = [len(lists[f"Tranco_{tier}"]) for tier, _ in TRANCO_TIERS]
        assert sizes == sorted(sizes)

    def test_majestic_smaller_than_tranco(self, lists):
        for tier, _ in TRANCO_TIERS:
            assert len(lists[f"Majestic_{tier}"]) < len(lists[f"Tranco_{tier}"])

    def test_deterministic(self, universe):
        a = build_test_lists(universe, seed=9)
        b = build_test_lists(universe, seed=9)
        assert a["Tranco_1K"].entries == b["Tranco_1K"].entries
        c = build_test_lists(universe, seed=10)
        assert a["Greatfire_all"].entries != c["Greatfire_all"].entries


class TestContentProperties:
    def test_tranco_tracks_popularity(self, universe, lists):
        top = {d.name for d in universe.top(len(lists["Tranco_1K"]))}
        overlap = len(top & lists["Tranco_1K"].entries) / len(top)
        assert overlap > 0.6

    def test_curated_lists_sensitive_only(self, universe, lists):
        sensitive = set()
        for cat in SENSITIVE_CATEGORIES:
            sensitive |= {d.name for d in universe.in_category(cat)}
        real_entries = {e for e in lists["Citizenlab"].entries if not e.startswith("stale-")}
        assert real_entries <= sensitive

    def test_curated_lists_have_stale_entries(self, lists):
        stale = [e for e in lists["Greatfire_all"].entries if e.startswith("stale-")]
        assert stale

    def test_country_lists_drawn_from_blocklists(self, universe, lists):
        pool = set(universe.names[:60])
        assert lists["Citizenlab_country"].entries <= pool
