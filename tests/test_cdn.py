"""Unit tests for categorization, edge servers, sampling and collection."""

import io
import math

import pytest

from repro.cdn.categorize import CategoryDB
from repro.cdn.collector import ConnectionSample, read_samples_jsonl, write_samples_jsonl
from repro.cdn.edge import EdgeConfig, make_edge_server
from repro.cdn.sampler import CaptureConfig, ConnectionSampler, capture_sample
from repro.errors import ConfigError
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet, PacketDirection
from repro.netstack.tcp import TcpState
from repro.network.sim import SimResult
from tests.conftest import capture, make_client, run_connection


class TestCategoryDB:
    def test_assign_and_lookup(self):
        db = CategoryDB({"a.com": ["News"], "b.com": ["News", "Chat"]})
        assert db.categories_of("a.com") == {"News"}
        assert db.categories_of("b.com") == {"News", "Chat"}

    def test_subdomain_walk(self):
        db = CategoryDB({"a.com": ["News"]})
        assert db.categories_of("www.a.com") == {"News"}
        assert db.categories_of("cdn.img.a.com") == {"News"}

    def test_unknown_and_none(self):
        db = CategoryDB()
        assert db.categories_of("nope.com") == frozenset()
        assert db.categories_of(None) == frozenset()

    def test_reverse_index(self):
        db = CategoryDB({"a.com": ["News"], "b.com": ["News"]})
        assert db.domains_in("News") == {"a.com", "b.com"}
        assert db.domains_in("Chat") == frozenset()

    def test_extend_assignment(self):
        db = CategoryDB({"a.com": ["News"]})
        db.assign("a.com", ["Chat"])
        assert db.categories_of("a.com") == {"News", "Chat"}

    def test_container_protocol(self):
        db = CategoryDB({"a.com": ["News"]})
        assert "a.com" in db
        assert "A.COM." in db
        assert "b.com" not in db
        assert len(db) == 1

    def test_as_lookup_callable(self):
        db = CategoryDB({"a.com": ["News"]})
        assert db.as_lookup()("a.com") == {"News"}


class TestEdgeServer:
    def test_deterministic_isn(self):
        a = make_edge_server("198.41.0.1", seed=4)
        b = make_edge_server("198.41.0.1", seed=4)
        assert a.config.isn == b.config.isn
        c = make_edge_server("198.41.0.1", seed=5)
        assert a.config.isn != c.config.isn

    def test_response_payload_size(self):
        config = EdgeConfig(response_size=500)
        payload = config.response_payload()
        assert b"Content-Length: 500" in payload
        assert payload.endswith(bytes((i * 31 + 7) & 0xFF for i in range(500))[-10:])

    def test_server_listens(self):
        server = make_edge_server("198.41.0.1", seed=1)
        assert server.state == TcpState.LISTEN
        assert not server.done


class TestConnectionSampler:
    def test_rate_validation(self):
        with pytest.raises(ConfigError):
            ConnectionSampler(rate=0)

    def test_deterministic_per_conn_id(self):
        a = ConnectionSampler(rate=100, seed=1)
        b = ConnectionSampler(rate=100, seed=1)
        ids = list(range(5000))
        assert [a.decide(i) for i in ids] == [b.decide(i) for i in ids]

    def test_rate_roughly_respected(self):
        sampler = ConnectionSampler(rate=100, seed=2)
        kept = sum(sampler.decide(i) for i in range(50_000))
        assert 380 <= kept <= 630
        assert sampler.observed == 50_000
        assert sampler.sampled == kept
        assert sampler.effective_rate == pytest.approx(kept / 50_000)

    def test_rate_one_keeps_everything(self):
        sampler = ConnectionSampler(rate=1)
        assert all(sampler.decide(i) for i in range(100))


class TestCaptureConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CaptureConfig(max_packets=0)
        with pytest.raises(ConfigError):
            CaptureConfig(timestamp_granularity=0)
        with pytest.raises(ConfigError):
            CaptureConfig(watch_seconds=-1)


class TestCaptureSample:
    def test_empty_result_returns_none(self):
        assert capture_sample(SimResult(), conn_id=1) is None

    def test_inbound_only_and_truncation(self):
        client = make_client(protocol="http")
        result = run_connection(client, server_port=80)
        sample = capture_sample(result, conn_id=7, config=CaptureConfig(max_packets=3))
        assert sample.n_packets == 3
        assert all(p.direction == PacketDirection.TO_SERVER for p in sample.packets)

    def test_timestamps_floored_to_seconds(self):
        result = run_connection(make_client(), start=1000.25)
        sample = capture_sample(result, conn_id=7)
        assert all(p.ts == math.floor(p.ts) for p in sample.packets)

    def test_window_end_covers_watch(self):
        result = run_connection(make_client())
        config = CaptureConfig(watch_seconds=10.0)
        sample = capture_sample(result, conn_id=7, config=config)
        assert sample.window_end >= max(p.ts for p in sample.packets)

    def test_window_end_measured_on_floored_clock(self):
        """Regression: window_end from un-floored timestamps inflated the
        trailing silence gap by up to one granularity unit."""
        pkt = Packet(ts=1000.7, src="11.0.0.1", dst="198.41.0.1",
                     sport=40000, dport=443, seq=1, flags=TCPFlags.SYN)
        result = SimResult(server_inbound=[pkt])
        config = CaptureConfig(watch_seconds=2.5)
        sample = capture_sample(result, conn_id=1, config=config)
        assert sample.packets[0].ts == 1000.0
        assert sample.window_end == pytest.approx(1002.5)  # not 1003.2
        # The trailing gap a classifier sees is exactly watch_seconds.
        gap = sample.window_end - max(p.ts for p in sample.packets)
        assert gap == pytest.approx(config.watch_seconds)

    def test_silence_boundary_not_flipped_by_granularity(self):
        """A connection watched for < 3 s must not be declared silent just
        because its real timestamps had a fractional part."""
        from repro.core.classifier import TamperingClassifier

        pkt = Packet(ts=1000.7, src="11.0.0.1", dst="198.41.0.1",
                     sport=40000, dport=443, seq=1, flags=TCPFlags.SYN)
        result = SimResult(server_inbound=[pkt])
        sample = capture_sample(
            result, conn_id=1, config=CaptureConfig(watch_seconds=2.5)
        )
        verdict = TamperingClassifier().classify(sample)
        assert verdict.silence_gap < 3.0
        assert not verdict.possibly_tampered

    def test_shuffle_deterministic_per_seed(self):
        result = run_connection(make_client())
        a = capture_sample(result, conn_id=7, seed=1)
        b = capture_sample(result, conn_id=7, seed=1)
        assert [p.seq for p in a.packets] == [p.seq for p in b.packets]

    def test_no_shuffle_mode_preserves_order(self):
        result = run_connection(make_client())
        config = CaptureConfig(shuffle_within_bucket=False)
        sample = capture_sample(result, conn_id=7, config=config)
        assert [p.seq for p in sample.packets] == [
            p.seq for p in result.server_inbound[:10]
        ]

    def test_ground_truth_fields(self):
        result = run_connection(make_client())
        sample = capture_sample(
            result, conn_id=7, truth_tampered=True, truth_vendor="gfw",
            truth_domain="x.com", truth_client_kind="browser",
        )
        assert sample.truth_tampered and sample.truth_vendor == "gfw"

    def test_identifiers_from_first_packet(self):
        result = run_connection(make_client())
        sample = capture_sample(result, conn_id=7)
        assert sample.client_ip == "11.0.0.99"
        assert sample.server_port == 443
        assert sample.ip_version == 4
        assert sample.is_https


class TestSampleRecord:
    def test_rejects_outbound_packets(self):
        bad = Packet(src="198.41.0.1", dst="11.0.0.1", sport=443, dport=5,
                     flags=TCPFlags.SYNACK, direction=PacketDirection.TO_CLIENT)
        with pytest.raises(ValueError):
            ConnectionSample(conn_id=1, packets=[bad], window_end=1.0,
                             client_ip="11.0.0.1", client_port=5,
                             server_ip="198.41.0.1", server_port=443, ip_version=4)

    def test_first_payload_reassembles_in_seq_order(self):
        p1 = Packet(src="11.0.0.1", dst="198.41.0.1", sport=5, dport=443,
                    seq=200, flags=TCPFlags.PSHACK, payload=b"world")
        p2 = Packet(src="11.0.0.1", dst="198.41.0.1", sport=5, dport=443,
                    seq=100, flags=TCPFlags.PSHACK, payload=b"hello")
        sample = ConnectionSample(conn_id=1, packets=[p1, p2], window_end=1.0,
                                  client_ip="11.0.0.1", client_port=5,
                                  server_ip="198.41.0.1", server_port=443, ip_version=4)
        assert sample.first_payload() == b"helloworld"

    def test_jsonl_roundtrip(self):
        result = run_connection(make_client())
        sample = capture(result, conn_id=3)
        buf = io.StringIO()
        assert write_samples_jsonl(buf, [sample]) == 1
        buf.seek(0)
        loaded = read_samples_jsonl(buf)[0]
        assert loaded.conn_id == sample.conn_id
        assert loaded.client_ip == sample.client_ip
        assert len(loaded.packets) == len(sample.packets)
        for a, b in zip(loaded.packets, sample.packets):
            assert (a.ts, a.seq, a.ack, a.flags, a.payload, a.ip_id, a.ttl) == (
                b.ts, b.seq, b.ack, b.flags, b.payload, b.ip_id, b.ttl
            )
            assert a.options == b.options

    def test_jsonl_tolerates_blank_lines(self, tmp_path):
        result = run_connection(make_client())
        sample = capture(result, conn_id=3)
        path = str(tmp_path / "samples.jsonl")
        with open(path, "w") as fh:
            import json

            fh.write("\n")
            fh.write(json.dumps(sample.to_dict()) + "\n\n")
        assert len(read_samples_jsonl(path)) == 1

    def test_jsonl_file_roundtrip(self, tmp_path):
        result = run_connection(make_client())
        sample = capture(result, conn_id=3)
        path = str(tmp_path / "samples.jsonl")
        write_samples_jsonl(path, [sample, sample])
        assert len(read_samples_jsonl(path)) == 2
