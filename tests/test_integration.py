"""End-to-end integration tests on a shared small study.

These assert dataset-level *shape* properties the paper reports:
classifier accuracy against ground truth, geographic concentration of
matches, evidence distributions, and the Figure 5 centralization
observation.
"""

import pytest

from repro.core.evidence import evidence_for_sample
from repro.core.model import SignatureId, Stage


class TestGroundTruthAgreement:
    def test_precision_and_recall(self, small_study, small_dataset):
        """Signature matches must track the simulator's ground truth."""
        tp = fp = fn = tn = 0
        for c in small_dataset:
            truth = bool(c.truth_tampered)
            detected = c.tampered
            if truth and detected:
                tp += 1
            elif truth and not detected:
                fn += 1
            elif not truth and detected:
                fp += 1
            else:
                tn += 1
        assert tp > 0
        recall = tp / (tp + fn)
        precision = tp / (tp + fp)
        # Drops after multiple data packets and scanner lookalikes bound
        # these below 100%, but they must be high.
        assert recall > 0.90, f"recall {recall:.2f} (tp={tp} fn={fn})"
        # Scanners, SYN-flood residue, Happy-Eyeballs and abortive closes
        # are deliberate false-positive sources (§4.2) concentrated in
        # the Post-SYN and Post-Data stages -- which is exactly why the
        # paper restricts its key results to Post-ACK/Post-PSH.  Overall
        # precision is therefore bounded but not near 1.
        assert precision > 0.60, f"precision {precision:.2f} (tp={tp} fp={fp})"
        assert fp / (tp + fp + fn + tn) < 0.07

    def test_restricted_stages_are_high_precision(self, small_dataset):
        """Post-ACK/Post-PSH matches (the paper's trusted subset) are
        almost entirely true tampering."""
        restricted = small_dataset.post_ack_psh()
        assert len(restricted) > 0
        true = sum(1 for c in restricted if c.truth_tampered)
        assert true / len(restricted) > 0.93

    def test_false_positives_are_known_lookalikes(self, small_dataset):
        """False positives come from scanner/Happy-Eyeballs lookalikes or
        from organic packet loss hitting ordinary browsers; the latter
        must be drop signatures (∅), never forged-RST signatures."""
        lookalike = browser_loss = 0
        for c in small_dataset:
            if not (c.tampered and not c.truth_tampered):
                continue
            if c.truth_client_kind in (
                "zmap", "silent_syn", "happy_rst", "impatient",
                "abortive_close", "never_close",
            ):
                lookalike += 1
            else:
                assert c.truth_client_kind == "browser"
                from repro.core.model import Stage as _Stage

                assert c.signature.is_drop or c.stage == _Stage.POST_DATA, (
                    f"loss cannot forge RSTs: {c.signature} from a browser"
                )
                browser_loss += 1
        # Loss-induced noise stays a small minority of connections.
        assert browser_loss <= 0.02 * len(small_dataset)

    def test_vendor_signature_consistency(self, small_dataset):
        """Each firing vendor maps to a small signature family."""
        from collections import defaultdict

        by_vendor = defaultdict(set)
        for c in small_dataset:
            if c.truth_vendor and c.tampered:
                by_vendor[c.truth_vendor].add(c.signature)
        for vendor, signatures in by_vendor.items():
            assert len(signatures) <= 3, (vendor, signatures)


class TestGeographicShape:
    def test_heavy_censors_lead(self, small_dataset):
        rates = small_dataset.country_tampering_rate()
        assert rates.get("TM", 0) > rates.get("US", 100)
        assert rates.get("IR", 0) > rates.get("DE", 100)
        assert rates.get("CN", 0) > rates.get("GB", 100)

    def test_matches_concentrate_vs_baseline(self, small_dataset):
        """Figure 1's core claim: signature matches do not follow the
        baseline country distribution."""
        baseline = small_dataset.baseline_country_distribution()
        matrix = small_dataset.signature_country_matrix()
        skews = 0
        for sig, dist in matrix.items():
            top_country, top_share = next(iter(dist.items())), 0
            (country, share) = top_country
            if share > 3 * baseline.get(country, 0.01):
                skews += 1
        assert skews >= len(matrix) // 2

    def test_multiple_stages_observed(self, small_dataset):
        stages = {c.stage for c in small_dataset if c.tampered}
        assert Stage.POST_SYN in stages
        assert Stage.POST_ACK in stages
        assert Stage.POST_PSH in stages


class TestEvidenceShape:
    def test_injected_rsts_show_header_inconsistency(self, small_study, small_dataset):
        inconsistent = consistent = 0
        by_id = {s.conn_id: s for s in small_study.samples}
        for c in small_dataset:
            if not (c.tampered and c.truth_tampered):
                continue
            sample = by_id[c.conn_id]
            if not any(p.injected for p in sample.packets):
                continue  # drop-based tampering: no forged packet arrived
            summary = evidence_for_sample(sample)
            if summary.ipid_inconsistent or summary.ttl_inconsistent:
                inconsistent += 1
            else:
                consistent += 1
        assert inconsistent > 0
        # Most injectors betray themselves (stealthy COPY/MATCH vendors
        # are the minority of deployments).
        assert inconsistent >= consistent

    def test_not_tampering_connections_consistent(self, small_study, small_dataset):
        by_id = {s.conn_id: s for s in small_study.samples}
        bad = 0
        total = 0
        for c in small_dataset:
            if c.tampered or c.truth_client_kind != "browser":
                continue
            summary = evidence_for_sample(by_id[c.conn_id])
            if summary.min_ipid_delta is not None:
                total += 1
                if summary.min_ipid_delta > 1:
                    bad += 1
        assert total > 0
        assert bad / total < 0.05


class TestCentralization:
    def test_cn_more_homogeneous_than_ru(self):
        """Figure 5: centralized censors show a smaller per-AS spread.

        Uses a dedicated larger sample restricted to CN and RU so the
        per-AS estimates are stable.
        """
        from repro.workloads.profiles import profile_for
        from repro.workloads.scenarios import two_week_study

        study = two_week_study(
            n_connections=2500,
            seed=31,
            profiles=[profile_for("CN"), profile_for("RU")],
            n_domains=1000,
        )
        data = study.analyze()
        spread = data.asn_spread(top_share=0.9)
        assert spread["RU"] > spread["CN"]


class TestSampleHygiene:
    def test_capture_constraints_hold(self, small_study):
        for sample in small_study.samples:
            assert 1 <= sample.n_packets <= 10
            assert all(p.ts == int(p.ts) for p in sample.packets)
            assert sample.window_end >= max(p.ts for p in sample.packets)

    def test_all_client_ips_geolocate(self, small_study):
        geo = small_study.world.geo
        for sample in small_study.samples:
            assert geo.lookup_or_none(sample.client_ip) is not None

    def test_all_server_ips_are_edge(self, small_study):
        from repro.cdn.geo import GeoDatabase

        for sample in small_study.samples:
            assert GeoDatabase.is_edge_address(sample.server_ip)
