"""Unit tests for pcap reading and writing."""

import io
import struct

import pytest

from repro.errors import PcapError
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet
from repro.netstack.pcap import LINKTYPE_RAW, read_pcap, write_pcap


def packets():
    return [
        Packet(ts=1.5, src="11.0.0.1", dst="198.41.0.2", sport=1234, dport=443,
               seq=10, ack=0, flags=TCPFlags.SYN, ip_id=7, ttl=60),
        Packet(ts=2.25, src="11.0.0.1", dst="198.41.0.2", sport=1234, dport=443,
               seq=11, ack=99, flags=TCPFlags.PSHACK, payload=b"data!", ip_id=8, ttl=60),
        Packet(ts=3.0, src="2a00::1", dst="2606:4700::2", sport=5, dport=80,
               seq=1, ack=2, flags=TCPFlags.RSTACK),
    ]


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "x.pcap")
        assert write_pcap(path, packets()) == 3
        loaded = read_pcap(path)
        assert len(loaded) == 3
        for orig, back in zip(packets(), loaded):
            assert back.src == orig.src
            assert back.dst == orig.dst
            assert back.flags == orig.flags
            assert back.payload == orig.payload
            assert back.ts == pytest.approx(orig.ts, abs=1e-6)

    def test_buffer_roundtrip(self):
        buf = io.BytesIO()
        write_pcap(buf, packets()[:1])
        buf.seek(0)
        assert read_pcap(buf)[0].flags == TCPFlags.SYN

    def test_global_header(self, tmp_path):
        path = str(tmp_path / "h.pcap")
        write_pcap(path, [])
        with open(path, "rb") as fh:
            header = fh.read(24)
        magic, _, _, _, _, _, linktype = struct.unpack("!IHHiIII", header)
        assert magic == 0xA1B2C3D4
        assert linktype == LINKTYPE_RAW

    def test_little_endian_files_accepted(self):
        buf = io.BytesIO()
        buf.write(struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 262144, LINKTYPE_RAW))
        data = packets()[0].encode()
        buf.write(struct.pack("<IIII", 1, 500000, len(data), len(data)))
        buf.write(data)
        buf.seek(0)
        loaded = read_pcap(buf)
        assert loaded[0].ts == pytest.approx(1.5)

    def test_nanosecond_magic(self):
        buf = io.BytesIO()
        buf.write(struct.pack("!IHHiIII", 0xA1B23C4D, 2, 4, 0, 0, 262144, LINKTYPE_RAW))
        data = packets()[0].encode()
        buf.write(struct.pack("!IIII", 2, 250_000_000, len(data), len(data)))
        buf.write(data)
        buf.seek(0)
        assert read_pcap(buf)[0].ts == pytest.approx(2.25)


class TestErrors:
    def test_truncated_header(self):
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(b"\x00" * 10))

    def test_bad_magic(self):
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(b"\xde\xad\xbe\xef" + b"\x00" * 20))

    def test_wrong_linktype(self):
        buf = io.BytesIO(struct.pack("!IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 262144, 1))
        with pytest.raises(PcapError):
            read_pcap(buf)

    def test_truncated_record(self):
        buf = io.BytesIO()
        write_pcap(buf, packets()[:1])
        data = buf.getvalue()[:-3]
        with pytest.raises(PcapError):
            read_pcap(io.BytesIO(data))
