"""Unit and integration tests for ground-truth validation scoring."""

import pytest

from repro.core.aggregate import AnalysisDataset, AnalyzedConnection
from repro.core.model import SignatureId, Stage
from repro.core.validation import ConfusionSummary, score_dataset


def conn(signature, truth_tampered, vendor=None, kind="browser", conn_id=0):
    stage = signature.stage
    return AnalyzedConnection(
        conn_id=conn_id, ts=0.0, country="CN", asn=1,
        signature=signature, stage=stage, ip_version=4, server_port=443,
        protocol=None, domain=None, client_ip="11.0.0.1",
        possibly_tampered=signature != SignatureId.NOT_TAMPERING,
        truth_tampered=truth_tampered, truth_vendor=vendor,
        truth_client_kind=kind,
    )


class TestConfusionSummary:
    def test_metrics(self):
        c = ConfusionSummary(true_positives=8, false_positives=2,
                             false_negatives=2, true_negatives=88)
        assert c.total == 100
        assert c.precision == pytest.approx(0.8)
        assert c.recall == pytest.approx(0.8)
        assert c.f1 == pytest.approx(0.8)
        assert c.false_positive_rate == pytest.approx(2 / 90)

    def test_degenerate(self):
        c = ConfusionSummary(0, 0, 0, 10)
        assert c.precision == 0.0 and c.recall == 0.0 and c.f1 == 0.0


class TestScoreDataset:
    def make(self):
        return AnalysisDataset([
            conn(SignatureId.PSH_RST, True, vendor="gfw", conn_id=1),
            conn(SignatureId.PSH_RST_RSTACK, True, vendor="gfw", conn_id=2),
            conn(SignatureId.NOT_TAMPERING, True, vendor="iran-drop", conn_id=3),  # missed
            conn(SignatureId.SYN_RST, False, kind="zmap", conn_id=4),  # scanner FP
            conn(SignatureId.NOT_TAMPERING, False, conn_id=5),
            conn(SignatureId.NOT_TAMPERING, None, conn_id=6),  # unlabeled: skipped
        ])

    def test_confusion_counts(self):
        report = score_dataset(self.make())
        c = report.confusion
        assert (c.true_positives, c.false_positives, c.false_negatives, c.true_negatives) == (2, 1, 1, 1)
        assert c.total == 5

    def test_per_vendor(self):
        report = score_dataset(self.make())
        gfw = report.vendor("gfw")
        assert gfw.events == 2 and gfw.detected == 2
        assert gfw.recall == 1.0
        assert gfw.dominant_signature in (SignatureId.PSH_RST, SignatureId.PSH_RST_RSTACK)
        iran = report.vendor("iran-drop")
        assert iran.recall == 0.0

    def test_unknown_vendor_raises(self):
        with pytest.raises(KeyError):
            score_dataset(self.make()).vendor("nope")

    def test_false_positive_kinds(self):
        report = score_dataset(self.make())
        assert dict(report.false_positive_kinds) == {"zmap": 1}


class TestOnRealStudy:
    def test_study_scores_well(self, small_dataset):
        report = score_dataset(small_dataset)
        assert report.confusion.recall > 0.9
        assert report.confusion.precision > 0.6
        assert report.confusion.false_positive_rate < 0.07
        # Every vendor that fired at least 5 times is mostly detected.
        for row in report.per_vendor:
            if row.events >= 5:
                assert row.recall > 0.7, row.vendor

    def test_vendor_signature_mapping_sane(self, small_dataset):
        from repro.middlebox.vendors import VENDOR_PRESETS

        report = score_dataset(small_dataset)
        known = {name.replace("_", "-") for name in VENDOR_PRESETS}
        for row in report.per_vendor:
            assert row.vendor in known or row.vendor == "unknown"
