"""Unit tests for the TCP endpoint state machines."""

import pytest

from repro.errors import StateMachineError
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet, PacketDirection
from repro.netstack.tcp import HostConfig, IpIdMode, TcpClient, TcpServer, TcpState


def make_pair(request=b"GET / HTTP/1.1\r\nHost: a.com\r\n\r\n", **server_kwargs):
    client = TcpClient(
        HostConfig(ip="11.0.0.5", port=5555, isn=1000),
        "198.41.0.9",
        80,
        request_payload=request,
    )
    server = TcpServer(HostConfig(ip="198.41.0.9", port=80, isn=9000), **server_kwargs)
    return client, server


def exchange(sender_packets, receiver, now):
    """Deliver packets to a peer and collect its replies."""
    out = []
    for pkt in sender_packets:
        out.extend(receiver.on_packet(pkt, now))
    return out


class TestHandshake:
    def test_syn_synack_ack(self):
        client, server = make_pair()
        syn = client.begin(0.0)
        assert len(syn) == 1 and syn[0].flags == TCPFlags.SYN
        assert client.state == TcpState.SYN_SENT

        synack = exchange(syn, server, 0.01)
        assert len(synack) == 1 and synack[0].flags == TCPFlags.SYNACK
        assert synack[0].ack == 1001
        assert server.state == TcpState.SYN_RECEIVED

        replies = exchange(synack, client, 0.02)
        assert client.state == TcpState.ESTABLISHED
        assert replies[0].flags == TCPFlags.ACK
        assert replies[1].flags == TCPFlags.PSHACK
        assert replies[1].payload.startswith(b"GET /")

    def test_server_rejects_begin_twice(self):
        client, _ = make_pair()
        client.begin(0.0)
        with pytest.raises(StateMachineError):
            client.begin(1.0)

    def test_unsolicited_packet_to_listen_gets_rstack(self):
        _, server = make_pair()
        stray = Packet(src="11.0.0.5", dst="198.41.0.9", sport=1, dport=80,
                       seq=5, ack=0, flags=TCPFlags.ACK)
        replies = server.on_packet(stray, 0.0)
        assert len(replies) == 1
        assert replies[0].flags == TCPFlags.RSTACK


class TestFullTransfer:
    def run_connection(self, client, server):
        """Ping-pong packets between peers until both go quiet."""
        now = [0.0]

        def tick():
            now[0] += 0.01
            return now[0]

        in_flight = client.begin(tick())
        for _ in range(50):
            if not in_flight:
                break
            next_round = []
            for pkt in in_flight:
                peer = server if pkt.direction == PacketDirection.TO_SERVER else client
                next_round.extend(peer.on_packet(pkt, tick()))
            in_flight = next_round
        return client, server

    def test_graceful_close(self):
        client, server = self.run_connection(*make_pair())
        assert client.state == TcpState.TIME_WAIT
        assert server.state == TcpState.TIME_WAIT
        assert server.fin_received and server.fin_sent
        assert client.fin_received and client.fin_sent

    def test_server_collects_request(self):
        client, server = self.run_connection(*make_pair(request=b"X" * 100))
        assert bytes(server.request_data) == b"X" * 100

    def test_multi_segment_request(self):
        client = TcpClient(
            HostConfig(ip="11.0.0.5", port=5555, isn=0),
            "198.41.0.9", 80,
            request_segments=[b"part-one-", b"part-two"],
        )
        server = TcpServer(HostConfig(ip="198.41.0.9", port=80, isn=50))
        self.run_connection(client, server)
        assert bytes(server.request_data) == b"part-one-part-two"


class TestRstHandling:
    def test_client_rst_aborts(self):
        client, server = make_pair()
        syn = client.begin(0.0)
        synack = exchange(syn, server, 0.01)
        exchange(synack, client, 0.02)
        rst = Packet(src="198.41.0.9", dst="11.0.0.5", sport=80, dport=5555,
                     seq=0, ack=0, flags=TCPFlags.RST,
                     direction=PacketDirection.TO_CLIENT)
        assert client.on_packet(rst, 0.03) == []
        assert client.state == TcpState.RESET
        assert client.done
        assert client.next_timer() is None

    def test_server_rst_aborts(self):
        client, server = make_pair()
        syn = client.begin(0.0)
        exchange(syn, server, 0.01)
        rst = Packet(src="11.0.0.5", dst="198.41.0.9", sport=5555, dport=80,
                     seq=1001, ack=0, flags=TCPFlags.RSTACK)
        server.on_packet(rst, 0.02)
        assert server.state == TcpState.RESET


class TestRetransmission:
    def test_syn_retransmit_then_abort(self):
        client, _ = make_pair()
        client.begin(0.0)
        t1 = client.next_timer()
        assert t1 == pytest.approx(1.0)
        first = client.on_timer(t1)
        assert len(first) == 1 and first[0].flags == TCPFlags.SYN
        t2 = client.next_timer()
        assert t2 > t1  # exponential backoff
        second = client.on_timer(t2)
        assert len(second) == 1
        t3 = client.next_timer()
        assert client.on_timer(t3) == []  # retries exhausted
        assert client.state == TcpState.ABORTED

    def test_data_retransmit_when_unacked(self):
        client, server = make_pair()
        syn = client.begin(0.0)
        synack = exchange(syn, server, 0.01)
        replies = exchange(synack, client, 0.02)
        assert any(p.has_payload for p in replies)
        # No ACK for the data: timer must re-emit the request segment.
        t = client.next_timer()
        assert t is not None
        retrans = client.on_timer(t)
        assert len(retrans) == 1
        assert retrans[0].has_payload
        assert retrans[0].seq == replies[1].seq

    def test_ack_cancels_data_timer(self):
        client, server = make_pair()
        syn = client.begin(0.0)
        synack = exchange(syn, server, 0.01)
        replies = exchange(synack, client, 0.02)
        data = [p for p in replies if p.has_payload][0]
        ack = Packet(src="198.41.0.9", dst="11.0.0.5", sport=80, dport=5555,
                     seq=9001, ack=(data.seq + len(data.payload)) % 2**32,
                     flags=TCPFlags.ACK, direction=PacketDirection.TO_CLIENT)
        client.on_packet(ack, 0.05)
        assert client.next_timer() is None


class TestIpIdModes:
    def _ids(self, mode, start=100, n=5):
        client = TcpClient(
            HostConfig(ip="11.0.0.5", port=1, isn=0, ip_id_mode=mode, ip_id_start=start),
            "198.41.0.9", 80,
        )
        return [client._make(0.0, TCPFlags.ACK, seq=0).ip_id for _ in range(n)]

    def test_counter_increments(self):
        assert self._ids(IpIdMode.COUNTER) == [100, 101, 102, 103, 104]

    def test_zero_mode(self):
        assert self._ids(IpIdMode.ZERO) == [0] * 5

    def test_counter_wraps(self):
        assert self._ids(IpIdMode.COUNTER, start=0xFFFF, n=2) == [0xFFFF, 0]

    def test_random_mode_varies(self):
        assert len(set(self._ids(IpIdMode.RANDOM, n=8))) > 1


class TestOutOfOrderReassembly:
    def setup_server(self, threshold=100):
        server = TcpServer(HostConfig(ip="198.41.0.9", port=80, isn=900),
                           request_threshold=threshold)
        syn = Packet(src="11.0.0.5", dst="198.41.0.9", sport=5, dport=80,
                     seq=100, flags=TCPFlags.SYN)
        server.on_packet(syn, 0.0)
        ack = Packet(src="11.0.0.5", dst="198.41.0.9", sport=5, dport=80,
                     seq=101, ack=901, flags=TCPFlags.ACK)
        server.on_packet(ack, 0.01)
        return server

    def seg(self, seq, payload):
        return Packet(src="11.0.0.5", dst="198.41.0.9", sport=5, dport=80,
                      seq=seq, ack=901, flags=TCPFlags.PSHACK, payload=payload)

    def test_future_segment_buffered_then_drained(self):
        server = self.setup_server()
        server.on_packet(self.seg(106, b"world"), 0.02)
        assert bytes(server.request_data) == b""
        server.on_packet(self.seg(101, b"hello"), 0.03)
        assert bytes(server.request_data) == b"helloworld"

    def test_duplicate_of_consumed_segment_ignored(self):
        server = self.setup_server()
        server.on_packet(self.seg(101, b"hello"), 0.02)
        server.on_packet(self.seg(101, b"hello"), 0.03)
        assert bytes(server.request_data) == b"hello"

    def test_ack_reflects_contiguous_prefix_only(self):
        server = self.setup_server()
        replies = server.on_packet(self.seg(106, b"world"), 0.02)
        assert replies[0].ack == 101  # gap: still expecting seq 101
        replies = server.on_packet(self.seg(101, b"hello"), 0.03)
        assert replies[0].ack == 111  # everything drained

    def test_three_way_shuffle(self):
        server = self.setup_server()
        server.on_packet(self.seg(111, b"!!"), 0.02)
        server.on_packet(self.seg(106, b"world"), 0.03)
        server.on_packet(self.seg(101, b"hello"), 0.04)
        assert bytes(server.request_data) == b"helloworld!!"


class TestSynPayload:
    def test_syn_carries_payload_when_configured(self):
        client = TcpClient(
            HostConfig(ip="11.0.0.5", port=5555, isn=10),
            "198.41.0.9", 80,
            syn_payload=b"GET / HTTP/1.1\r\nHost: a.com\r\n\r\n",
        )
        syn = client.begin(0.0)[0]
        assert syn.flags == TCPFlags.SYN
        assert syn.has_payload

    def test_server_accepts_syn_data(self):
        server = TcpServer(HostConfig(ip="198.41.0.9", port=80, isn=5))
        syn = Packet(src="11.0.0.5", dst="198.41.0.9", sport=2, dport=80,
                     seq=100, flags=TCPFlags.SYN, payload=b"early")
        replies = server.on_packet(syn, 0.0)
        assert replies[0].flags == TCPFlags.SYNACK
        assert bytes(server.request_data) == b"early"
        assert replies[0].ack == 106  # SYN + 5 payload bytes
