"""Ablation tests for the design decisions called out in DESIGN.md §5."""

import pytest

from repro.core.classifier import ClassifierConfig, TamperingClassifier
from repro.core.model import SignatureId
from repro.core.signatures import match_signature
from repro.cdn.sampler import CaptureConfig, capture_sample
from tests.conftest import make_client, run_connection


class TestOrderReconstructionAblation:
    """Design decision 2: reconstruct order vs trust the 1 s timestamps."""

    def test_shuffled_capture_agrees_with_oracle_order(self, small_study):
        reorder_on = TamperingClassifier(ClassifierConfig(reorder=True))
        disagreements = 0
        for sample in small_study.samples:
            by_reconstruction = reorder_on.classify(sample).signature
            oracle = match_signature(
                sorted(sample.packets, key=lambda p: p.ts),
                window_end=sample.window_end,
                reorder=True,
            ).signature
            if by_reconstruction != oracle:
                disagreements += 1
        assert disagreements / len(small_study.samples) < 0.01


class TestInactivityThresholdSweep:
    """Design decision 4: sensitivity of the 3-second rule."""

    @pytest.mark.parametrize("threshold", [1.0, 2.0, 3.0, 5.0, 8.0])
    def test_monotone_in_threshold(self, small_study, threshold):
        strict = TamperingClassifier(ClassifierConfig(inactivity_seconds=threshold))
        flagged = sum(1 for s in small_study.samples if strict.classify(s).possibly_tampered)
        loose = TamperingClassifier(ClassifierConfig(inactivity_seconds=threshold + 4.0))
        flagged_loose = sum(1 for s in small_study.samples if loose.classify(s).possibly_tampered)
        assert flagged >= flagged_loose

    def test_rst_signatures_threshold_independent(self, small_study):
        a = TamperingClassifier(ClassifierConfig(inactivity_seconds=1.0))
        b = TamperingClassifier(ClassifierConfig(inactivity_seconds=9.0))
        for sample in small_study.samples[:300]:
            ra, rb = a.classify(sample), b.classify(sample)
            if ra.signature.is_tampering and not ra.signature.is_drop:
                assert rb.signature == ra.signature


class TestCaptureDepthAblation:
    """Design decision 3: 10-packet truncation vs deeper capture."""

    def test_deeper_capture_rarely_changes_verdict(self):
        # Re-simulate a batch of connections and capture at 10 vs 20.
        from repro.workloads.scenarios import two_week_study

        study = two_week_study(n_connections=250, seed=41, n_domains=800)
        deep_config = CaptureConfig(max_packets=20)
        ten = TamperingClassifier(ClassifierConfig(max_packets=10))
        twenty = TamperingClassifier(ClassifierConfig(max_packets=20))
        changed = total = 0
        for spec_sample in study.samples:
            total += 1
            # The stored samples are 10-packet captures; reclassifying
            # them under a 20-packet config exercises the truncation
            # interpretation (trailing-gap rule) directly.
            a = ten.classify(spec_sample).signature
            b = twenty.classify(spec_sample).signature
            if a != b:
                changed += 1
        assert changed / total < 0.05


class TestInboundOnlyAblation:
    """Design decision 1: the classifier needs only inbound packets."""

    def test_clean_flow_verdict_same_without_outbound(self):
        client = make_client()
        result = run_connection(client)
        sample = capture_sample(result, conn_id=1)
        verdict = TamperingClassifier().classify(sample).signature
        assert verdict == SignatureId.NOT_TAMPERING
        # The sample type itself enforces inbound-only; this ablation
        # documents that nothing in the pipeline requires server packets.
        assert all(p.direction.value == "to_server" for p in sample.packets)


class TestRstCountMergeAblation:
    """Design decision 5: one-vs-many RST splits blur (Appendix B)."""

    MERGE = {
        SignatureId.ACK_RST: "ack-rst-family",
        SignatureId.ACK_RST_RST: "ack-rst-family",
        SignatureId.ACK_RSTACK: "ack-rstack-family",
        SignatureId.ACK_RSTACK_RSTACK: "ack-rstack-family",
    }

    def test_merged_families_preserve_country_ordering(self, small_dataset):
        """Merging count-splits must not change which countries lead."""
        fine = small_dataset.country_tampering_rate()
        # Tampering rate is invariant under merging -- the merge only
        # collapses labels, never match/non-match status.
        merged_rate = {}
        for c in small_dataset:
            merged_rate.setdefault(c.country, [0, 0])
            merged_rate[c.country][1] += 1
            if c.tampered:
                merged_rate[c.country][0] += 1
        for country, (hits, total) in merged_rate.items():
            assert 100.0 * hits / total == pytest.approx(fine[country], abs=1e-6)
