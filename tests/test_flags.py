"""Unit tests for TCP flag parsing and formatting."""

import pytest

from repro.netstack.flags import TCPFlags, flags_from_str, flags_to_str


class TestFlagBits:
    def test_rfc_bit_values(self):
        assert TCPFlags.FIN == 0x01
        assert TCPFlags.SYN == 0x02
        assert TCPFlags.RST == 0x04
        assert TCPFlags.PSH == 0x08
        assert TCPFlags.ACK == 0x10
        assert TCPFlags.URG == 0x20
        assert TCPFlags.ECE == 0x40
        assert TCPFlags.CWR == 0x80

    def test_combination_aliases(self):
        assert TCPFlags.SYNACK == TCPFlags.SYN | TCPFlags.ACK
        assert TCPFlags.PSHACK == TCPFlags.PSH | TCPFlags.ACK
        assert TCPFlags.RSTACK == TCPFlags.RST | TCPFlags.ACK
        assert TCPFlags.FINACK == TCPFlags.FIN | TCPFlags.ACK


class TestPredicates:
    def test_pure_rst(self):
        assert TCPFlags.RST.is_pure_rst
        assert not TCPFlags.RSTACK.is_pure_rst
        assert not TCPFlags.ACK.is_pure_rst

    def test_rst_ack(self):
        assert TCPFlags.RSTACK.is_rst_ack
        assert not TCPFlags.RST.is_rst_ack
        assert not TCPFlags.SYNACK.is_rst_ack

    def test_is_rst_covers_both_variants(self):
        assert TCPFlags.RST.is_rst
        assert TCPFlags.RSTACK.is_rst
        assert not TCPFlags.SYN.is_rst

    def test_syn_fin_ack_psh(self):
        assert TCPFlags.SYN.is_syn
        assert TCPFlags.SYNACK.is_syn
        assert TCPFlags.FINACK.is_fin
        assert TCPFlags.PSHACK.is_psh
        assert TCPFlags.PSHACK.is_ack
        assert not TCPFlags.SYN.is_ack


class TestFormatting:
    def test_to_str_single(self):
        assert flags_to_str(TCPFlags.SYN) == "SYN"
        assert flags_to_str(TCPFlags.RST) == "RST"

    def test_to_str_combination_order(self):
        assert flags_to_str(TCPFlags.SYNACK) == "SYN+ACK"
        assert flags_to_str(TCPFlags.PSHACK) == "PSH+ACK"
        assert flags_to_str(TCPFlags.RSTACK) == "RST+ACK"

    def test_to_str_empty(self):
        assert flags_to_str(TCPFlags.NONE) == "NONE"

    def test_roundtrip_all_combinations(self):
        for bits in range(256):
            flags = TCPFlags(bits)
            assert flags_from_str(flags_to_str(flags)) == flags

    def test_from_str_case_insensitive(self):
        assert flags_from_str("syn+ack") == TCPFlags.SYNACK
        assert flags_from_str("Rst") == TCPFlags.RST

    def test_from_str_whitespace(self):
        assert flags_from_str(" SYN + ACK ") == TCPFlags.SYNACK

    def test_from_str_none(self):
        assert flags_from_str("NONE") == TCPFlags.NONE
        assert flags_from_str("") == TCPFlags.NONE

    def test_from_str_unknown_raises(self):
        with pytest.raises(ValueError):
            flags_from_str("SYN+BOGUS")
