"""Unit tests for the synthetic domain universe."""

import random

import pytest

from repro.cdn.geo import GeoDatabase
from repro.errors import WorldError
from repro.workloads.domains import DomainUniverse


@pytest.fixture(scope="module")
def universe():
    return DomainUniverse.generate(seed=5, n_domains=500)


class TestGeneration:
    def test_size_close_to_requested(self, universe):
        assert 450 <= len(universe) <= 550

    def test_names_unique(self, universe):
        assert len(set(universe.names)) == len(universe)

    def test_deterministic(self):
        a = DomainUniverse.generate(seed=5, n_domains=200)
        b = DomainUniverse.generate(seed=5, n_domains=200)
        assert a.names == b.names
        c = DomainUniverse.generate(seed=6, n_domains=200)
        assert a.names != c.names

    def test_ranks_dense(self, universe):
        ranks = sorted(d.rank for d in universe.domains)
        assert ranks == list(range(len(universe)))

    def test_every_category_populated(self, universe):
        for cat in ("Adult Themes", "News", "Technology", "Login Screens"):
            assert universe.in_category(cat), cat

    def test_multi_category_share(self, universe):
        multi = [d for d in universe.domains if len(d.categories) > 1]
        assert 0 < len(multi) < len(universe) // 2

    def test_too_few_domains_rejected(self):
        with pytest.raises(WorldError):
            DomainUniverse.generate(n_domains=3)


class TestSampling:
    def test_popularity_skew(self, universe):
        rng = random.Random(0)
        top_names = {d.name for d in universe.top(50)}
        draws = [universe.sample(rng).name for _ in range(2000)]
        top_hits = sum(1 for name in draws if name in top_names)
        # Top-10% of domains should dominate well beyond uniform share.
        assert top_hits > 400

    def test_from_set_restriction(self, universe):
        rng = random.Random(1)
        pool = universe.names[:3]
        for _ in range(20):
            assert universe.sample(rng, from_set=pool).name in pool

    def test_from_set_empty_raises(self, universe):
        with pytest.raises(WorldError):
            universe.sample(random.Random(0), from_set=[])

    def test_from_set_unknown_domain_raises(self, universe):
        with pytest.raises(WorldError):
            universe.sample(random.Random(0), from_set=["not-in-universe.com"])

    def test_country_orders_differ(self, universe):
        assert universe._country_order("IR") != universe._country_order("CN")

    def test_request_host_variants(self, universe):
        rng = random.Random(2)
        name = universe.names[0]
        hosts = {universe.request_host(rng, name) for _ in range(200)}
        assert name in hosts
        assert f"www.{name}" in hosts


class TestEdgeIps:
    def test_stable_assignment(self, universe):
        name = universe.names[0]
        assert universe.edge_ip_for(name) == universe.edge_ip_for(name)
        assert universe.edge_ip_for(name, 6) == universe.edge_ip_for(name, 6)

    def test_in_cdn_space(self, universe):
        for name in universe.names[:20]:
            assert GeoDatabase.is_edge_address(universe.edge_ip_for(name, 4))
            assert GeoDatabase.is_edge_address(universe.edge_ip_for(name, 6))

    def test_many_domains_share_addresses(self, universe):
        # The /16 holds 64k hosts; with enough domains collisions exist
        # eventually, but at 500 domains we at least verify the space is
        # bounded (all within one /16).
        ips = {universe.edge_ip_for(name) for name in universe.names}
        assert all(ip.startswith("198.41.") for ip in ips)


class TestCategoryDb:
    def test_matches_universe(self, universe):
        db = universe.category_db()
        for domain in universe.domains[:30]:
            assert db.categories_of(domain.name) == domain.categories

    def test_lookup_helpers(self, universe):
        assert universe.get(universe.names[0]) is not None
        assert universe.get("missing.example") is None
        assert universe.names[0] in universe
