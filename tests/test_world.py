"""Unit tests for world assembly and connection simulation."""

import pytest

from repro.core.classifier import TamperingClassifier
from repro.core.model import SignatureId
from repro.errors import WorldError
from repro.workloads.profiles import CountryProfile, DeploymentSpec, profile_for
from repro.workloads.traffic import ConnectionSpec
from repro.workloads.world import World


def tiny_profiles():
    return [
        CountryProfile(
            code="AA", name="Censorland", weight=1.0, n_asns=3, p_blocked=0.5,
            blocked_categories=(("News", 0.5),),
            deployments=(DeploymentSpec(vendor="gfw", blocked_share=1.0),),
        ),
        CountryProfile(code="BB", name="Freeland", weight=1.0, n_asns=2),
    ]


@pytest.fixture(scope="module")
def world():
    return World(profiles=tiny_profiles(), seed=3, n_domains=300, clients_per_asn=8)


class TestConstruction:
    def test_duplicate_codes_rejected(self):
        profiles = tiny_profiles() + [tiny_profiles()[0]]
        with pytest.raises(WorldError):
            World(profiles=profiles, seed=1, n_domains=100)

    def test_empty_profiles_rejected(self):
        with pytest.raises(WorldError):
            World(profiles=[], seed=1)

    def test_geo_registered(self, world):
        assert len(world.geo.asns_in("AA")) == 3
        assert len(world.geo.asns_in("BB")) == 2

    def test_blocklist_from_categories(self, world):
        blocked = world.blocklist("AA")
        assert blocked
        news = {d.name for d in world.universe.in_category("News")}
        assert blocked <= news
        # Coverage 0.5 of the category, within rounding.
        assert abs(len(blocked) - 0.5 * len(news)) <= 1

    def test_no_deployments_no_blocklist_devices(self, world):
        assert world.blocklist("BB") == frozenset()
        assert world.middlebox_chain("BB", world.country("BB").asns[0]) == []

    def test_partition_covers_blocklist(self):
        profiles = [
            CountryProfile(
                code="AA", name="X", weight=1.0, n_asns=2, p_blocked=0.5,
                blocked_categories=(("News", 0.6),),
                deployments=(
                    DeploymentSpec(vendor="gfw", blocked_share=0.5),
                    DeploymentSpec(vendor="single_rst", blocked_share=0.5),
                ),
            ),
        ]
        world = World(profiles=profiles, seed=2, n_domains=300)
        state = world.country("AA")
        union = set()
        for dep in state.deployments:
            union |= dep.blocked_domains
        assert union == set(state.blocklist)
        # Disjoint partition.
        total = sum(len(dep.blocked_domains) for dep in state.deployments)
        assert total == len(state.blocklist)

    def test_client_pools_in_right_asn(self, world):
        state = world.country("AA")
        for asn in state.asns:
            for ip in state.clients_v4[asn]:
                assert world.geo.lookup(ip).asn == asn
            for ip in state.clients_v6[asn]:
                assert world.geo.lookup(ip).asn == asn

    def test_is_blocked_ground_truth(self, world):
        blocked = next(iter(world.blocklist("AA")))
        assert world.is_blocked("AA", blocked)
        assert not world.is_blocked("BB", blocked)

    def test_unknown_country(self, world):
        with pytest.raises(WorldError):
            world.country("ZZ")


class TestSimulateConnection:
    def spec(self, world, domain, conn_id=1, country="AA", kind="browser", protocol="tls"):
        state = world.country(country)
        asn = state.asns[0]
        return ConnectionSpec(
            conn_id=conn_id,
            ts=100.0,
            country=country,
            asn=asn,
            client_ip=state.clients_v4[asn][0],
            client_port=43210 + conn_id,
            ip_version=4,
            protocol=protocol,
            domain=domain,
            host=domain,
            client_kind=kind,
        )

    def test_blocked_domain_tampered(self, world):
        blocked = sorted(world.blocklist("AA"))[0]
        sample = world.simulate_connection(self.spec(world, blocked, conn_id=11))
        assert sample.truth_tampered
        assert sample.truth_vendor is not None
        result = TamperingClassifier().classify(sample)
        assert result.is_tampering

    def test_clean_domain_untampered(self, world):
        clean = next(n for n in world.universe.names if n not in world.blocklist("AA"))
        sample = world.simulate_connection(self.spec(world, clean, conn_id=12))
        assert not sample.truth_tampered
        result = TamperingClassifier().classify(sample)
        assert result.signature == SignatureId.NOT_TAMPERING

    def test_free_country_untampered_even_for_blocked_names(self, world):
        blocked = sorted(world.blocklist("AA"))[0]
        sample = world.simulate_connection(self.spec(world, blocked, conn_id=13, country="BB"))
        assert not sample.truth_tampered

    def test_deterministic(self, world):
        blocked = sorted(world.blocklist("AA"))[0]
        a = world.simulate_connection(self.spec(world, blocked, conn_id=14))
        b = world.simulate_connection(self.spec(world, blocked, conn_id=14))
        assert [(p.ts, p.flags, p.seq) for p in a.packets] == [
            (p.ts, p.flags, p.seq) for p in b.packets
        ]

    def test_scanner_kind(self, world):
        clean = next(n for n in world.universe.names if n not in world.blocklist("AA"))
        sample = world.simulate_connection(self.spec(world, clean, conn_id=15, kind="zmap"))
        result = TamperingClassifier().classify(sample)
        assert result.signature == SignatureId.SYN_RST
        assert sample.truth_client_kind == "zmap"
        assert not sample.truth_tampered

    def test_edge_ip_consistency(self, world):
        name = world.universe.names[0]
        spec = self.spec(world, name, conn_id=16)
        sample = world.simulate_connection(spec)
        assert sample.server_ip == world.edge_ip_for(name, 4)

    def test_enterprise_chain_appended(self, world):
        state = world.country("AA")
        asn = state.asns[0]
        plain = world.middlebox_chain("AA", asn)
        with_ent = world.middlebox_chain("AA", asn, include_enterprise=True)
        if state.enterprise_devices:
            assert len(with_ent) == len(plain) + 1
            assert with_ent[-1].name.startswith("enterprise")
        else:
            assert with_ent == plain

    def test_edge_ip_cached_and_stable(self, world):
        name = world.universe.names[0]
        assert world.edge_ip_for(name, 4) == world.edge_ip_for(name, 4)
        assert world.edge_ip_for(name, 4) == world.universe.edge_ip_for(name, 4)

    def test_device_flow_state_released(self, world):
        state = world.country("AA")
        blocked = sorted(world.blocklist("AA"))[0]
        world.simulate_connection(self.spec(world, blocked, conn_id=17))
        for dep in state.deployments:
            for device in dep.devices.values():
                assert len(device._flows) == 0
