"""Unit tests for the stateful tampering middlebox."""

import pytest

from repro.middlebox.actions import BlackholeMode
from repro.middlebox.device import TamperBehavior, TamperingMiddlebox, TriggerStage
from repro.middlebox.injector import InjectionSpec
from repro.middlebox.policy import BlockPolicy, DomainRule, ExactIpRule, KeywordRule
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet, PacketDirection
from repro.netstack.tls import build_client_hello

CLIENT, SERVER = "11.0.0.5", "198.41.0.9"


def syn(ts=0.0, sport=40000):
    return Packet(src=CLIENT, dst=SERVER, sport=sport, dport=443, seq=100,
                  flags=TCPFlags.SYN, ts=ts)


def synack(ts=0.01, sport=40000):
    return Packet(src=SERVER, dst=CLIENT, sport=443, dport=sport, seq=900,
                  ack=101, flags=TCPFlags.SYNACK, ts=ts,
                  direction=PacketDirection.TO_CLIENT)


def ack(ts=0.02, sport=40000):
    return Packet(src=CLIENT, dst=SERVER, sport=sport, dport=443, seq=101,
                  ack=901, flags=TCPFlags.ACK, ts=ts)


def data(domain="blocked.example", ts=0.03, sport=40000, seq=101):
    return Packet(src=CLIENT, dst=SERVER, sport=sport, dport=443, seq=seq,
                  ack=901, flags=TCPFlags.PSHACK, ts=ts,
                  payload=build_client_hello(domain))


def drive_handshake(device, sport=40000):
    device.process(syn(sport=sport), 0.0)
    device.process(synack(sport=sport), 0.01)
    device.process(ack(sport=sport), 0.02)


def make_device(behavior, domains=("blocked.example",), rules=None, seed=1):
    policy = BlockPolicy(rules if rules is not None else [DomainRule(domains)])
    return TamperingMiddlebox(policy, behavior, name="test-device", seed=seed)


class TestFirstDataTrigger:
    def test_inject_on_blocked_domain(self):
        behavior = TamperBehavior(
            trigger_stage=TriggerStage.ON_FIRST_DATA,
            inject_to_server=InjectionSpec.single(TCPFlags.RST),
            inject_to_client=InjectionSpec.single(TCPFlags.RST),
        )
        device = make_device(behavior)
        drive_handshake(device)
        verdict = device.process(data(), 0.03)
        assert verdict.forward  # off-path: trigger goes through
        assert len(verdict.to_server) == 1
        assert len(verdict.to_client) == 1
        assert verdict.to_server[0].injected
        assert device.triggers == 1

    def test_forged_seq_matches_client_progression(self):
        behavior = TamperBehavior(inject_to_server=InjectionSpec.single(TCPFlags.RSTACK))
        device = make_device(behavior)
        drive_handshake(device)
        trigger = data()
        verdict = device.process(trigger, 0.03)
        forged = verdict.to_server[0]
        assert forged.seq == (trigger.seq + len(trigger.payload)) % 2**32
        assert forged.ack == 901  # server's next seq as observed

    def test_dropped_trigger_uses_trigger_seq(self):
        behavior = TamperBehavior(
            drop_trigger=True,
            inject_to_server=InjectionSpec.single(TCPFlags.RSTACK),
        )
        device = make_device(behavior)
        drive_handshake(device)
        trigger = data()
        verdict = device.process(trigger, 0.03)
        assert not verdict.forward
        # The server never saw the trigger, so the forged RST must use
        # the trigger's own sequence number.
        assert verdict.to_server[0].seq == trigger.seq

    def test_allowed_domain_untouched(self):
        device = make_device(TamperBehavior(inject_to_server=InjectionSpec.single()))
        drive_handshake(device)
        verdict = device.process(data(domain="fine.example"), 0.03)
        assert verdict.forward and not verdict.injects
        assert device.triggers == 0

    def test_second_data_packet_does_not_retrigger(self):
        device = make_device(TamperBehavior(inject_to_server=InjectionSpec.single()))
        drive_handshake(device)
        device.process(data(), 0.03)
        verdict = device.process(data(ts=0.04, seq=700), 0.04)
        assert not verdict.injects
        assert device.triggers == 1


class TestSynTrigger:
    def test_ip_rule_fires_on_syn(self):
        behavior = TamperBehavior(
            trigger_stage=TriggerStage.ON_SYN,
            inject_to_server=InjectionSpec.single(),
            blackhole=BlackholeMode.BOTH,
        )
        device = make_device(behavior, rules=[ExactIpRule([SERVER])])
        verdict = device.process(syn(), 0.0)
        assert verdict.forward
        assert len(verdict.to_server) == 1
        assert verdict.blackhole == BlackholeMode.BOTH

    def test_domain_rules_never_fire_on_syn(self):
        behavior = TamperBehavior(trigger_stage=TriggerStage.ON_SYN,
                                  inject_to_server=InjectionSpec.single())
        device = make_device(behavior)  # domain-only policy
        verdict = device.process(syn(), 0.0)
        assert not verdict.injects


class TestLateDataTrigger:
    def test_fires_only_after_first_data_packet(self):
        behavior = TamperBehavior(
            trigger_stage=TriggerStage.ON_ANY_DATA,
            inject_to_server=InjectionSpec.single(TCPFlags.RSTACK),
        )
        device = make_device(behavior, rules=[KeywordRule([b"kw-xyz"])])
        drive_handshake(device)
        first = Packet(src=CLIENT, dst=SERVER, sport=40000, dport=443, seq=101,
                       ack=901, flags=TCPFlags.PSHACK, payload=b"POST kw-xyz now")
        verdict = device.process(first, 0.03)
        assert not verdict.injects  # late classifier: not on the first packet
        second = Packet(src=CLIENT, dst=SERVER, sport=40000, dport=443, seq=116,
                        ack=901, flags=TCPFlags.PSHACK, payload=b"more body")
        verdict = device.process(second, 0.04)
        assert verdict.injects


class TestBlackhole:
    def test_client_to_server_direction(self):
        behavior = TamperBehavior(drop_trigger=True,
                                  blackhole=BlackholeMode.CLIENT_TO_SERVER)
        device = make_device(behavior)
        drive_handshake(device)
        assert not device.process(data(), 0.03).forward
        # Subsequent client packets dropped, server packets pass.
        assert not device.process(data(ts=1.0), 1.0).forward
        assert device.process(synack(ts=1.1), 1.1).forward

    def test_both_directions(self):
        behavior = TamperBehavior(blackhole=BlackholeMode.BOTH)
        device = make_device(behavior)
        drive_handshake(device)
        assert device.process(data(), 0.03).forward  # trigger itself forwarded
        assert not device.process(data(ts=1.0), 1.0).forward
        assert not device.process(synack(ts=1.1), 1.1).forward


class TestResidualCensorship:
    def test_repeat_visit_blocked_without_rematching(self):
        behavior = TamperBehavior(
            inject_to_server=InjectionSpec.single(),
            residual_seconds=60.0,
        )
        device = make_device(behavior)
        drive_handshake(device, sport=40000)
        assert device.process(data(sport=40000), 0.03).injects
        # New connection, same client and domain, within the window.
        drive_handshake(device, sport=41000)
        verdict = device.process(data(sport=41000, ts=10.0), 10.0)
        assert verdict.injects
        assert device.triggers == 2

    def test_residual_expires(self):
        behavior = TamperBehavior(
            inject_to_server=InjectionSpec.single(),
            residual_seconds=5.0,
        )
        # Policy blocks only via residual: use an allowed domain second time
        device = make_device(behavior)
        drive_handshake(device, sport=40000)
        device.process(data(sport=40000), 0.03)
        drive_handshake(device, sport=42000)
        verdict = device.process(data(sport=42000, ts=100.0), 100.0)
        # Past the residual window: must re-match the policy (it does,
        # domain still blocked), so triggers increments normally.
        assert verdict.injects
        assert device.triggers == 2


class TestFlowHygiene:
    def test_forget_flow_releases_state(self):
        device = make_device(TamperBehavior(inject_to_server=InjectionSpec.single()))
        drive_handshake(device)
        device.process(data(), 0.03)
        key = syn().conn_key
        device.forget_flow(key)
        assert key not in device._flows

    def test_reset_clears_everything(self):
        device = make_device(TamperBehavior(inject_to_server=InjectionSpec.single(),
                                            residual_seconds=60.0))
        drive_handshake(device)
        device.process(data(), 0.03)
        device.reset()
        assert not device._flows
        assert not device._residual
