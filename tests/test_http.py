"""Unit tests for HTTP request building and parsing."""

import pytest

from repro.errors import HttpParseError
from repro.netstack.http import (
    build_http_request,
    extract_host,
    is_http_request,
    parse_http_request,
)


class TestBuild:
    def test_request_line_and_host_first(self):
        data = build_http_request("example.com", path="/index.html")
        lines = data.decode().split("\r\n")
        assert lines[0] == "GET /index.html HTTP/1.1"
        assert lines[1] == "Host: example.com"
        assert data.endswith(b"\r\n\r\n")

    def test_extra_headers(self):
        data = build_http_request("a.com", extra_headers={"X-Test": "1"})
        assert b"X-Test: 1\r\n" in data

    def test_post(self):
        assert build_http_request("a.com", path="/submit", method="POST").startswith(b"POST /submit")

    def test_bad_method(self):
        with pytest.raises(ValueError):
            build_http_request("a.com", method="BREW")

    def test_bad_path(self):
        with pytest.raises(ValueError):
            build_http_request("a.com", path="index.html")


class TestParse:
    def test_roundtrip(self):
        req = parse_http_request(build_http_request("www.example.com", path="/x"))
        assert req.method == "GET"
        assert req.target == "/x"
        assert req.version == "HTTP/1.1"
        assert req.host == "www.example.com"

    def test_host_strips_port(self):
        req = parse_http_request(b"GET / HTTP/1.1\r\nHost: example.com:8080\r\n\r\n")
        assert req.host == "example.com"

    def test_header_lookup_case_insensitive(self):
        req = parse_http_request(b"GET / HTTP/1.1\r\nhOsT: a.com\r\n\r\n")
        assert req.header("Host") == "a.com"
        assert req.header("missing") is None

    def test_body_tolerated(self):
        data = b"POST /s HTTP/1.1\r\nHost: a.com\r\n\r\nkey=value"
        assert parse_http_request(data).host == "a.com"

    def test_malformed_request_line(self):
        with pytest.raises(HttpParseError):
            parse_http_request(b"GET /\r\nHost: a.com\r\n\r\n")

    def test_unknown_method(self):
        with pytest.raises(HttpParseError):
            parse_http_request(b"BREW / HTTP/1.1\r\n\r\n")

    def test_bad_version(self):
        with pytest.raises(HttpParseError):
            parse_http_request(b"GET / SPDY/9\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(HttpParseError):
            parse_http_request(b"GET / HTTP/1.1\r\nbogus-line\r\n\r\n")


class TestExtractHost:
    def test_extracts(self):
        assert extract_host(build_http_request("h.example.org")) == "h.example.org"

    def test_never_raises_on_garbage(self):
        for blob in (b"", b"\x16\x03\x01", b"GET garbage", bytes(50)):
            assert extract_host(blob) is None

    def test_missing_host_header(self):
        assert extract_host(b"GET / HTTP/1.1\r\nAccept: */*\r\n\r\n") is None

    def test_is_http_request(self):
        assert is_http_request(b"GET / HTTP/1.1\r\n")
        assert is_http_request(b"POST /x HTTP/1.1\r\n")
        assert not is_http_request(b"\x16\x03\x01")
