"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(["simulate", "-n", "10", "-o", "x.jsonl"])
        assert args.connections == 10
        assert args.scenario == "two-week"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_stream_args(self):
        args = build_parser().parse_args(
            ["stream", "-n", "500", "-w", "2", "--checkpoint", "ck.json"]
        )
        assert args.connections == 500
        assert args.workers == 2
        assert args.checkpoint == "ck.json"
        assert not args.resume
        assert not args.no_cache

    def test_classify_fast_path_args(self):
        args = build_parser().parse_args(
            ["classify", "s.jsonl", "--workers", "4", "--no-cache"]
        )
        assert args.workers == 4
        assert args.no_cache
        assert args.cache_size is None


class TestCommands:
    def test_signatures_lists_all_nineteen(self, capsys):
        assert main(["signatures"]) == 0
        out = capsys.readouterr().out
        assert out.count("post-syn") == 4
        assert out.count("post-ack") == 5
        assert out.count("post-psh") == 8
        assert out.count("post-data") == 2

    def test_simulate_then_classify(self, tmp_path, capsys):
        out_path = str(tmp_path / "samples.jsonl")
        assert main(["simulate", "-n", "40", "--seed", "3", "-o", out_path]) == 0
        text = capsys.readouterr().out
        assert "wrote" in text

        assert main(["classify", out_path]) == 0
        text = capsys.readouterr().out
        assert "not_tampering" in text
        assert "connections" in text

    def test_classify_workers_and_cache_flags_agree(self, tmp_path, capsys):
        out_path = str(tmp_path / "samples.jsonl")
        assert main(["simulate", "-n", "60", "--seed", "5", "-o", out_path]) == 0
        capsys.readouterr()

        assert main(["classify", out_path]) == 0
        cached = capsys.readouterr().out
        assert main(["classify", out_path, "--no-cache"]) == 0
        uncached = capsys.readouterr().out
        assert main(["classify", out_path, "--workers", "2"]) == 0
        sharded = capsys.readouterr().out
        # Identical signature tables from all three paths.
        assert cached == uncached == sharded

    def test_classify_cache_size_flag(self, tmp_path, capsys):
        out_path = str(tmp_path / "samples.jsonl")
        assert main(["simulate", "-n", "20", "--seed", "5", "-o", out_path]) == 0
        capsys.readouterr()
        assert main(["classify", out_path, "--cache-size", "8"]) == 0
        assert "connections" in capsys.readouterr().out

    def test_simulate_with_pcap(self, tmp_path, capsys):
        out_path = str(tmp_path / "s.jsonl")
        pcap_path = str(tmp_path / "s.pcap")
        assert main(["simulate", "-n", "15", "-o", out_path, "--pcap", pcap_path]) == 0
        from repro.netstack.pcap import read_pcap

        assert len(read_pcap(pcap_path)) > 0

    def test_report(self, capsys):
        assert main(["report", "-n", "150", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "possibly tampered" in out
        assert "Top tampered countries" in out

    def test_iran_scenario(self, tmp_path, capsys):
        out_path = str(tmp_path / "iran.jsonl")
        assert main(["simulate", "-n", "30", "--scenario", "iran", "-o", out_path]) == 0

    def test_evidence(self, tmp_path, capsys):
        out_path = str(tmp_path / "e.jsonl")
        assert main(["simulate", "-n", "60", "--seed", "5", "-o", out_path]) == 0
        capsys.readouterr()
        assert main(["evidence", out_path]) == 0
        out = capsys.readouterr().out
        assert "injection evidence" in out

    def test_profiles_roundtrip_through_simulate(self, tmp_path, capsys):
        profiles_path = str(tmp_path / "profiles.json")
        assert main(["profiles", "-o", profiles_path]) == 0
        out_path = str(tmp_path / "sim.jsonl")
        assert main(["simulate", "-n", "20", "--profiles", profiles_path,
                     "-o", out_path]) == 0

    def test_fingerprints(self, tmp_path, capsys):
        out_path = str(tmp_path / "f.jsonl")
        assert main(["simulate", "-n", "80", "--seed", "9", "-o", out_path]) == 0
        capsys.readouterr()
        assert main(["fingerprints", out_path, "--min-count", "1"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint clusters" in out

    def test_stream_scenario(self, capsys):
        assert main(["stream", "--scenario", "two-week", "-n", "150",
                     "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "stream finished" in out
        assert "top tampered countries" in out
        assert "throughput" in out

    def test_stream_from_jsonl(self, tmp_path, capsys):
        out_path = str(tmp_path / "cap.jsonl")
        assert main(["simulate", "-n", "40", "--seed", "3", "-o", out_path]) == 0
        capsys.readouterr()
        assert main(["stream", out_path]) == 0
        out = capsys.readouterr().out
        assert "stream finished" in out

    def test_stream_checkpoint_and_resume(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.json")
        assert main(["stream", "-n", "120", "--seed", "4", "--checkpoint", ck,
                     "--checkpoint-interval", "30", "--max-samples", "60"]) == 0
        out = capsys.readouterr().out
        assert "stream stopped" in out
        assert "rerun with --resume" in out
        assert main(["stream", "-n", "120", "--seed", "4", "--checkpoint", ck,
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "stream finished" in out

    def test_stream_resume_requires_checkpoint(self, capsys):
        assert main(["stream", "-n", "10", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_radar_export(self, tmp_path, capsys):
        import json

        out_path = str(tmp_path / "radar.json")
        assert main(["radar", "-n", "400", "--seed", "3", "--min-cell", "2",
                     "-o", out_path]) == 0
        with open(out_path) as fh:
            records = json.load(fh)
        assert records, "low floor should publish at least one cell"
        assert all(r["connections"] >= 2 for r in records)


class TestQueryCommand:
    def test_query_args(self):
        args = build_parser().parse_args(
            ["query", "dir", "--family", "timeseries", "--start", "0",
             "--end", "7200", "--countries", "IR,CN"]
        )
        assert args.store == "dir"
        assert args.family == "timeseries"
        assert (args.start, args.end) == (0.0, 7200.0)
        assert args.countries == "IR,CN"

    @pytest.fixture(scope="class")
    def store_dir(self, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("cli-query") / "store")
        assert main(["stream", "-n", "200", "--seed", "4",
                     "--store", directory]) == 0
        return directory

    def test_stream_announces_store(self, store_dir, capsys):
        capsys.readouterr()
        assert main(["stream", "-n", "40", "--seed", "4", "--store",
                     store_dir + "-announce"]) == 0
        out = capsys.readouterr().out
        assert "rollup store at" in out
        assert "store:" in out  # metrics line

    def test_query_all_families(self, store_dir, capsys):
        assert main(["query", store_dir]) == 0
        out = capsys.readouterr().out
        assert "Tampering rate by country" in out
        assert "scanned" in out
        assert main(["query", store_dir, "--family", "timeseries"]) == 0
        assert "Hourly tampering timeseries" in capsys.readouterr().out
        assert main(["query", store_dir, "--family", "stage_statistics"]) == 0
        assert "Tampering by connection stage" in capsys.readouterr().out

    def test_query_signature_hour_counts_needs_country(self, store_dir, capsys):
        from repro.errors import StoreError

        with pytest.raises(StoreError, match="requires a country"):
            main(["query", store_dir, "--family", "signature_hour_counts"])
        assert main(["query", store_dir, "--family", "signature_hour_counts",
                     "--country", "IR"]) == 0
        assert "Signature activity for IR" in capsys.readouterr().out

    def test_query_json_output(self, store_dir, capsys):
        import json

        assert main(["query", store_dir, "--family", "stage_statistics",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["family"] == "stage_statistics"
        assert payload["value"]["total_connections"] == 200

    def test_query_missing_store_fails_without_mkdir(self, tmp_path):
        from repro.errors import StoreError

        missing = str(tmp_path / "typo")
        with pytest.raises(StoreError, match="no rollup store"):
            main(["query", missing])
        assert not (tmp_path / "typo").exists()
