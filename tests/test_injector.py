"""Unit tests for the forged-packet factory."""

import random

import pytest

from repro.middlebox.injector import (
    AckStrategy,
    FlowSnapshot,
    ForgedHeaderProfile,
    InjectionSpec,
    IpIdStrategy,
    RstBurst,
    SeqStrategy,
    TtlStrategy,
    forge_packets,
)
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import PacketDirection


def snapshot(**overrides):
    base = dict(
        client_ip="11.0.0.5",
        client_port=40000,
        server_ip="198.41.0.9",
        server_port=443,
        client_next_seq=5000,
        server_next_seq=9000,
        client_ip_id=321,
        client_initial_ttl=52,
        ip_version=4,
    )
    base.update(overrides)
    return FlowSnapshot(**base)


def forge(spec, toward=PacketDirection.TO_SERVER, seed=1, flow=None):
    return forge_packets(spec, flow or snapshot(), now=100.0, rng=random.Random(seed), toward=toward)


class TestSpecValidation:
    def test_burst_requires_rst(self):
        with pytest.raises(ValueError):
            RstBurst(TCPFlags.ACK, 1)

    def test_burst_count_positive(self):
        with pytest.raises(ValueError):
            RstBurst(TCPFlags.RST, 0)

    def test_spec_needs_bursts(self):
        with pytest.raises(ValueError):
            InjectionSpec(bursts=())

    def test_total_packets(self):
        spec = InjectionSpec(bursts=(RstBurst(TCPFlags.RST, 2), RstBurst(TCPFlags.RSTACK, 3)))
        assert spec.total_packets == 5

    def test_single_convenience(self):
        spec = InjectionSpec.single(TCPFlags.RSTACK)
        assert spec.total_packets == 1
        assert spec.bursts[0].flags == TCPFlags.RSTACK


class TestAddressing:
    def test_toward_server_spoofs_client(self):
        pkt = forge(InjectionSpec.single())[0]
        assert pkt.src == "11.0.0.5"
        assert pkt.dst == "198.41.0.9"
        assert pkt.sport == 40000 and pkt.dport == 443
        assert pkt.seq == 5000  # client's next seq
        assert pkt.injected

    def test_toward_client_spoofs_server(self):
        pkt = forge(InjectionSpec.single(), toward=PacketDirection.TO_CLIENT)[0]
        assert pkt.src == "198.41.0.9"
        assert pkt.dst == "11.0.0.5"
        assert pkt.seq == 9000  # server's next seq

    def test_seq_offset_strategy(self):
        pkt = forge(InjectionSpec.single(seq=SeqStrategy.OFFSET))[0]
        assert pkt.seq == 5000 + 1460

    def test_jitter_spaces_packets(self):
        spec = InjectionSpec(bursts=(RstBurst(TCPFlags.RST, 3),), jitter=0.01)
        packets = forge(spec)
        assert packets[1].ts - packets[0].ts == pytest.approx(0.01)
        assert packets[2].ts - packets[1].ts == pytest.approx(0.01)


class TestAckStrategies:
    def test_correct_rstack(self):
        pkt = forge(InjectionSpec.single(TCPFlags.RSTACK, ack=AckStrategy.CORRECT))[0]
        assert pkt.ack == 9000

    def test_correct_pure_rst_has_zero_ack(self):
        pkt = forge(InjectionSpec.single(TCPFlags.RST, ack=AckStrategy.CORRECT))[0]
        assert pkt.ack == 0

    def test_zero(self):
        pkt = forge(InjectionSpec.single(TCPFlags.RSTACK, ack=AckStrategy.ZERO))[0]
        assert pkt.ack == 0

    def test_guess_sweeps(self):
        spec = InjectionSpec(bursts=(RstBurst(TCPFlags.RST, 3),), ack=AckStrategy.GUESS)
        acks = [p.ack for p in forge(spec)]
        assert acks == [9000, 9000 + 1460, 9000 + 2920]

    def test_same_wrong_repeats(self):
        spec = InjectionSpec(bursts=(RstBurst(TCPFlags.RST, 3),), ack=AckStrategy.SAME_WRONG)
        acks = [p.ack for p in forge(spec)]
        assert len(set(acks)) == 1
        assert acks[0] != 9000 and acks[0] != 0

    def test_mix_zero_has_exactly_one_zero(self):
        spec = InjectionSpec(bursts=(RstBurst(TCPFlags.RST, 2),), ack=AckStrategy.MIX_ZERO)
        acks = [p.ack for p in forge(spec)]
        assert acks.count(0) == 1
        assert 9000 in acks


class TestHeaderProfiles:
    def test_ip_id_zero(self):
        spec = InjectionSpec.single(headers=ForgedHeaderProfile(ip_id=IpIdStrategy.ZERO))
        assert forge(spec)[0].ip_id == 0

    def test_ip_id_copy(self):
        spec = InjectionSpec.single(headers=ForgedHeaderProfile(ip_id=IpIdStrategy.COPY))
        assert forge(spec)[0].ip_id == 321

    def test_ip_id_counter_increments(self):
        spec = InjectionSpec(
            bursts=(RstBurst(TCPFlags.RST, 3),),
            headers=ForgedHeaderProfile(ip_id=IpIdStrategy.COUNTER),
        )
        ids = [p.ip_id for p in forge(spec)]
        assert ids[1] == (ids[0] + 1) & 0xFFFF
        assert ids[2] == (ids[1] + 1) & 0xFFFF

    def test_ipv6_has_no_ip_id(self):
        spec = InjectionSpec.single(headers=ForgedHeaderProfile(ip_id=IpIdStrategy.COPY))
        flow = snapshot(client_ip="2a00::5", server_ip="2606:4700::9", ip_version=6)
        assert forge(spec, flow=flow)[0].ip_id == 0

    def test_ttl_constant(self):
        spec = InjectionSpec.single(headers=ForgedHeaderProfile(ttl=TtlStrategy.CONSTANT, ttl_value=99))
        assert forge(spec)[0].ttl == 99

    def test_ttl_match_client(self):
        spec = InjectionSpec.single(headers=ForgedHeaderProfile(ttl=TtlStrategy.MATCH_CLIENT))
        assert forge(spec)[0].ttl == 52

    def test_ttl_random_varies(self):
        spec = InjectionSpec(
            bursts=(RstBurst(TCPFlags.RST, 8),),
            headers=ForgedHeaderProfile(ttl=TtlStrategy.RANDOM),
        )
        ttls = {p.ttl for p in forge(spec)}
        assert len(ttls) > 2

    def test_window_applied(self):
        spec = InjectionSpec.single(headers=ForgedHeaderProfile(window=512))
        assert forge(spec)[0].window == 512

    def test_forged_packets_have_no_options(self):
        assert forge(InjectionSpec.single())[0].options == ()
