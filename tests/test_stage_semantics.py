"""Focused tests for the immediately-after stage-grouping semantics.

The Post-PSH / Post-Data boundary is defined by *when* the tampering
event lands relative to the first client data segment (DESIGN.md §6).
These tests pin the edge cases of that boundary, and the interplay with
order reconstruction and vendor behaviour end to end.
"""

from repro.core.model import SignatureId, Stage
from repro.core.signatures import match_signature
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet

CLIENT, SERVER = "11.0.0.8", "198.41.0.3"


def pkt(flags, ts=0.0, seq=100, ack=0, payload=b""):
    return Packet(src=CLIENT, dst=SERVER, sport=40000, dport=443,
                  seq=seq, ack=ack, flags=flags, ts=ts, payload=payload)


def classify(packets, window_end=None):
    if window_end is None:
        window_end = max((p.ts for p in packets), default=0.0) + 10.0
    return match_signature(packets, window_end=window_end)


def handshake():
    return [pkt(TCPFlags.SYN, ts=0.0, seq=100),
            pkt(TCPFlags.ACK, ts=0.1, seq=101, ack=901)]


def trigger(ts=0.2, seq=101, payload=b"\x16\x03\x01trigger"):
    return pkt(TCPFlags.PSHACK, ts=ts, seq=seq, ack=901, payload=payload)


class TestImmediateBoundary:
    def test_rst_immediately_after_data_is_post_psh(self):
        m = classify(handshake() + [trigger(), pkt(TCPFlags.RST, ts=0.3, seq=120)])
        assert m.stage == Stage.POST_PSH
        assert m.signature == SignatureId.PSH_RST

    def test_trigger_retransmissions_do_not_promote(self):
        packets = handshake() + [
            trigger(ts=0.2), trigger(ts=1.2), trigger(ts=3.2),
            pkt(TCPFlags.RST, ts=3.3, seq=120),
        ]
        m = classify(packets)
        assert m.stage == Stage.POST_PSH
        assert m.n_data_segments == 1

    def test_second_segment_promotes_to_post_data(self):
        packets = handshake() + [
            trigger(ts=0.2, seq=101),
            pkt(TCPFlags.PSHACK, ts=0.3, seq=116, ack=901, payload=b"more"),
            pkt(TCPFlags.RST, ts=0.4, seq=130),
        ]
        m = classify(packets)
        assert m.stage == Stage.POST_DATA
        assert m.signature == SignatureId.DATA_RST

    def test_response_ack_promotes_to_post_data(self):
        packets = handshake() + [
            trigger(),
            pkt(TCPFlags.ACK, ts=0.3, seq=116, ack=3000),  # acks server response
            pkt(TCPFlags.RST, ts=0.4, seq=120),
        ]
        m = classify(packets)
        assert m.stage == Stage.POST_DATA

    def test_silence_with_trailing_ack_not_psh_none(self):
        """Idle keep-alive: data, response ACK, silence ⇒ OTHER, not a
        drop signature."""
        packets = handshake() + [
            trigger(),
            pkt(TCPFlags.ACK, ts=0.3, seq=116, ack=3000),
        ]
        m = classify(packets)
        assert m.possibly_tampered
        assert m.signature == SignatureId.OTHER

    def test_silence_right_at_data_is_psh_none(self):
        m = classify(handshake() + [trigger()])
        assert m.signature == SignatureId.PSH_NONE


class TestReorderingInteraction:
    def test_same_bucket_rst_and_ack_reconstructed(self):
        """Within one timestamp bucket the RST ranks last, so an ACK that
        arrived after the RST in stored order is still recognised as
        pre-event traffic (post-data verdict)."""
        packets = handshake() + [
            pkt(TCPFlags.RST, ts=0.0, seq=120),
            trigger(ts=0.0),
            pkt(TCPFlags.ACK, ts=0.0, seq=116, ack=3000),
        ]
        m = classify(packets)
        assert m.stage == Stage.POST_DATA

    def test_stage_stable_under_shuffle(self):
        import random

        packets = handshake() + [
            trigger(),
            pkt(TCPFlags.ACK, ts=0.3, seq=116, ack=3000),
            pkt(TCPFlags.FINACK, ts=0.4, seq=116, ack=3001),
            pkt(TCPFlags.RST, ts=0.5, seq=117),
        ]
        flat = [p.clone(ts=0.0) for p in packets]
        baseline = classify(flat, window_end=10.0).signature
        rng = random.Random(4)
        for _ in range(20):
            shuffled = flat[:]
            rng.shuffle(shuffled)
            assert classify(shuffled, window_end=10.0).signature == baseline


class TestVendorStageEndToEnd:
    def test_post_psh_vendors_stay_post_psh_despite_client_acks(self):
        """End to end, PSH-stage injectors tear the client down before it
        can ACK a response, so the immediate boundary holds."""
        from tests.conftest import run_vendor

        for vendor in ("gfw", "single_rst", "zero_ack_injector"):
            result = run_vendor(vendor)
            assert result.stage == Stage.POST_PSH, vendor

    def test_enterprise_vendor_lands_post_data(self):
        from repro.netstack.http import build_http_request
        from tests.conftest import run_vendor

        head = build_http_request("blocked.example", path="/u", method="POST")
        result = run_vendor("enterprise_rst", protocol="http",
                            segments=[head, b"body=confidential"])
        assert result.stage == Stage.POST_DATA
