"""Tests for residual-censorship behaviour and its active measurement."""

import pytest

from repro.active.residual import measure_residual_window
from repro.middlebox.policy import BlockPolicy, DomainRule
from repro.middlebox.vendors import enterprise_rst, gfw, iran_drop, single_rst


def device_for(factory, seed=9):
    return factory(BlockPolicy([DomainRule(["blocked.example"])]), seed=seed)


class TestMeasurement:
    def test_gfw_window_recovered(self):
        m = measure_residual_window(device_for(gfw))
        # Configured 90 s: the sweep must bracket it.
        assert 75.0 <= m.estimated_window <= 95.0
        assert m.first_unblocked is not None
        assert m.first_unblocked > m.estimated_window

    def test_iran_window_recovered(self):
        m = measure_residual_window(device_for(iran_drop))
        assert 30.0 <= m.estimated_window <= 45.0

    def test_single_rst_window_recovered(self):
        m = measure_residual_window(device_for(single_rst))
        assert 60.0 <= m.estimated_window <= 75.0

    def test_monotone_blocking(self):
        """Blocked probes precede clear probes: the window is an interval."""
        m = measure_residual_window(device_for(gfw))
        states = [p.blocked for p in m.probes]
        assert states == sorted(states, reverse=True)

    def test_no_residual_vendor_all_clear(self):
        m = measure_residual_window(device_for(enterprise_rst))
        assert m.estimated_window is None
        assert m.first_unblocked == min(p.delay for p in m.probes)

    def test_untriggered_device_all_clear(self):
        device = gfw(BlockPolicy([DomainRule(["other.example"])]), seed=3)
        m = measure_residual_window(device)
        assert m.estimated_window is None


class TestResidualSemantics:
    def test_innocent_domain_blocked_inside_window(self):
        """Residual censorship is content-blind within the window."""
        from tests.conftest import capture, make_client, run_connection
        from repro.core.classifier import TamperingClassifier

        device = device_for(gfw)
        trigger = make_client(domain="blocked.example", port=42_001, seed=1)
        run_connection(trigger, middleboxes=[device],
                       server_port=trigger.peer_port, start=500.0, seed=1)
        innocent = make_client(domain="innocent.example", port=42_002, seed=2)
        result = run_connection(innocent, middleboxes=[device],
                                server_port=innocent.peer_port, start=510.0, seed=2)
        verdict = TamperingClassifier().classify(capture(result, conn_id=2))
        assert verdict.is_tampering
        # The trigger content of the *collateral* block is visible.
        assert verdict.domain == "innocent.example"

    def test_different_client_unaffected(self):
        from tests.conftest import capture, make_client, run_connection
        from repro.core.classifier import TamperingClassifier

        device = device_for(gfw)
        trigger = make_client(domain="blocked.example", port=42_003, seed=3)
        run_connection(trigger, middleboxes=[device],
                       server_port=trigger.peer_port, start=500.0, seed=3)
        other = make_client(domain="innocent.example", client_ip="11.0.0.77",
                            port=42_004, seed=4)
        result = run_connection(other, middleboxes=[device],
                                server_port=other.peer_port, start=510.0, seed=4)
        verdict = TamperingClassifier().classify(capture(result, conn_id=4))
        assert not verdict.is_tampering
