"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in a subprocess with a scaled-down workload.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))


def _env_with_src() -> dict:
    """Subprocess environment with ``src`` importable.

    The test process itself may import repro via PYTHONPATH or an
    editable install; a child process only inherits the former, so
    prepend ``src`` explicitly to make the examples self-contained.
    """
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")
    return env

CASES = [
    ("quickstart.py", ["400"], "Most-tampered countries"),
    ("gfw_case_study.py", [], "residual censorship"),
    ("iran_protests.py", ["900"], "mobile ISPs dominate"),
    ("testlist_audit.py", ["1200"], "tampered domains each list covers"),
    ("forged_packet_forensics.py", [], "Forged vs organic RSTs"),
    ("active_vs_passive.py", ["700"], "Who sees what"),
    ("custom_world.py", [], "Newcensoria"),
]


@pytest.mark.parametrize("script,args,marker", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args, marker, tmp_path):
    path = os.path.join(EXAMPLES_DIR, script)
    extra_args = list(args)
    if script == "forged_packet_forensics.py":
        extra_args = [str(tmp_path)]
    proc = subprocess.run(
        [sys.executable, path] + extra_args,
        capture_output=True,
        text=True,
        timeout=420,
        cwd=str(tmp_path),
        env=_env_with_src(),
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout, f"expected {marker!r} in output"
