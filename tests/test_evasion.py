"""Tests for the §6 evasion thought experiment.

The paper's concluding remarks sketch the one strategy that defeats
passive server-side detection: block content toward the client while
continuing the connection to the server as if nothing happened.  The
``evasive_censor`` vendor implements it; these tests certify both halves
of the claim -- the censorship is real, and the methodology is blind.
"""

import pytest

from repro.core.classifier import TamperingClassifier
from repro.core.evidence import evidence_for_sample
from repro.core.model import SignatureId
from repro.middlebox.policy import BlockPolicy, DomainRule
from repro.middlebox.vendors import evasive_censor, gfw, make_preset
from tests.conftest import capture, make_client, run_connection


@pytest.fixture
def device():
    return evasive_censor(BlockPolicy([DomainRule(["blocked.example"])]), seed=3)


def run_blocked(device, seed=3):
    client = make_client(seed=seed)
    result = run_connection(client, middleboxes=[device], server_port=client.peer_port, seed=seed)
    return client, result


class TestCensorshipIsReal:
    def test_client_receives_nothing(self, device):
        client, result = run_blocked(device)
        payload = sum(len(p.payload) for p in result.client_received if p.has_payload)
        assert payload == 0
        assert device.triggers == 1

    def test_innocent_domain_flows_normally(self, device):
        client = make_client(domain="innocent.example")
        result = run_connection(client, middleboxes=[device], server_port=client.peer_port)
        payload = sum(len(p.payload) for p in result.client_received if p.has_payload)
        assert payload > 0
        assert device.triggers == 0


class TestMethodologyIsBlind:
    def test_server_side_verdict_is_clean(self, device):
        _, result = run_blocked(device)
        sample = capture(result)
        verdict = TamperingClassifier().classify(sample)
        assert verdict.signature == SignatureId.NOT_TAMPERING
        assert not verdict.possibly_tampered

    def test_server_sees_graceful_close(self, device):
        _, result = run_blocked(device)
        flags = [p.flags for p in result.server_inbound]
        assert any(f.is_fin for f in flags)
        assert not any(f.is_rst for f in flags)

    def test_no_rst_evidence_either(self, device):
        _, result = run_blocked(device)
        summary = evidence_for_sample(capture(result))
        # The IP-ID/TTL evidence only examines RSTs; there are none.
        assert summary.max_ipid_delta is None
        assert summary.max_ttl_delta is None

    def test_contrast_with_gfw(self):
        policy = BlockPolicy([DomainRule(["blocked.example"])])
        loud = gfw(policy, seed=4)
        _, result = run_blocked(loud, seed=4)
        verdict = TamperingClassifier().classify(capture(result, seed=4))
        assert verdict.is_tampering  # same censorship goal, visible tear-down

    def test_ground_truth_still_knows(self, device):
        """The simulator labels the forged continuation packets, so
        evaluation code can quantify the blind spot."""
        _, result = run_blocked(device)
        assert any(p.injected for p in result.server_inbound)


class TestRegistry:
    def test_preset_available(self):
        policy = BlockPolicy([DomainRule(["x.example"])])
        assert make_preset("evasive_censor", policy).name == "evasive-censor"
