"""Unit tests for test-list coverage analysis (Table 3)."""

import pytest

from repro.core.testlists import (
    ListCoverage,
    TestList,
    coverage_table,
    registrable_domain,
    union_list,
)


class TestRegistrableDomain:
    def test_simple(self):
        assert registrable_domain("example.com") == "example.com"
        assert registrable_domain("www.example.com") == "example.com"
        assert registrable_domain("a.b.c.example.com") == "example.com"

    def test_multi_label_suffixes(self):
        assert registrable_domain("www.example.co.uk") == "example.co.uk"
        assert registrable_domain("shop.site.com.cn") == "site.com.cn"
        assert registrable_domain("x.y.co.kr") == "y.co.kr"

    def test_bare_and_short(self):
        assert registrable_domain("com") == "com"
        assert registrable_domain("example.com.") == "example.com"
        assert registrable_domain("EXAMPLE.COM") == "example.com"


class TestTestList:
    def make(self):
        return TestList.from_domains("L", ["blocked.example", "www.other.co.uk"])

    def test_exact_matching_reduces_to_etld1(self):
        lst = self.make()
        assert lst.contains_exact("blocked.example")
        assert lst.contains_exact("cdn.blocked.example")
        assert lst.contains_exact("other.co.uk")
        assert not lst.contains_exact("unrelated.example")

    def test_substring_matching(self):
        lst = TestList.from_domains("L", ["wn.com"])
        assert lst.contains_substring("wn.com")
        assert lst.contains_substring("dawn.com")  # entry in target
        lst2 = TestList.from_domains("L2", ["breakingdawn.com"])
        assert lst2.contains_substring("dawn.com")  # target in entry

    def test_len(self):
        assert len(self.make()) == 2

    def test_union(self):
        a = TestList.from_domains("A", ["x.com"])
        b = TestList.from_domains("B", ["y.com", "x.com"])
        u = union_list("U", [a, b])
        assert len(u) == 2
        assert u.contains_exact("y.com")


class TestCoverageTable:
    def test_counts_and_percentages(self):
        lists = [
            TestList.from_domains("Good", ["a.com", "b.com", "c.com"]),
            TestList.from_domains("Poor", ["a.com"]),
        ]
        tampered = {"Global": {"a.com", "b.com", "zzz.com"}, "CN": {"a.com"}}
        table = coverage_table(tampered, lists)

        good_global = table[("Good", "Global")]
        assert good_global.n_tampered == 3
        assert good_global.n_covered_exact == 2
        assert good_global.pct_exact == pytest.approx(100 * 2 / 3)

        poor_cn = table[("Poor", "CN")]
        assert poor_cn.pct_exact == 100.0

    def test_substring_at_least_exact(self):
        lists = [TestList.from_domains("L", ["blocked.example"])]
        tampered = {"Global": {"www.blocked.example", "other.example"}}
        cov = coverage_table(tampered, lists)[("L", "Global")]
        assert cov.n_covered_substring >= cov.n_covered_exact

    def test_empty_region(self):
        lists = [TestList.from_domains("L", ["a.com"])]
        cov = coverage_table({"IR": set()}, lists)[("L", "IR")]
        assert cov.pct_exact == 0.0
        assert cov.pct_substring == 0.0
