"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import chunk_payload, zipf_weights
from repro.core.model import SignatureId, Stage
from repro.core.sequence import reconstruct_order
from repro.core.signatures import match_signature
from repro.core.testlists import registrable_domain
from repro.netstack.flags import TCPFlags, flags_from_str, flags_to_str
from repro.netstack.options import TCPOption, decode_options, encode_options
from repro.netstack.packet import Packet

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

ipv4 = st.builds(
    lambda a, b, c, d: f"{a}.{b}.{c}.{d}",
    st.integers(0, 223), st.integers(0, 255), st.integers(0, 255), st.integers(1, 254),
)

tcp_flags = st.sampled_from([
    TCPFlags.SYN, TCPFlags.SYNACK, TCPFlags.ACK, TCPFlags.PSHACK,
    TCPFlags.FINACK, TCPFlags.RST, TCPFlags.RSTACK, TCPFlags.FIN,
])

options_strategy = st.lists(
    st.builds(
        TCPOption,
        kind=st.integers(2, 30),
        data=st.binary(min_size=0, max_size=6),
    ),
    max_size=4,
)

packets_strategy = st.builds(
    Packet,
    ts=st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
    src=ipv4,
    dst=ipv4,
    ttl=st.integers(1, 255),
    ip_id=st.integers(0, 0xFFFF),
    sport=st.integers(1, 0xFFFF),
    dport=st.integers(1, 0xFFFF),
    seq=st.integers(0, 2**32 - 1),
    ack=st.integers(0, 2**32 - 1),
    flags=tcp_flags,
    window=st.integers(0, 0xFFFF),
    payload=st.binary(max_size=64),
)


# ---------------------------------------------------------------------------
# Wire-format roundtrips
# ---------------------------------------------------------------------------

@given(packets_strategy)
@settings(max_examples=200)
def test_packet_wire_roundtrip(pkt):
    decoded = Packet.decode(pkt.encode(), ts=pkt.ts, strict=True)
    assert decoded.src == pkt.src
    assert decoded.dst == pkt.dst
    assert decoded.ttl == pkt.ttl
    assert decoded.ip_id == pkt.ip_id
    assert decoded.sport == pkt.sport and decoded.dport == pkt.dport
    assert decoded.seq == pkt.seq and decoded.ack == pkt.ack
    assert decoded.flags == pkt.flags
    assert decoded.window == pkt.window
    assert decoded.payload == pkt.payload


@given(options_strategy)
@settings(max_examples=200)
def test_options_roundtrip(options):
    try:
        encoded = encode_options(options)
    except ValueError:
        return  # over the 40-byte budget: rejection is the contract
    assert decode_options(encoded) == options
    assert len(encoded) % 4 == 0


@given(st.integers(0, 255))
def test_flags_string_roundtrip(bits):
    flags = TCPFlags(bits)
    assert flags_from_str(flags_to_str(flags)) == flags


# ---------------------------------------------------------------------------
# Classifier invariants
# ---------------------------------------------------------------------------

def _inbound(pkts):
    # Rebase onto one flow so they form one plausible connection sample.
    return [
        p.clone(src="11.0.0.1", dst="198.41.0.1", sport=40000, dport=443)
        for p in pkts
    ]


@given(st.lists(packets_strategy, max_size=10))
@settings(max_examples=300)
def test_classifier_total_function(pkts):
    """Every packet list classifies to exactly one signature, no crash."""
    match = match_signature(_inbound(pkts), window_end=2e6)
    assert isinstance(match.signature, SignatureId)
    assert isinstance(match.stage, Stage)
    if match.signature.is_tampering:
        assert match.possibly_tampered


@given(st.lists(packets_strategy, max_size=10), st.randoms(use_true_random=False))
@settings(max_examples=200)
def test_classification_order_invariant(pkts, rnd):
    """Shuffling the stored order never changes the verdict (reorder on)."""
    inbound = _inbound(pkts)
    baseline = match_signature(inbound, window_end=2e6).signature
    shuffled = list(inbound)
    rnd.shuffle(shuffled)
    assert match_signature(shuffled, window_end=2e6).signature == baseline


@given(st.lists(packets_strategy, max_size=10))
@settings(max_examples=200)
def test_reconstruction_idempotent(pkts):
    once = reconstruct_order(pkts)
    assert reconstruct_order(once) == once
    assert sorted(id(p) for p in once) == sorted(id(p) for p in pkts)


@given(st.lists(packets_strategy, min_size=1, max_size=10))
@settings(max_examples=200)
def test_reconstruction_preserves_bucket_order(pkts):
    ordered = reconstruct_order(pkts)
    buckets = [p.ts for p in ordered]
    assert buckets == sorted(buckets)


# ---------------------------------------------------------------------------
# Misc invariants
# ---------------------------------------------------------------------------

_LABEL = st.from_regex(r"[a-z][a-z0-9-]{0,8}", fullmatch=True)


@given(st.lists(_LABEL, min_size=1, max_size=6))
def test_dns_name_roundtrip(labels):
    from repro.dns.message import decode_name, encode_name

    name = ".".join(labels)
    encoded = encode_name(name)
    decoded, offset = decode_name(encoded, 0)
    assert decoded == name
    assert offset == len(encoded)


@given(
    st.lists(_LABEL, min_size=1, max_size=4),
    st.integers(0, 0xFFFF),
    st.sampled_from(["A", "AAAA"]),
)
def test_dns_message_roundtrip(labels, txid, rtype_name):
    from repro.dns.message import DnsMessage, DnsRecord, QType

    name = ".".join(labels)
    qtype = QType[rtype_name]
    address = "198.41.0.9" if qtype == QType.A else "2606:4700::9"
    query = DnsMessage.query(name, qtype=qtype, txid=txid)
    response = query.respond([DnsRecord(name, qtype, 300, address)])
    back = DnsMessage.decode(response.encode())
    assert back.header.txid == txid
    assert back.question_name == name
    assert back.addresses() == [address]


@given(st.lists(_LABEL, min_size=1, max_size=5))
def test_registrable_domain_is_suffix_and_idempotent(labels):
    domain = ".".join(labels)
    reg = registrable_domain(domain)
    assert domain.endswith(reg)
    assert registrable_domain(reg) == reg
    assert len(reg.split(".")) <= 3


@given(st.binary(min_size=0, max_size=500), st.integers(1, 100))
def test_chunk_payload_reassembles(payload, mss):
    chunks = chunk_payload(payload, mss)
    assert b"".join(chunks) == payload
    assert all(0 < len(c) <= mss for c in chunks)


@given(st.integers(1, 500), st.floats(0.1, 2.0))
def test_zipf_weights_normalized_and_decreasing(n, exponent):
    weights = zipf_weights(n, exponent)
    assert len(weights) == n
    assert math.isclose(sum(weights), 1.0, rel_tol=1e-9)
    assert all(a >= b for a, b in zip(weights, weights[1:]))
