"""Unit tests for the canned study scenarios."""

import pytest

from repro.core.model import Stage
from repro.workloads.scenarios import (
    JAN_12_2023,
    SEP_13_2022,
    _iran_escalation,
    iran_protest_study,
    two_week_study,
)

_DAY = 86400.0


class TestTwoWeekStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return two_week_study(n_connections=400, seed=21, n_domains=800)

    def test_window(self, study):
        assert study.start_ts == JAN_12_2023
        assert study.duration == 14 * _DAY
        for ts in study.timestamps.values():
            assert JAN_12_2023 <= ts < JAN_12_2023 + 14 * _DAY

    def test_samples_produced(self, study):
        assert len(study.samples) >= 380  # nearly every connection observable

    def test_analyze_annotates_countries(self, study):
        data = study.analyze()
        assert len(data) == len(study.samples)
        countries = set(data.countries)
        assert "??" not in countries
        assert len(countries) > 10

    def test_analyze_accepts_custom_classifier(self, study):
        from repro.core.classifier import ClassifierConfig, TamperingClassifier

        strict = TamperingClassifier(ClassifierConfig(inactivity_seconds=8.0))
        data = study.analyze(classifier=strict)
        assert len(data) == len(study.samples)

    def test_deterministic(self):
        a = two_week_study(n_connections=100, seed=5, n_domains=600)
        b = two_week_study(n_connections=100, seed=5, n_domains=600)
        sig_a = [s.truth_vendor for s in a.samples]
        sig_b = [s.truth_vendor for s in b.samples]
        assert sig_a == sig_b


class TestIranEscalation:
    def test_other_countries_unaffected(self):
        assert _iran_escalation("DE", SEP_13_2022 + 5 * _DAY) == 1.0

    def test_escalates_after_protests(self):
        before = _iran_escalation("IR", SEP_13_2022 + 0.1 * _DAY)
        after = _iran_escalation("IR", SEP_13_2022 + 6 * _DAY)
        assert after > before

    def test_evening_peak(self):
        # Same day, Iranian evening (21:00 local = 17:30 UTC) vs morning.
        day5 = SEP_13_2022 + 5 * _DAY
        evening = _iran_escalation("IR", day5 + 17.5 * 3600.0)
        morning = _iran_escalation("IR", day5 + 6.5 * 3600.0)
        assert evening > morning


class TestIranProtestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return iran_protest_study(n_connections=500, seed=17, days=6.0)

    def test_iran_dominates(self, study):
        data = study.analyze()
        ir = len(data.in_countries(["IR"]))
        assert ir > 0.7 * len(data)

    def test_tampering_rate_grows(self, study):
        data = study.analyze().in_countries(["IR"])
        series = data.timeseries(bucket_seconds=2 * _DAY,
                                 stages=(Stage.POST_SYN, Stage.POST_ACK, Stage.POST_PSH,
                                         Stage.POST_DATA))["IR"]
        assert len(series) >= 2
        first, last = series[0][1], series[-1][1]
        assert last > first
