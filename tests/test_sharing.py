"""Unit tests for the privacy-preserving aggregate export."""

import io
import json

import pytest

from repro.core.aggregate import AnalysisDataset, AnalyzedConnection
from repro.core.model import SignatureId, Stage
from repro.core.sharing import DEFAULT_MIN_CELL, build_radar_export, write_radar_json

_DAY = 86400.0


def conn(country="CN", signature=SignatureId.PSH_RST, ts=0.0, conn_id=0, client_ip="11.0.0.1"):
    return AnalyzedConnection(
        conn_id=conn_id, ts=ts, country=country, asn=1,
        signature=signature, stage=signature.stage, ip_version=4,
        server_port=443, protocol=None, domain="secret-domain.example",
        client_ip=client_ip,
        possibly_tampered=signature != SignatureId.NOT_TAMPERING,
    )


def populous_day(country="CN", day=0, n=30, tampered=6):
    rows = []
    for i in range(n):
        sig = SignatureId.PSH_RST if i < tampered else SignatureId.NOT_TAMPERING
        rows.append(conn(country=country, signature=sig, ts=day * _DAY + i, conn_id=day * 1000 + i))
    return rows


class TestAggregation:
    def test_any_record_and_per_signature(self):
        data = AnalysisDataset(populous_day())
        records = build_radar_export(data, min_cell=20)
        any_rec = next(r for r in records if r.signature == "any")
        assert any_rec.connections == 30
        assert any_rec.matches == 6
        assert any_rec.share_pct == pytest.approx(20.0)
        sig_rec = next(r for r in records if r.signature == SignatureId.PSH_RST.display)
        assert sig_rec.matches == 6

    def test_day_indexing_from_epoch(self):
        data = AnalysisDataset(populous_day(day=0) + populous_day(day=3))
        records = build_radar_export(data, min_cell=20)
        days = {r.day for r in records}
        assert days == {0, 3}

    def test_empty_dataset(self):
        assert build_radar_export(AnalysisDataset([])) == []

    def test_min_cell_validation(self):
        with pytest.raises(ValueError):
            build_radar_export(AnalysisDataset(populous_day()), min_cell=0)


class TestPrivacy:
    def test_small_cells_suppressed(self):
        rows = populous_day(country="CN") + [
            conn(country="TV", signature=SignatureId.PSH_RST, ts=5.0, conn_id=999)
        ]
        records = build_radar_export(AnalysisDataset(rows), min_cell=20)
        assert all(r.country != "TV" for r in records)
        assert all(r.connections >= 20 for r in records)

    def test_no_identifiers_in_output(self):
        records = build_radar_export(AnalysisDataset(populous_day()), min_cell=20)
        blob = json.dumps([r.to_dict() for r in records])
        assert "11.0.0.1" not in blob
        assert "secret-domain.example" not in blob

    def test_default_floor_is_meaningful(self):
        assert DEFAULT_MIN_CELL >= 10


class TestSerialization:
    def test_write_json(self):
        records = build_radar_export(AnalysisDataset(populous_day()), min_cell=20)
        buf = io.StringIO()
        count = write_radar_json(buf, records)
        assert count == len(records)
        loaded = json.loads(buf.getvalue())
        assert loaded[0]["signature"] == "any"

    def test_write_json_file(self, tmp_path):
        records = build_radar_export(AnalysisDataset(populous_day()), min_cell=20)
        path = str(tmp_path / "radar.json")
        write_radar_json(path, records, indent=2)
        with open(path) as fh:
            assert json.load(fh)


class TestOnRealStudy:
    def test_export_covers_major_countries(self, small_dataset):
        records = build_radar_export(small_dataset, min_cell=10)
        countries = {r.country for r in records}
        assert "US" in countries or "CN" in countries
        for r in records:
            assert 0.0 <= r.share_pct <= 100.0
            assert r.matches <= r.connections
