"""Public API surface checks.

Guards the package's importable contract: everything advertised in
``__all__`` exists, subpackage exports resolve, and the version is sane.
"""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.netstack",
    "repro.middlebox",
    "repro.network",
    "repro.cdn",
    "repro.core",
    "repro.workloads",
    "repro.active",
    "repro.dns",
]


class TestRootPackage:
    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_all_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points(self):
        assert callable(repro.two_week_study)
        assert callable(repro.TamperingClassifier)
        assert len(repro.SIGNATURES) == 19


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_all_resolvable(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} needs a docstring"
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name}"


class TestVerdictHelpers:
    def test_allow_and_drop(self):
        from repro.middlebox.actions import BlackholeMode, Verdict

        allow = Verdict.allow()
        assert allow.forward and not allow.injects
        drop = Verdict.drop(blackhole=BlackholeMode.BOTH)
        assert not drop.forward
        assert drop.blackhole == BlackholeMode.BOTH

    def test_summary_tuple(self):
        from repro.middlebox.actions import Verdict
        from repro.netstack.flags import TCPFlags
        from repro.netstack.packet import Packet

        pkt = Packet(src="1.1.1.1", dst="2.2.2.2", sport=1, dport=2, flags=TCPFlags.RST)
        verdict = Verdict(forward=True, to_server=[pkt])
        forward, n_server, n_client, blackhole = verdict.summary()
        assert (forward, n_server, n_client) == (True, 1, 0)
        assert verdict.injects


class TestBaseMiddlebox:
    def test_transparent_device_noop(self):
        from repro.middlebox.device import Middlebox
        from repro.netstack.flags import TCPFlags
        from repro.netstack.packet import Packet

        device = Middlebox()
        pkt = Packet(src="1.1.1.1", dst="2.2.2.2", sport=1, dport=2, flags=TCPFlags.SYN)
        assert device.process(pkt, 0.0).forward
        device.reset()
        device.forget_flow(pkt.conn_key)  # no-ops must not raise


class TestVendorTableDocs:
    def test_docstring_covers_every_table1_vendor(self):
        """The vendors module docstring table must mention each preset
        that maps to a Table 1 signature."""
        import repro.middlebox.vendors as vendors

        doc = vendors.__doc__
        for name in ("gfw", "iran_drop", "tm_http", "korea_guesser",
                     "zero_ack_injector", "enterprise_firewall"):
            assert name in doc, name
