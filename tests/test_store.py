"""Tests for :mod:`repro.store`: the partitioned on-disk rollup store.

The load-bearing guarantee is **exact batch parity**: every query the
store answers -- before compaction, after compaction, after a cold
reopen, and after a checkpoint restore -- must be byte-for-byte equal
(same floats, same key order) to an in-memory :class:`StreamRollup`
that saw the whole stream.  Randomized ingest drives that end to end;
the unit classes pin down each layer (catalog, slices/segments, WAL,
manifest, compaction, queries) in isolation.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro._util import atomic_write_json, fsync_directory
from repro.core.model import SignatureId, Stage
from repro.errors import CheckpointError, StoreError, StreamError
from repro.store import (
    BucketSlice,
    CompactionChaos,
    CompactionConfig,
    KeyCatalog,
    MANIFEST_NAME,
    Manifest,
    RollupStore,
    StoreConfig,
    StoreQuery,
    WalEntry,
    WriteAheadLog,
    load_segment,
    write_segment,
)
from repro.store.segment import SegmentMeta
from repro.stream import (
    CheckpointManager,
    IterableSource,
    StreamEngine,
    StreamRecord,
    StreamRollup,
)
from repro.stream.faults import _rollup_fingerprint
from repro.workloads.scenarios import two_week_study

HOUR = 3600.0

TAMPERING_SIGS = [sig for sig in SignatureId if sig.is_tampering]
NON_TAMPERING_SIGS = [SignatureId.NOT_TAMPERING, SignatureId.OTHER]
STAGES = list(Stage)
COUNTRIES = ["CN", "IR", "RU", "US", "DE", "IN", "??"]


@pytest.fixture(scope="module")
def study():
    return two_week_study(n_connections=400, seed=7)


def make_source(study, n=None):
    samples = study.samples if n is None else study.samples[:n]
    return IterableSource(samples, timestamps=study.timestamps)


def make_record(seq, ts, country, signature, stage, possibly):
    return StreamRecord(
        seq=seq,
        conn_id=seq,
        signature=signature,
        stage=stage,
        possibly_tampered=possibly,
        protocol="http",
        domain="example.com",
        client_ip="203.0.113.7",
        ip_version=4,
        server_port=80,
        ts=ts,
        country=country,
    )


def random_records(seed, n, n_buckets=24):
    """A seeded in-order stream covering every counter family."""
    rng = random.Random(seed)
    timestamps = sorted(rng.uniform(0.0, n_buckets * HOUR) for _ in range(n))
    records = []
    for seq, ts in enumerate(timestamps):
        if rng.random() < 0.4:
            signature = rng.choice(TAMPERING_SIGS)
            possibly = rng.random() < 0.9  # matched-but-not-possibly too
        else:
            signature = rng.choice(NON_TAMPERING_SIGS)
            possibly = signature is SignatureId.OTHER
        records.append(
            make_record(
                seq,
                ts,
                rng.choice(COUNTRIES),
                signature,
                rng.choice(STAGES),
                possibly,
            )
        )
    return records


def ordered(value):
    """Freeze dict key order into lists so ``==`` compares it too."""
    if isinstance(value, dict):
        return [[str(key), ordered(val)] for key, val in value.items()]
    if isinstance(value, (list, tuple)):
        return [ordered(item) for item in value]
    return value


def assert_query_parity(store, rollup):
    """All four families answer byte-for-byte like the rollup."""
    assert ordered(
        store.query(StoreQuery("country_tampering_rate")).value
    ) == ordered(rollup.country_tampering_rate())
    assert ordered(store.query(StoreQuery("timeseries")).value) == ordered(
        rollup.timeseries()
    )
    for country in rollup.countries:
        got = store.query(
            StoreQuery("signature_hour_counts", country=country)
        ).value
        assert ordered(got) == ordered(rollup.signature_hour_counts(country))
    assert ordered(store.query(StoreQuery("stage_statistics")).value) == ordered(
        rollup.stage_statistics()
    )


def small_compaction():
    return StoreConfig(
        wal_sync_records=32,
        compaction=CompactionConfig(trigger=4, fanout=4),
    )


# ----------------------------------------------------------------------
# Key catalog
# ----------------------------------------------------------------------
class TestKeyCatalog:
    def test_first_seen_order_is_stable_and_idempotent(self):
        catalog = KeyCatalog()
        catalog.observe("IR", SignatureId.PSH_RST, True)
        catalog.observe("CN", SignatureId.NOT_TAMPERING, False)
        catalog.observe("IR", SignatureId.NOT_TAMPERING, False)
        catalog.observe("IR", SignatureId.PSH_RST, True)  # no-op
        catalog.observe("CN", SignatureId.SYN_RST, True)
        assert catalog.countries == ["IR", "CN"]
        assert catalog.country_sigs["IR"] == [
            SignatureId.PSH_RST,
            SignatureId.NOT_TAMPERING,
        ]
        assert catalog.global_sigs == [SignatureId.PSH_RST, SignatureId.SYN_RST]

    def test_counts_globally_gate(self):
        catalog = KeyCatalog()
        # Matched but not possibly-tampered: the rollup would not touch
        # signature_counts, so the global order must not record it.
        catalog.observe("IR", SignatureId.PSH_RST, False)
        assert catalog.global_sigs == []
        catalog.observe("IR", SignatureId.PSH_RST, True)
        assert catalog.global_sigs == [SignatureId.PSH_RST]

    def test_observe_record_maps_non_tampering_keys(self):
        catalog = KeyCatalog()
        catalog.observe_record(
            make_record(0, 0.0, "CN", SignatureId.OTHER, Stage.NONE, True)
        )
        assert catalog.country_sigs["CN"] == [SignatureId.NOT_TAMPERING]
        assert catalog.global_sigs == []

    def test_roundtrip(self):
        catalog = KeyCatalog()
        for record in random_records(3, 120):
            catalog.observe_record(record)
        clone = KeyCatalog.from_dict(
            json.loads(json.dumps(catalog.to_dict()))
        )
        assert clone == catalog
        assert clone.ordered_countries() == catalog.ordered_countries()
        assert clone.ordered_global_sigs() == catalog.ordered_global_sigs()

    def test_ordered_filters_preserve_relative_order(self):
        catalog = KeyCatalog()
        for country in ["RU", "IR", "CN"]:
            catalog.observe(country, SignatureId.SYN_RST, True)
        assert catalog.ordered_countries({"CN", "RU"}) == ["RU", "CN"]
        assert catalog.ordered_sigs("RU", set()) == []
        assert catalog.ordered_sigs("??") == []


# ----------------------------------------------------------------------
# Bucket slices and segment files
# ----------------------------------------------------------------------
class TestBucketSlice:
    def test_add_mirrors_rollup_for_one_bucket(self):
        records = [
            r for r in random_records(5, 200, n_buckets=1)
        ]  # all in bucket 0
        rollup = StreamRollup()
        slice_ = BucketSlice(0.0)
        for record in records:
            rollup.add(record)
            slice_.add(
                record.country,
                record.ts,
                record.signature,
                record.stage,
                record.possibly_tampered,
            )
        assert slice_.n_records == rollup.n_records
        assert slice_.possibly_tampered == rollup.possibly_tampered
        assert slice_.totals == rollup.totals
        assert slice_.by_signature == rollup.by_signature
        assert slice_.stage_counts == rollup.stage_counts
        assert slice_.stage_matched == rollup.stage_matched
        assert slice_.signature_counts == dict(rollup.signature_counts)
        assert (slice_.min_ts, slice_.max_ts) == (rollup.min_ts, rollup.max_ts)

    def test_payload_roundtrip(self):
        slice_ = BucketSlice(HOUR)
        for record in random_records(9, 150, n_buckets=1):
            slice_.add(
                record.country,
                HOUR + record.ts,
                record.signature,
                record.stage,
                record.possibly_tampered,
            )
        clone = BucketSlice.from_payload(
            HOUR, json.loads(json.dumps(slice_.to_payload()))
        )
        for field in (
            "n_records",
            "possibly_tampered",
            "totals",
            "matches",
            "by_signature",
            "signature_cells",
            "stage_counts",
            "stage_matched",
            "signature_counts",
            "min_ts",
            "max_ts",
        ):
            assert getattr(clone, field) == getattr(slice_, field), field

    def test_merge_rejects_different_bucket(self):
        with pytest.raises(StoreError):
            BucketSlice(0.0).merge(BucketSlice(HOUR))


class TestSegmentFiles:
    def _slice(self, bucket, country="IR", n=3):
        slice_ = BucketSlice(bucket)
        for i in range(n):
            slice_.add(
                country, bucket + i, SignatureId.PSH_RST, Stage.POST_PSH, True
            )
        return slice_

    def test_write_and_load_roundtrip(self, tmp_path):
        slices = [self._slice(HOUR, "IR"), self._slice(0.0, "CN")]
        meta = write_segment(str(tmp_path), 7, 1, slices)
        assert meta.buckets == (0.0, HOUR)  # sorted on write
        assert meta.countries == ("CN", "IR")
        assert meta.n_records == 6
        assert meta.size_bytes == os.path.getsize(tmp_path / meta.name)
        segment = load_segment(str(tmp_path), meta)
        assert set(segment.slices) == {0.0, HOUR}
        assert segment.slices[HOUR].totals == {"IR": 3}

    def test_empty_and_duplicate_buckets_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            write_segment(str(tmp_path), 0, 0, [])
        with pytest.raises(StoreError):
            write_segment(
                str(tmp_path), 0, 0, [self._slice(0.0), self._slice(0.0)]
            )

    def test_load_validates_version_and_id(self, tmp_path):
        meta = write_segment(str(tmp_path), 1, 0, [self._slice(0.0)])
        path = tmp_path / meta.name
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="version"):
            load_segment(str(tmp_path), meta)
        payload["version"] = 1
        payload["id"] = 42
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="id"):
            load_segment(str(tmp_path), meta)

    def test_load_validates_bucket_set(self, tmp_path):
        meta = write_segment(
            str(tmp_path), 2, 0, [self._slice(0.0), self._slice(HOUR)]
        )
        data = meta.to_dict()
        data["buckets"] = [0.0]
        lying = SegmentMeta.from_dict(data)
        with pytest.raises(StoreError, match="buckets"):
            load_segment(str(tmp_path), lying)

    def test_overlaps_pushdown_edges(self):
        seg = SegmentMeta(
            segment_id=0,
            name="seg-0-00000000.json",
            level=0,
            min_bucket=2 * HOUR,
            max_bucket=4 * HOUR,
            buckets=(2 * HOUR, 3 * HOUR, 4 * HOUR),
            n_records=1,
            countries=("IR",),
            size_bytes=1,
        )
        assert seg.overlaps(None, None)
        assert seg.overlaps(4 * HOUR, None)  # max bucket is inclusive
        assert not seg.overlaps(4 * HOUR + HOUR, None)
        assert seg.overlaps(None, 2 * HOUR + 1)  # end is exclusive
        assert not seg.overlaps(None, 2 * HOUR)
        assert seg.overlaps(3 * HOUR, 3 * HOUR + 1)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
def _entry(ordinal, bucket, country="IR", sig=SignatureId.PSH_RST):
    return WalEntry(
        ordinal=ordinal,
        bucket=bucket,
        country=country,
        ts=bucket + 0.5,
        signature=sig,
        stage=Stage.POST_PSH,
        possibly_tampered=True,
    )


class TestWriteAheadLog:
    def test_append_replay_roundtrip_in_ordinal_order(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), sync_every=4)
        # Interleave two buckets so per-file order != global order.
        for ordinal, bucket in [(1, 0.0), (2, HOUR), (3, 0.0), (4, HOUR)]:
            wal.append(_entry(ordinal, bucket))
        wal.close()
        entries = WriteAheadLog(str(tmp_path)).replay()
        assert [e.ordinal for e in entries] == [1, 2, 3, 4]
        first = entries[0]
        assert (first.bucket, first.country, first.ts) == (0.0, "IR", 0.5)
        assert first.signature is SignatureId.PSH_RST
        assert first.stage is Stage.POST_PSH
        assert first.possibly_tampered is True

    def test_torn_final_line_is_dropped(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(_entry(1, 0.0))
        wal.append(_entry(2, 0.0))
        wal.close()
        (name, path), = wal.bucket_files()
        with open(path, "a") as fh:
            fh.write('{"n":3,"b":0.0,"c"')  # crash mid-append
        entries = WriteAheadLog(str(tmp_path)).replay()
        assert [e.ordinal for e in entries] == [1, 2]

    def test_corrupt_middle_line_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(_entry(1, 0.0))
        wal.close()
        (_, path), = wal.bucket_files()
        good = open(path).read()
        with open(path, "w") as fh:
            fh.write("garbage\n" + good)
        with pytest.raises(StoreError, match="corrupt WAL line"):
            WriteAheadLog(str(tmp_path)).replay()

    def test_rewrite_truncates(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        all_entries = [_entry(i, (i % 3) * HOUR) for i in range(1, 10)]
        for entry in all_entries:
            wal.append(entry)
        wal.rewrite(e for e in all_entries if e.ordinal <= 4)
        assert [e.ordinal for e in wal.replay()] == [1, 2, 3, 4]
        assert len(wal.bucket_files()) == 3  # ordinals 1..4 span 3 buckets
        wal.close()

    def test_drop_bucket_unlinks_and_tolerates_missing(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(_entry(1, 0.0))
        wal.sync()
        assert len(wal.bucket_files()) == 1
        wal.drop_bucket(0.0)
        assert wal.bucket_files() == []
        wal.drop_bucket(0.0)  # already gone: no-op
        wal.close()

    def test_sync_cadence_and_validation(self, tmp_path):
        with pytest.raises(StoreError):
            WriteAheadLog(str(tmp_path), sync_every=0)
        wal = WriteAheadLog(str(tmp_path), sync_every=2)
        wal.append(_entry(1, 0.0))
        assert wal.syncs == 0
        wal.append(_entry(2, 0.0))
        assert wal.syncs == 1  # cadence hit
        wal.sync()
        assert wal.syncs == 1  # nothing new to sync
        wal.close()


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
class TestManifest:
    def _meta(self, segment_id, buckets, level=0):
        buckets = tuple(sorted(buckets))
        return SegmentMeta(
            segment_id=segment_id,
            name=f"seg-{level}-{segment_id:08d}.json",
            level=level,
            min_bucket=buckets[0],
            max_bucket=buckets[-1],
            buckets=buckets,
            n_records=1,
            countries=("IR",),
            size_bytes=10,
        )

    def test_save_load_roundtrip_bumps_generation(self, tmp_path):
        manifest = Manifest(HOUR)
        manifest.catalog.observe("IR", SignatureId.SYN_RST, True)
        manifest.segments.append(self._meta(manifest.allocate_segment_id(), [0.0]))
        manifest.save(str(tmp_path))
        manifest.save(str(tmp_path))
        assert manifest.generation == 2
        loaded = Manifest.load(str(tmp_path))
        assert loaded.generation == 2
        assert loaded.next_segment_id == 1
        assert loaded.catalog == manifest.catalog
        assert loaded.segments == manifest.segments
        assert loaded.sealed_buckets() == {0.0}

    def test_load_missing_returns_none(self, tmp_path):
        assert Manifest.load(str(tmp_path)) is None

    def test_unique_owner_invariant(self, tmp_path):
        manifest = Manifest(HOUR)
        manifest.segments = [self._meta(0, [0.0, HOUR]), self._meta(1, [HOUR])]
        with pytest.raises(StoreError, match="lives in segments"):
            manifest.bucket_owners()
        manifest.save(str(tmp_path))
        with pytest.raises(StoreError, match="lives in segments"):
            Manifest.load(str(tmp_path))

    def test_schema_version_checked(self, tmp_path):
        Manifest(HOUR).save(str(tmp_path))
        path = tmp_path / MANIFEST_NAME
        data = json.loads(path.read_text())
        data["version"] = 0
        path.write_text(json.dumps(data))
        with pytest.raises(StoreError, match="schema version"):
            Manifest.load(str(tmp_path))

    def test_store_rejects_bucket_seconds_mismatch(self, tmp_path):
        Manifest(HOUR).save(str(tmp_path))
        with pytest.raises(StoreError, match="bucket_seconds"):
            RollupStore(str(tmp_path), bucket_seconds=HOUR / 2)


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
class TestCompaction:
    def test_config_validation(self):
        with pytest.raises(StoreError):
            CompactionConfig(trigger=1)
        with pytest.raises(StoreError):
            CompactionConfig(fanout=1)
        with pytest.raises(StoreError):
            CompactionConfig(max_level=0)
        with pytest.raises(StoreError):
            CompactionChaos(point="before-breakfast")
        with pytest.raises(StoreError):
            CompactionChaos(on_run=0)

    def _sealed_store(self, tmp_path, seed=21, n=400, n_buckets=20):
        records = random_records(seed, n, n_buckets=n_buckets)
        rollup = StreamRollup()
        store = RollupStore(str(tmp_path / "store"), config=small_compaction())
        for record in records:
            rollup.add(record)
            store.add(record)
        store.seal_open()
        return store, rollup

    def test_size_tiered_merge_preserves_parity(self, tmp_path):
        store, rollup = self._sealed_store(tmp_path)
        level0_before = len(store.manifest.levels().get(0, []))
        assert level0_before >= 4
        runs = store.compact()
        assert runs >= 1
        levels = store.manifest.levels()
        assert len(levels.get(0, [])) < 4  # below the trigger again
        assert any(level >= 1 for level in levels)
        # Disk holds exactly the manifested files: victims unlinked, no
        # orphans left behind.
        assert sorted(os.listdir(store.segments_dir)) == sorted(
            meta.name for meta in store.manifest.segments
        )
        store.manifest.bucket_owners()  # unique-owner invariant holds
        assert store.manifest.sealed_records() == rollup.n_records
        assert_query_parity(store, rollup)
        assert store.stats()["compaction_bytes_written"] > 0
        store.close()

    def test_max_level_is_never_exceeded(self, tmp_path):
        store, _ = self._sealed_store(tmp_path, seed=8, n=600, n_buckets=40)
        for _ in range(8):
            if not store.compact():
                break
        max_level = store.compactor.config.max_level
        assert store.manifest.levels()
        assert max(store.manifest.levels()) <= max_level
        # A full level at max_level must not be due for another merge.
        assert store.compactor.due(store.manifest) is None or max(
            store.manifest.levels()
        ) < max_level
        store.close()


# ----------------------------------------------------------------------
# Store lifecycle: randomized ingest, parity at every stage
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 11, 42])
class TestStoreLifecycleParity:
    def test_randomized_ingest_matches_rollup_everywhere(self, tmp_path, seed):
        records = random_records(seed, 600)
        rollup = StreamRollup()
        store = RollupStore(str(tmp_path / "store"), config=small_compaction())
        watermark = None
        for record in records:
            rollup.add(record)
            store.add(record)
            watermark = record.ts if watermark is None else max(watermark, record.ts)
            if record.seq % 97 == 96:
                if store.seal_through(watermark - 2 * HOUR):
                    store.maybe_compact()

        # Mixed sealed segments + open slices.
        assert store.stats()["open_buckets"] > 0
        assert_query_parity(store, rollup)
        assert _rollup_fingerprint(store.to_rollup()) == _rollup_fingerprint(rollup)

        store.seal_open()
        assert store.stats()["open_buckets"] == 0
        assert_query_parity(store, rollup)

        store.compact()
        assert_query_parity(store, rollup)
        store.close()

        reopened = RollupStore(str(tmp_path / "store"))
        assert _rollup_fingerprint(reopened.to_rollup()) == _rollup_fingerprint(
            rollup
        )
        assert_query_parity(reopened, rollup)
        reopened.close()

    def test_wal_replay_rebuilds_open_state(self, tmp_path, seed):
        records = random_records(seed, 200, n_buckets=6)
        rollup = StreamRollup()
        store = RollupStore(str(tmp_path / "store"))
        for record in records:
            rollup.add(record)
            store.add(record)
        store.flush()
        # Crash: abandon the store without sealing or closing.
        del store

        replayed = RollupStore(str(tmp_path / "store"))
        assert replayed.ordinal == len(records)
        assert _rollup_fingerprint(replayed.to_rollup()) == _rollup_fingerprint(
            rollup
        )
        assert_query_parity(replayed, rollup)
        replayed.close()

        # Replay is idempotent: a second cold open sees the same state.
        again = RollupStore(str(tmp_path / "store"))
        assert _rollup_fingerprint(again.to_rollup()) == _rollup_fingerprint(
            rollup
        )
        again.close()


class TestQueries:
    @pytest.fixture(scope="class")
    def corpus(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("store-queries")
        records = random_records(17, 700)
        rollup = StreamRollup()
        store = RollupStore(str(directory / "store"), config=small_compaction())
        for record in records:
            rollup.add(record)
            store.add(record)
        store.seal_open()
        store.compact()
        yield store, rollup
        store.close()

    def test_time_range_pushdown(self, corpus):
        store, rollup = corpus
        start, end = 6 * HOUR, 12 * HOUR
        result = store.query(StoreQuery("timeseries", start=start, end=end))
        expected = {}
        for country, series in rollup.timeseries().items():
            clipped = [(b, r) for b, r in series if start <= b < end]
            if clipped:
                expected[country] = clipped
        assert ordered(result.value) == ordered(expected)
        assert result.segments_skipped > 0  # pushdown pruned the scan
        assert result.segments_scanned + result.segments_skipped == len(
            store.manifest.segments
        )

    def test_country_pushdown(self, corpus):
        store, rollup = corpus
        result = store.query(
            StoreQuery("country_tampering_rate", countries=("IR",))
        )
        assert ordered(result.value) == ordered(
            {"IR": rollup.country_tampering_rate()["IR"]}
        )

    def test_signature_hour_counts_matches_per_country(self, corpus):
        store, rollup = corpus
        for country in rollup.countries:
            got = store.query(
                StoreQuery("signature_hour_counts", country=country)
            ).value
            assert ordered(got) == ordered(rollup.signature_hour_counts(country))

    def test_open_buckets_counted_in_scan_stats(self, tmp_path):
        store = RollupStore(str(tmp_path / "store"))
        store.add(make_record(0, 10.0, "IR", SignatureId.SYN_RST, Stage.POST_SYN, True))
        result = store.query(StoreQuery("country_tampering_rate"))
        assert result.open_buckets_scanned == 1
        assert result.segments_scanned == 0
        assert result.value == {"IR": 100.0}
        store.close()

    def test_query_validation(self):
        with pytest.raises(StoreError, match="unknown query family"):
            StoreQuery("who_is_tampering")
        with pytest.raises(StoreError, match="requires a country"):
            StoreQuery("signature_hour_counts")
        with pytest.raises(StoreError, match="global"):
            StoreQuery("stage_statistics", countries=("IR",))
        with pytest.raises(StoreError, match="greater than start"):
            StoreQuery("timeseries", start=HOUR, end=HOUR)

    def test_timeseries_match_without_total_raises(self):
        # Regression: a corrupt/partial part can hold tampering matches
        # for a (country, bucket) cell with no total connections -- a
        # state no consistent rollup produces.  The old code silently
        # dropped the cell (or divided by a fabricated total of 1);
        # refuse to answer instead.
        from repro.store.query import execute

        catalog = KeyCatalog()
        catalog.observe("US", SignatureId.NOT_TAMPERING, False)
        catalog.observe("IR", SignatureId.SYN_RST, True)
        part = BucketSlice(bucket=0.0)
        part.totals = {"US": 10}
        part.matches = {"US": 0, "IR": 3}  # IR matches, no IR totals
        with pytest.raises(StoreError, match="inconsistent store state"):
            execute(StoreQuery("timeseries"), catalog, [part])

    def test_timeseries_consistent_parts_unaffected(self):
        from repro.store.query import execute

        catalog = KeyCatalog()
        catalog.observe("IR", SignatureId.SYN_RST, True)
        part = BucketSlice(bucket=0.0)
        part.totals = {"IR": 4}
        part.matches = {"IR": 3}
        value = execute(StoreQuery("timeseries"), catalog, [part])
        assert value == {"IR": [(0.0, 75.0)]}


# ----------------------------------------------------------------------
# Checkpoint integration: O(open) payloads and resume resync
# ----------------------------------------------------------------------
class TestCheckpointIntegration:
    def test_checkpoint_payload_is_o_open_buckets(self, tmp_path):
        records = random_records(29, 900, n_buckets=36)
        rollup = StreamRollup()
        store = RollupStore(str(tmp_path / "store"), config=small_compaction())
        size_at_third = rollup_size_at_third = None
        watermark = None
        for record in records:
            rollup.add(record)
            store.add(record)
            watermark = record.ts if watermark is None else max(watermark, record.ts)
            if record.seq % 60 == 59:
                store.seal_through(watermark - 2 * HOUR)
            if record.seq == 299:
                size_at_third = len(json.dumps(store.checkpoint_state()))
                rollup_size_at_third = len(json.dumps(rollup.to_dict()))
        size_at_end = len(json.dumps(store.checkpoint_state()))
        rollup_size_at_end = len(json.dumps(rollup.to_dict()))

        # The rollup payload grows with history; the store payload only
        # tracks the open tail (plus the bounded key catalog).
        assert rollup_size_at_end > 2 * rollup_size_at_third
        assert size_at_end < 1.5 * size_at_third
        state = store.checkpoint_state()
        assert len(state["open"]) == store.stats()["open_buckets"]
        store.seal_open()
        assert store.checkpoint_state()["open"] == []
        store.close()

    def test_restore_resyncs_against_newer_disk(self, tmp_path):
        records = random_records(31, 400, n_buckets=16)
        reference = StreamRollup()
        for record in records:
            reference.add(record)

        directory = str(tmp_path / "store")
        store = RollupStore(directory, config=small_compaction())
        watermark = None
        for record in records[:250]:
            store.add(record)
            watermark = record.ts if watermark is None else max(watermark, record.ts)
            if record.seq % 80 == 79:
                store.seal_through(watermark - 2 * HOUR)
        state = store.checkpoint_state()
        generation_at_checkpoint = state["generation"]

        # The engine keeps running past the checkpoint: more records,
        # another seal (disk generation moves ahead), then a crash.
        for record in records[250:320]:
            store.add(record)
            watermark = max(watermark, record.ts)
        store.seal_through(watermark - HOUR)
        assert store.manifest.generation > generation_at_checkpoint
        store.flush()  # even durable post-checkpoint entries must go
        del store  # crash

        resumed = RollupStore(directory, config=small_compaction())
        resumed.restore(state)
        assert resumed.ordinal == 250
        # The source re-delivers everything after the checkpoint; records
        # for buckets sealed post-checkpoint are skipped, not re-counted.
        for record in records[250:]:
            resumed.add(record)
        assert resumed.ordinal == len(records)
        assert resumed.sealed_skips > 0
        resumed.seal_open()
        resumed.compact()
        assert _rollup_fingerprint(resumed.to_rollup()) == _rollup_fingerprint(
            reference
        )
        assert_query_parity(resumed, reference)
        resumed.close()

    def test_restore_rejects_checkpoint_from_newer_store(self, tmp_path):
        store = RollupStore(str(tmp_path / "store"))
        state = store.checkpoint_state()
        state["generation"] = store.manifest.generation + 1
        with pytest.raises(CheckpointError, match="not the checkpoint's store"):
            store.restore(state)
        store.close()


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_store_backed_engine_matches_plain_engine(self, study, tmp_path):
        clean = StreamEngine(make_source(study), geodb=study.geo).run()
        engine = StreamEngine(
            make_source(study),
            geodb=study.geo,
            store_dir=str(tmp_path / "store"),
            store_config=small_compaction(),
        )
        stored = engine.run()
        assert stored.finished
        assert stored.samples_processed == clean.samples_processed
        assert _rollup_fingerprint(stored.rollup) == _rollup_fingerprint(
            clean.rollup
        )
        stats = stored.metrics["store"]
        assert stats["open_buckets"] == 0  # finish seals everything
        assert stats["sealed_records"] == clean.rollup.n_records
        assert stats["compaction_runs"] >= 1
        engine.store.close()

        # And the cold store alone answers like the clean rollup.
        reopened = RollupStore(str(tmp_path / "store"))
        assert_query_parity(reopened, clean.rollup)
        reopened.close()

    def test_interrupted_store_run_resumes_to_parity(self, study, tmp_path):
        clean = StreamEngine(make_source(study), geodb=study.geo).run()
        checkpoint = str(tmp_path / "ckpt.json")
        store_dir = str(tmp_path / "store")
        first = StreamEngine(
            make_source(study),
            geodb=study.geo,
            store_dir=store_dir,
            store_config=small_compaction(),
            checkpoint_path=checkpoint,
            checkpoint_interval=50,
        )
        partial = first.run(max_samples=200)
        assert not partial.finished
        first.store.close()

        second = StreamEngine(
            make_source(study),
            geodb=study.geo,
            store_dir=store_dir,
            store_config=small_compaction(),
            checkpoint_path=checkpoint,
            checkpoint_interval=50,
        )
        final = second.run(resume=True)
        assert final.finished
        assert _rollup_fingerprint(final.rollup) == _rollup_fingerprint(
            clean.rollup
        )
        second.store.close()

    def test_fresh_run_into_dirty_store_raises(self, study, tmp_path):
        store_dir = str(tmp_path / "store")
        engine = StreamEngine(
            make_source(study, 50), geodb=study.geo, store_dir=store_dir
        )
        engine.run()
        engine.store.close()
        fresh = StreamEngine(
            make_source(study, 50), geodb=study.geo, store_dir=store_dir
        )
        with pytest.raises(StreamError, match="already holds ingested state"):
            fresh.run()
        fresh.store.close()

    def test_resume_dirty_store_without_checkpoint_raises(self, study, tmp_path):
        store_dir = str(tmp_path / "store")
        engine = StreamEngine(
            make_source(study, 50), geodb=study.geo, store_dir=store_dir
        )
        engine.run()
        engine.store.close()
        resumer = StreamEngine(
            make_source(study, 50),
            geodb=study.geo,
            store_dir=store_dir,
            checkpoint_path=str(tmp_path / "never-written.json"),
        )
        with pytest.raises(CheckpointError, match="no.*checkpoint exists"):
            resumer.run(resume=True)
        resumer.store.close()

    def test_checkpoint_kind_mismatch_raises_both_ways(self, study, tmp_path):
        # A store-backed checkpoint cannot resume a plain engine...
        store_ckpt = str(tmp_path / "store-ckpt.json")
        engine = StreamEngine(
            make_source(study, 60),
            geodb=study.geo,
            store_dir=str(tmp_path / "store-a"),
            checkpoint_path=store_ckpt,
        )
        engine.run()
        engine.store.close()
        plain = StreamEngine(
            make_source(study, 60), geodb=study.geo, checkpoint_path=store_ckpt
        )
        with pytest.raises(CheckpointError, match="store-backed engine"):
            plain.run(resume=True)

        # ...and a plain checkpoint cannot resume a store-backed engine.
        plain_ckpt = str(tmp_path / "plain-ckpt.json")
        StreamEngine(
            make_source(study, 60), geodb=study.geo, checkpoint_path=plain_ckpt
        ).run()
        stored = StreamEngine(
            make_source(study, 60),
            geodb=study.geo,
            store_dir=str(tmp_path / "store-b"),
            checkpoint_path=plain_ckpt,
        )
        with pytest.raises(CheckpointError, match="without a store"):
            stored.run(resume=True)
        stored.store.close()


# ----------------------------------------------------------------------
# Durability satellites
# ----------------------------------------------------------------------
class TestDurabilityHelpers:
    def test_atomic_write_json_honours_umask(self, tmp_path):
        path = str(tmp_path / "artifact.json")
        previous = os.umask(0o027)
        try:
            atomic_write_json(path, {"ok": True})
        finally:
            os.umask(previous)
        assert os.stat(path).st_mode & 0o777 == 0o640
        assert json.loads(open(path).read()) == {"ok": True}

    def test_atomic_write_json_cleans_temp_on_failure(self, tmp_path):
        with pytest.raises(TypeError):
            atomic_write_json(str(tmp_path / "bad.json"), {"x": object()})
        assert [n for n in os.listdir(tmp_path) if n.startswith(".tmp-")] == []

    def test_fsync_directory_tolerates_missing_dir(self, tmp_path):
        fsync_directory(str(tmp_path / "does-not-exist"))  # no raise

    def test_checkpoint_clear_tolerates_missing_file(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt.json"))
        manager.clear()  # nothing saved yet
        manager.save({"bucket_seconds": HOUR}, 1)
        manager.clear()
        assert manager.load() is None
        manager.clear()  # idempotent


# ----------------------------------------------------------------------
# Read-only snapshots
# ----------------------------------------------------------------------
class TestReadOnlyOpen:
    def _sealed_store(self, tmp_path, n=300, seed=11):
        """A writable store with every bucket sealed, plus its rollup."""
        records = random_records(seed, n)
        store = RollupStore(str(tmp_path / "store"))
        rollup = StreamRollup()
        for record in records:
            store.add(record)
            rollup.add(record)
        store.seal_open()
        return store, rollup

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no rollup store"):
            RollupStore.open_read_only(str(tmp_path / "nope"))

    def test_snapshot_matches_writer_queries(self, tmp_path):
        store, rollup = self._sealed_store(tmp_path)
        reader = RollupStore.open_read_only(store.directory)
        assert reader.read_only is True
        assert reader.bucket_seconds == store.bucket_seconds
        assert_query_parity(reader, rollup)
        reader.close()
        store.close()

    def test_bucket_seconds_mismatch_raises(self, tmp_path):
        store, _ = self._sealed_store(tmp_path, n=40)
        with pytest.raises(StoreError, match="bucket_seconds"):
            RollupStore.open_read_only(store.directory, bucket_seconds=60.0)
        store.close()

    def test_every_mutator_is_rejected(self, tmp_path):
        store, _ = self._sealed_store(tmp_path, n=40)
        reader = RollupStore.open_read_only(store.directory)
        record = make_record(0, 0.0, "IR", SignatureId.PSH_RST, Stage.POST_PSH, True)
        for call in (
            lambda: reader.add(record),
            lambda: reader.seal_through(HOUR),
            lambda: reader.seal_open(),
            lambda: reader.maybe_compact(),
            lambda: reader.compact(),
            lambda: reader.flush(),
            lambda: reader.checkpoint_state(),
            lambda: reader.restore({"generation": 0, "count": 0, "open": []}),
        ):
            with pytest.raises(StoreError, match="read-only"):
                call()
        reader.close()
        store.close()

    def test_open_never_touches_files(self, tmp_path):
        store, _ = self._sealed_store(tmp_path, n=60)
        store.close()

        def listing(root):
            out = []
            for dirpath, _dirs, files in os.walk(root):
                for name in files:
                    path = os.path.join(dirpath, name)
                    st = os.stat(path)
                    out.append((path, st.st_mtime_ns, st.st_size))
            return sorted(out)

        before = listing(store.directory)
        reader = RollupStore.open_read_only(store.directory)
        reader.query(StoreQuery("timeseries"))
        reader.maybe_refresh()
        reader.close()
        assert listing(store.directory) == before

    def test_open_tail_is_invisible_until_sealed(self, tmp_path):
        records = random_records(13, 200)
        cut = next(
            i for i in range(1, len(records))
            if records[i].ts // HOUR != records[i - 1].ts // HOUR
            and i > len(records) // 2
        )
        store = RollupStore(str(tmp_path / "store"))
        rollup = StreamRollup()
        for record in records[:cut]:
            store.add(record)
            rollup.add(record)
        horizon = (records[cut].ts // HOUR) * HOUR - HOUR
        store.seal_through(horizon)

        reader = RollupStore.open_read_only(store.directory)
        sealed_rollup = StreamRollup()
        for record in records[:cut]:
            if (record.ts // HOUR) * HOUR <= horizon:
                sealed_rollup.add(record)
        assert reader.manifest.sealed_records() == sealed_rollup.n_records
        assert_query_parity(reader, sealed_rollup)
        # The writer still answers with its open tail included.
        partial = StreamRollup()
        for record in records[:cut]:
            partial.add(record)
        assert_query_parity(store, partial)

        # Finish the stream, seal, and refresh: the reader catches up.
        for record in records[cut:]:
            store.add(record)
            rollup.add(record)
        store.seal_open()
        assert reader.maybe_refresh() is True
        assert reader.maybe_refresh() is False  # hint short-circuits
        assert_query_parity(reader, rollup)
        reader.close()
        store.close()

    def test_empty_directory_opens_empty_then_refreshes(self, tmp_path):
        directory = str(tmp_path / "live")
        os.makedirs(directory)
        reader = RollupStore.open_read_only(directory)
        assert reader.query(StoreQuery("timeseries")).value == {}
        assert reader.maybe_refresh() is False

        store = RollupStore(directory)
        rollup = StreamRollup()
        for record in random_records(17, 80):
            store.add(record)
            rollup.add(record)
        store.seal_open()
        assert reader.maybe_refresh() is True
        assert_query_parity(reader, rollup)
        reader.close()
        store.close()

    def test_maybe_refresh_requires_read_only(self, tmp_path):
        store, _ = self._sealed_store(tmp_path, n=40)
        with pytest.raises(StoreError, match="read-only"):
            store.maybe_refresh()
        store.close()

    def test_stale_snapshot_surfaces_store_error_then_recovers(self, tmp_path):
        records = random_records(19, 400)
        store = RollupStore(str(tmp_path / "store"), config=small_compaction())
        rollup = StreamRollup()
        for record in records:
            store.add(record)
            rollup.add(record)
        store.seal_open()

        # Snapshot taken, nothing cached yet; the writer's compaction
        # then deletes the snapshot's input segments.
        reader = RollupStore.open_read_only(store.directory)
        assert store.compact() > 0
        with pytest.raises(StoreError, match="refresh and retry"):
            reader.query(StoreQuery("timeseries"))
        assert reader.maybe_refresh(force=True) is True
        assert_query_parity(reader, rollup)
        reader.close()
        store.close()

    def test_cli_query_leaves_live_store_untouched(self, tmp_path, capsys):
        from repro.cli import main

        records = random_records(23, 120)
        cut = len(records) // 2
        directory = str(tmp_path / "live")
        store = RollupStore(directory)
        for record in records[:cut]:
            store.add(record)
        horizon = max(slice_ for slice_ in store._open) - HOUR
        store.seal_through(horizon)
        store.flush()
        wal_dir = os.path.join(directory, "wal")
        wal_before = sorted(os.listdir(wal_dir))
        assert wal_before  # the open tail has logs on disk

        assert main(["query", directory, "--family", "timeseries",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Only the sealed snapshot is visible; the open tail is not.
        assert payload["open_buckets_scanned"] == 0
        assert payload["buckets_scanned"] > 0
        # The query must not have truncated or dropped the writer's WAL.
        assert sorted(os.listdir(wal_dir)) == wal_before
        store.close()
