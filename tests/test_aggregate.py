"""Unit tests for the analysis aggregations behind Figures 1, 4-10 and
Table 2.

Uses hand-built :class:`AnalyzedConnection` records so each grouping's
arithmetic is pinned down without simulation noise; dataset-level shape
tests live in test_integration.py.
"""

import pytest

from repro.core.aggregate import AnalysisDataset, AnalyzedConnection, regression_slope
from repro.core.model import SignatureId, Stage
from repro.cdn.categorize import CategoryDB


def conn(
    country="CN",
    signature=SignatureId.PSH_RST,
    stage=None,
    ts=0.0,
    asn=1,
    version=4,
    port=443,
    domain=None,
    client_ip="11.0.0.1",
    conn_id=0,
):
    if stage is None:
        stage = signature.stage
    return AnalyzedConnection(
        conn_id=conn_id,
        ts=ts,
        country=country,
        asn=asn,
        signature=signature,
        stage=stage,
        ip_version=version,
        server_port=port,
        protocol="tls" if port == 443 else "http",
        domain=domain,
        client_ip=client_ip,
        possibly_tampered=signature != SignatureId.NOT_TAMPERING,
    )


NT = SignatureId.NOT_TAMPERING


class TestStageStatistics:
    def test_shares_and_coverage(self):
        data = AnalysisDataset([
            conn(signature=NT, stage=Stage.NONE),
            conn(signature=NT, stage=Stage.NONE),
            conn(signature=SignatureId.SYN_RST),
            conn(signature=SignatureId.PSH_RST),
            conn(signature=SignatureId.OTHER, stage=Stage.POST_DATA),
        ])
        stats = data.stage_statistics()
        assert stats["total_connections"] == 5
        assert stats["possibly_tampered"] == 3
        assert stats["possibly_tampered_pct"] == pytest.approx(60.0)
        assert stats["signature_coverage_pct"] == pytest.approx(100 * 2 / 3)
        assert stats["stage_share_pct"]["post-syn"] == pytest.approx(100 / 3)

    def test_empty_dataset(self):
        stats = AnalysisDataset([]).stage_statistics()
        assert stats["possibly_tampered_pct"] == 0.0


class TestCountryShares:
    def make(self):
        return AnalysisDataset([
            conn(country="CN", signature=SignatureId.PSH_RST),
            conn(country="CN", signature=NT, stage=Stage.NONE),
            conn(country="CN", signature=NT, stage=Stage.NONE),
            conn(country="US", signature=NT, stage=Stage.NONE),
        ])

    def test_country_signature_shares(self):
        shares = self.make().country_signature_shares()
        assert shares["CN"][SignatureId.PSH_RST] == pytest.approx(100 / 3)
        assert shares["CN"][NT] == pytest.approx(200 / 3)
        assert shares["US"][NT] == pytest.approx(100.0)

    def test_country_tampering_rate(self):
        rates = self.make().country_tampering_rate()
        assert rates["CN"] == pytest.approx(100 / 3)
        assert rates["US"] == 0.0

    def test_signature_country_matrix(self):
        matrix = self.make().signature_country_matrix()
        assert matrix[SignatureId.PSH_RST]["CN"] == pytest.approx(100.0)

    def test_baseline_distribution(self):
        base = self.make().baseline_country_distribution()
        assert base["CN"] == pytest.approx(75.0)
        assert base["US"] == pytest.approx(25.0)


class TestAsnViews:
    def make(self):
        rows = []
        # AS 1: 4 conns, 2 tampered; AS 2: 4 conns, 0 tampered.
        for i in range(4):
            rows.append(conn(asn=1, conn_id=i,
                             signature=SignatureId.PSH_RST if i < 2 else NT,
                             stage=Stage.POST_PSH if i < 2 else Stage.NONE))
        for i in range(4):
            rows.append(conn(asn=2, conn_id=10 + i, signature=NT, stage=Stage.NONE))
        return AnalysisDataset(rows)

    def test_match_proportions(self):
        rows = self.make().asn_match_proportions(top_share=1.0)["CN"]
        by_asn = {asn: rate for asn, rate, _ in rows}
        assert by_asn[1] == pytest.approx(50.0)
        assert by_asn[2] == pytest.approx(0.0)

    def test_top_share_cuts_tail(self):
        rows = self.make().asn_match_proportions(top_share=0.4)["CN"]
        assert len(rows) == 1

    def test_spread(self):
        spread = self.make().asn_spread(top_share=1.0)
        assert spread["CN"] == pytest.approx(50.0)

    def test_min_connections_does_not_count_toward_coverage(self):
        """Regression: ASes skipped for min_connections must not advance
        the top_share coverage accumulator -- only included ASes cover."""
        rows = []
        conn_id = 0
        for asn, size in [(1, 5), (2, 4), (3, 2), (4, 2), (5, 2), (6, 2), (7, 2), (8, 2)]:
            for _ in range(size):
                rows.append(conn(asn=asn, conn_id=conn_id, signature=NT, stage=Stage.NONE))
                conn_id += 1
        data = AnalysisDataset(rows)
        result = data.asn_match_proportions(top_share=0.6, min_connections=3)["CN"]
        # Both qualifying ASes (5 and 4 conns) survive; the sub-threshold
        # two-connection ASes are dropped and never satisfy the cutoff.
        assert [asn for asn, _, _ in result] == [1, 2]

    def test_min_connections_filters_all(self):
        data = self.make()
        assert data.asn_match_proportions(min_connections=100)["CN"] == []


class TestTimeseries:
    def make(self):
        rows = []
        for hour in range(4):
            ts = hour * 3600.0
            rows.append(conn(ts=ts, signature=SignatureId.ACK_RST, conn_id=hour))
            rows.append(conn(ts=ts, signature=NT, stage=Stage.NONE, conn_id=100 + hour))
        return AnalysisDataset(rows)

    def test_by_country(self):
        series = self.make().timeseries(bucket_seconds=3600.0)["CN"]
        assert len(series) == 4
        assert all(pct == pytest.approx(50.0) for _, pct in series)

    def test_stage_filter(self):
        series = self.make().timeseries(bucket_seconds=3600.0, stages=(Stage.POST_SYN,))
        assert all(pct == 0.0 for _, pct in series["CN"])

    def test_per_signature(self):
        series = self.make().timeseries(bucket_seconds=3600.0, per_signature=True)
        assert SignatureId.ACK_RST.display in series
        values = [pct for _, pct in series[SignatureId.ACK_RST.display]]
        assert all(v == pytest.approx(50.0) for v in values)

    def test_country_filter(self):
        series = self.make().timeseries(countries=["US"])
        assert "CN" not in series


class TestIpVersionAndProtocol:
    def test_ip_version_rates(self):
        rows = [
            conn(version=4, signature=SignatureId.ACK_RST, conn_id=1),
            conn(version=4, signature=NT, stage=Stage.NONE, conn_id=2),
            conn(version=6, signature=SignatureId.ACK_RST, conn_id=3),
            conn(version=6, signature=SignatureId.ACK_RST, conn_id=4),
        ]
        rates = AnalysisDataset(rows).ip_version_rates()
        assert rates["CN"] == (pytest.approx(50.0), pytest.approx(100.0))

    def test_country_without_both_versions_skipped(self):
        rates = AnalysisDataset([conn(version=4)]).ip_version_rates()
        assert rates == {}

    def test_protocol_rates_post_psh_only(self):
        rows = [
            conn(port=443, signature=SignatureId.PSH_RST, conn_id=1),
            conn(port=443, signature=NT, stage=Stage.NONE, conn_id=2),
            conn(port=80, signature=SignatureId.ACK_RST, conn_id=3),  # post-ACK: excluded
            conn(port=80, signature=NT, stage=Stage.NONE, conn_id=4),
        ]
        rates = AnalysisDataset(rows).protocol_post_psh_rates()
        tls_pct, http_pct = rates["CN"]
        assert tls_pct == pytest.approx(50.0)
        assert http_pct == pytest.approx(0.0)

    def test_regression_slope(self):
        assert regression_slope([(1, 2), (2, 4)]) == pytest.approx(2.0)
        assert regression_slope([]) == 0.0


class TestDomainsAndCategories:
    def make(self):
        rows = []
        cid = 0
        # 150 tampered hits on blocked-a.com (above threshold), 3 on rare.com.
        for _ in range(150):
            rows.append(conn(domain="blocked-a.com", signature=SignatureId.PSH_RST, conn_id=cid))
            cid += 1
        for _ in range(3):
            rows.append(conn(domain="rare.com", signature=SignatureId.PSH_RST, conn_id=cid))
            cid += 1
        for _ in range(10):
            rows.append(conn(domain="clean.com", signature=NT, stage=Stage.NONE, conn_id=cid))
            cid += 1
        return AnalysisDataset(rows)

    def test_tampered_domains_threshold(self):
        data = self.make()
        assert data.tampered_domains(threshold=100) == {"blocked-a.com"}
        assert data.tampered_domains(threshold=2) == {"blocked-a.com", "rare.com"}

    def test_domains_seen(self):
        assert self.make().domains_seen() == {"blocked-a.com", "rare.com", "clean.com"}

    def test_category_table(self):
        db = CategoryDB({
            "blocked-a.com": ["Adult Themes"],
            "rare.com": ["News"],
            "clean.com": ["Adult Themes"],
        })
        table = self.make().category_table(db, countries=["CN"], threshold=100)
        rows = dict((cat, (share, cov)) for cat, share, cov in table["CN"])
        share, coverage = rows["Adult Themes"]
        assert share == pytest.approx(100 * 150 / 153)
        # 1 of 2 seen Adult Themes domains is tampered.
        assert coverage == pytest.approx(50.0)


class TestOverlapMatrix:
    def test_consistent_pairs_dominate_diagonal(self):
        rows = []
        for i in range(3):
            rows.append(conn(ts=float(i), domain="d.com", client_ip="11.0.0.1",
                             signature=SignatureId.PSH_RST, conn_id=i))
        data = AnalysisDataset(rows)
        matrix = data.overlap_matrix()
        assert matrix[(SignatureId.PSH_RST.display, SignatureId.PSH_RST.display)] == 2
        assert data.overlap_consistency() == pytest.approx(1.0)

    def test_transition_recorded(self):
        rows = [
            conn(ts=0.0, domain="d.com", signature=SignatureId.PSH_RST, conn_id=1),
            conn(ts=1.0, domain="d.com", signature=SignatureId.PSH_RST_EQ_RST, conn_id=2),
        ]
        matrix = AnalysisDataset(rows).overlap_matrix()
        key = (SignatureId.PSH_RST.display, SignatureId.PSH_RST_EQ_RST.display)
        assert matrix[key] == 1

    def test_single_visit_ignored(self):
        rows = [conn(domain="d.com", signature=SignatureId.PSH_RST)]
        assert AnalysisDataset(rows).overlap_matrix() == {}
        assert AnalysisDataset(rows).overlap_consistency() == 0.0


class TestFilters:
    def test_in_countries(self):
        data = AnalysisDataset([conn(country="CN"), conn(country="US", conn_id=1)])
        assert len(data.in_countries(["CN"])) == 1

    def test_post_ack_psh(self):
        data = AnalysisDataset([
            conn(signature=SignatureId.SYN_RST, conn_id=1),
            conn(signature=SignatureId.ACK_RST, conn_id=2),
            conn(signature=SignatureId.PSH_RST, conn_id=3),
            conn(signature=SignatureId.DATA_RST, conn_id=4),
        ])
        kept = data.post_ack_psh()
        assert {c.signature for c in kept} == {SignatureId.ACK_RST, SignatureId.PSH_RST}

    def test_countries_property(self):
        data = AnalysisDataset([conn(country="CN"), conn(country="AE", conn_id=1)])
        assert data.countries == ["AE", "CN"]
