"""Unit tests for the end-to-end classification pipeline."""

import pytest

from repro.core.classifier import ClassifierConfig, TamperingClassifier
from repro.core.model import SignatureId, Stage
from repro.errors import ClassificationError
from tests.conftest import capture, make_client, run_connection, run_vendor


class TestConfig:
    def test_defaults_match_paper(self):
        config = ClassifierConfig()
        assert config.max_packets == 10
        assert config.inactivity_seconds == 3.0
        assert config.reorder

    def test_validation(self):
        with pytest.raises(ClassificationError):
            ClassifierConfig(max_packets=0)
        with pytest.raises(ClassificationError):
            ClassifierConfig(inactivity_seconds=0)


class TestClassification:
    def test_clean_connection(self):
        sample = capture(run_connection(make_client()), conn_id=1)
        result = TamperingClassifier().classify(sample)
        assert result.signature == SignatureId.NOT_TAMPERING
        assert not result.possibly_tampered
        assert not result.is_tampering
        assert result.conn_id == 1

    def test_protocol_and_domain_extraction_tls(self):
        sample = capture(run_connection(make_client(domain="visible.example")), conn_id=2)
        result = TamperingClassifier().classify(sample)
        assert result.protocol == "tls"
        assert result.domain == "visible.example"

    def test_protocol_and_domain_extraction_http(self):
        client = make_client(domain="plain.example", protocol="http")
        sample = capture(run_connection(client, server_port=80), conn_id=3)
        result = TamperingClassifier().classify(sample)
        assert result.protocol == "http"
        assert result.domain == "plain.example"

    def test_no_payload_no_protocol(self):
        result = run_vendor("iran_drop")
        assert result.protocol is None
        assert result.domain is None
        assert result.stage == Stage.POST_ACK

    def test_batch_and_stream_agree(self):
        samples = [capture(run_connection(make_client(seed=s)), conn_id=s) for s in range(4)]
        classifier = TamperingClassifier()
        batch = classifier.classify_all(samples)
        stream = list(classifier.iter_classify(samples))
        assert [r.signature for r in batch] == [r.signature for r in stream]

    def test_classifier_never_reads_ground_truth(self):
        sample = capture(run_connection(make_client()), conn_id=9)
        lied = sample
        lied.truth_tampered = True
        lied.truth_vendor = "gfw"
        result = TamperingClassifier().classify(lied)
        assert result.signature == SignatureId.NOT_TAMPERING  # unaffected


class TestInactivityKnob:
    def test_stricter_threshold_flags_more(self):
        # iran_drop causes ~10 s of silence after the handshake; with a
        # huge threshold the silence is not enough evidence.
        result = run_vendor("iran_drop")
        assert result.signature == SignatureId.ACK_NONE

        lax = TamperingClassifier(ClassifierConfig(inactivity_seconds=60.0))
        relaxed = lax.classify(result.sample)
        assert relaxed.signature == SignatureId.NOT_TAMPERING
