"""Unit tests for the non-standard client personalities."""

from repro.core.classifier import TamperingClassifier
from repro.core.evidence import looks_like_scanner, looks_like_zmap
from repro.core.model import SignatureId
from repro.netstack.flags import TCPFlags
from repro.network.endpoints import (
    ZMAP_IP_ID,
    HappyEyeballsCanceller,
    ImpatientClient,
    SilentSynClient,
    ZMapScanner,
)
from repro.netstack.tcp import HostConfig
from tests.conftest import CLIENT_IP, SERVER_IP, capture, run_connection


def classify(result, conn_id=1):
    sample = capture(result, conn_id=conn_id)
    assert sample is not None
    return TamperingClassifier().classify(sample), sample


class TestZMapScanner:
    def make(self):
        return ZMapScanner(CLIENT_IP, 50999, SERVER_IP, 443, isn=5)

    def test_syn_has_scanner_fields(self):
        syn = self.make().begin(0.0)[0]
        assert syn.flags == TCPFlags.SYN
        assert syn.options == ()
        assert syn.ip_id == ZMAP_IP_ID
        assert syn.ttl == 255

    def test_classifies_as_syn_rst_false_positive(self):
        result = run_connection(self.make(), server_port=443)
        cls, sample = classify(result)
        assert cls.signature == SignatureId.SYN_RST

    def test_detected_by_scanner_heuristics(self):
        result = run_connection(self.make(), server_port=443)
        _, sample = classify(result)
        assert looks_like_scanner(sample)
        assert looks_like_zmap(sample)

    def test_done_after_rst(self):
        scanner = self.make()
        result = run_connection(scanner, server_port=443)
        assert scanner.done


class TestSilentSynClient:
    def test_classifies_as_syn_none(self):
        client = SilentSynClient(CLIENT_IP, 51000, SERVER_IP, 443, isn=9)
        result = run_connection(client, server_port=443)
        cls, sample = classify(result)
        assert cls.signature == SignatureId.SYN_NONE
        assert len(sample.packets) == 1

    def test_not_flagged_as_zmap(self):
        client = SilentSynClient(CLIENT_IP, 51000, SERVER_IP, 443, isn=9)
        result = run_connection(client, server_port=443)
        _, sample = classify(result)
        assert not looks_like_zmap(sample)


class TestHappyEyeballsCanceller:
    def test_cancels_with_rst(self):
        client = HappyEyeballsCanceller(CLIENT_IP, 51001, SERVER_IP, 443, isn=3)
        result = run_connection(client, server_port=443)
        cls, sample = classify(result)
        assert cls.signature == SignatureId.SYN_RST
        assert client.done

    def test_normal_options_present(self):
        client = HappyEyeballsCanceller(CLIENT_IP, 51001, SERVER_IP, 443, isn=3)
        syn = client.begin(0.0)[0]
        assert syn.options  # unlike a scanner
        result = run_connection(client, server_port=443)
        _, sample = classify(result)
        assert not looks_like_scanner(sample)


class TestImpatientClient:
    def make(self, patience=0.05):
        from repro.netstack.tls import build_client_hello

        return ImpatientClient(
            HostConfig(ip=CLIENT_IP, port=51002, isn=77),
            SERVER_IP,
            443,
            request_segments=[build_client_hello("slow.example")],
            patience=patience,
        )

    def test_completes_when_fast_enough(self):
        client = self.make(patience=5.0)
        result = run_connection(client, server_port=443)
        cls, _ = classify(result)
        assert cls.signature == SignatureId.NOT_TAMPERING

    def test_aborts_when_server_blackholed(self):
        from repro.middlebox.device import TamperBehavior, TamperingMiddlebox
        from repro.middlebox.actions import BlackholeMode
        from repro.middlebox.policy import BlockPolicy

        # Device blackholes server->client responses for every flow, so
        # the impatient client times out and RSTs.
        device = TamperingMiddlebox(
            BlockPolicy.everything(),
            TamperBehavior(blackhole=BlackholeMode.SERVER_TO_CLIENT),
        )
        client = self.make(patience=0.3)
        result = run_connection(client, middleboxes=[device], server_port=443)
        rsts = [p for p in result.server_inbound if p.flags.is_rst]
        assert rsts, "impatient client should have sent a RST"
        assert not rsts[0].injected  # organic, not middlebox-forged

    def test_timer_consumed_once(self):
        client = self.make(patience=0.01)
        client.begin(0.0)
        client.on_timer(0.02)
        # After consuming the deadline the timer must not re-arm at the
        # same instant (regression test for the simulator spin bug).
        nxt = client.next_timer()
        assert nxt is None or nxt > 0.02
