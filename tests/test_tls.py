"""Unit tests for TLS ClientHello building and parsing."""

import pytest

from repro.errors import TlsParseError
from repro.netstack.tls import (
    build_client_hello,
    extract_sni,
    is_tls_client_hello,
    parse_client_hello,
)


class TestBuild:
    def test_record_framing(self):
        data = build_client_hello("example.com")
        assert data[0] == 0x16  # handshake record
        assert data[1:3] == b"\x03\x01"
        record_len = int.from_bytes(data[3:5], "big")
        assert len(data) == 5 + record_len
        assert data[5] == 0x01  # ClientHello

    def test_deterministic_given_seed(self):
        assert build_client_hello("a.com", seed=1) == build_client_hello("a.com", seed=1)
        assert build_client_hello("a.com", seed=1) != build_client_hello("a.com", seed=2)

    def test_sni_optional(self):
        hello = parse_client_hello(build_client_hello(None))
        assert hello.sni is None


class TestParse:
    def test_roundtrip_sni(self):
        for host in ("example.com", "www.deep.sub.example.co.uk", "a.io"):
            assert extract_sni(build_client_hello(host)) == host

    def test_parse_fields(self):
        hello = parse_client_hello(build_client_hello("x.org", alpn=("h2",)))
        assert hello.legacy_version == 0x0303
        assert len(hello.random) == 32
        assert len(hello.session_id) == 32
        assert 0x1301 in hello.cipher_suites
        assert hello.alpn == ("h2",)
        assert hello.sni == "x.org"

    def test_not_handshake_record(self):
        with pytest.raises(TlsParseError):
            parse_client_hello(b"\x17\x03\x03\x00\x05hello")

    def test_not_client_hello(self):
        data = bytearray(build_client_hello("x.org"))
        data[5] = 0x02  # ServerHello
        with pytest.raises(TlsParseError):
            parse_client_hello(bytes(data))

    def test_truncated(self):
        data = build_client_hello("example.com")
        with pytest.raises(TlsParseError):
            parse_client_hello(data[:20])


class TestExtractSni:
    def test_never_raises_on_garbage(self):
        for blob in (b"", b"\x16", b"\x16\x03\x01\x00\x02\x01\x00", b"GET / HTTP/1.1", bytes(100)):
            assert extract_sni(blob) is None

    def test_is_tls_client_hello(self):
        assert is_tls_client_hello(build_client_hello("a.com"))
        assert not is_tls_client_hello(b"GET / HTTP/1.1\r\n")
        assert not is_tls_client_hello(b"")

    def test_truncated_hello_yields_none(self):
        data = build_client_hello("example.com")
        assert extract_sni(data[: len(data) // 2]) is None

    def test_reassembled_halves_parse(self):
        data = build_client_hello("example.com")
        half = len(data) // 2
        reassembled = data[:half] + data[half:]
        assert extract_sni(reassembled) == "example.com"
