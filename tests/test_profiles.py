"""Unit tests for country profiles."""

import pytest

from repro.errors import ConfigError
from repro.middlebox.vendors import VENDOR_PRESETS
from repro.workloads.profiles import (
    CountryProfile,
    DeploymentSpec,
    PAPER_FIGURE4_COUNTRIES,
    default_profiles,
    profile_for,
)


class TestDeploymentSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DeploymentSpec(vendor="gfw", blocked_share=0.0)
        with pytest.raises(ConfigError):
            DeploymentSpec(vendor="gfw", blocked_share=0.5, asn_share=0.0)
        with pytest.raises(ConfigError):
            DeploymentSpec(vendor="gfw", blocked_share=0.5, asn_share=1.5)


class TestCountryProfile:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CountryProfile(code="XX", name="X", weight=0.0)
        with pytest.raises(ConfigError):
            CountryProfile(code="XX", name="X", weight=1.0, p_blocked=1.5)
        with pytest.raises(ConfigError):
            CountryProfile(code="XX", name="X", weight=1.0, n_asns=0)
        with pytest.raises(ConfigError):
            CountryProfile(code="XX", name="X", weight=1.0, scanner_rate=0.6)

    def test_has_tampering(self):
        clean = CountryProfile(code="XX", name="X", weight=1.0)
        assert not clean.has_tampering
        censored = profile_for("CN")
        assert censored.has_tampering


class TestDefaultProfiles:
    def test_unique_codes(self):
        codes = [p.code for p in default_profiles()]
        assert len(codes) == len(set(codes))

    def test_reasonable_world_size(self):
        profiles = default_profiles()
        assert len(profiles) >= 40

    def test_all_vendors_exist(self):
        for profile in default_profiles():
            for spec in profile.deployments:
                assert spec.vendor in VENDOR_PRESETS, (profile.code, spec.vendor)

    def test_key_paper_countries_present(self):
        codes = {p.code for p in default_profiles()}
        for code in ("TM", "IR", "CN", "RU", "KR", "UA", "PE", "MX", "IN", "US", "GB", "DE"):
            assert code in codes

    def test_figure4_axis_mostly_covered(self):
        codes = {p.code for p in default_profiles()}
        covered = sum(1 for c in PAPER_FIGURE4_COUNTRIES if c in codes)
        assert covered / len(PAPER_FIGURE4_COUNTRIES) > 0.85

    def test_blocked_categories_reference_real_categories(self):
        from repro.cdn.categorize import STANDARD_CATEGORIES

        for profile in default_profiles():
            for category, coverage in profile.blocked_categories:
                assert category in STANDARD_CATEGORIES, (profile.code, category)
                assert 0 < coverage <= 1

    def test_ordering_of_heavy_censors(self):
        # Turkmenistan must demand blocked content far more than the US.
        assert profile_for("TM").p_blocked > 0.8
        assert profile_for("US").p_blocked < 0.05
        assert profile_for("PE").p_blocked > profile_for("MX").p_blocked

    def test_tm_is_http_only(self):
        tm = profile_for("TM")
        assert tm.http_only_blocking
        assert tm.tls_share < 0.5

    def test_centralized_vs_decentralized_asn_shares(self):
        cn = profile_for("CN")
        assert all(d.asn_share == 1.0 for d in cn.deployments)
        ru = profile_for("RU")
        assert all(d.asn_share < 1.0 for d in ru.deployments)

    def test_profile_for_unknown(self):
        with pytest.raises(KeyError):
            profile_for("ZZ")
