"""Unit tests for the IP-ID/TTL injection evidence (§4.3) and scanner
heuristics (§4.2)."""

import pytest

from repro.cdn.collector import ConnectionSample
from repro.core.evidence import (
    evidence_for_sample,
    looks_like_scanner,
    looks_like_zmap,
    max_ipid_delta,
    max_ttl_delta,
    min_ipid_delta,
    min_ttl_delta,
)
from repro.netstack.flags import TCPFlags
from repro.netstack.options import DEFAULT_CLIENT_OPTIONS
from repro.netstack.packet import Packet
from tests.conftest import run_vendor


def sample_from(packets, version=4):
    return ConnectionSample(
        conn_id=1, packets=packets, window_end=100.0,
        client_ip=packets[0].src, client_port=packets[0].sport,
        server_ip=packets[0].dst, server_port=packets[0].dport,
        ip_version=version,
    )


def pkt(flags, ts=0.0, seq=0, ip_id=0, ttl=60, payload=b"", options=DEFAULT_CLIENT_OPTIONS,
        src="11.0.0.1"):
    return Packet(src=src, dst="198.41.0.1", sport=7, dport=443, seq=seq,
                  flags=flags, ts=ts, ip_id=ip_id, ttl=ttl, payload=payload,
                  options=options if flags.is_syn else ())


class TestIpIdDeltas:
    def test_consistent_client_small_delta(self):
        packets = [
            pkt(TCPFlags.SYN, ts=0.0, seq=10, ip_id=100),
            pkt(TCPFlags.ACK, ts=0.1, seq=11, ip_id=101),
            pkt(TCPFlags.PSHACK, ts=0.2, seq=11, ip_id=102, payload=b"x"),
        ]
        assert min_ipid_delta(sample_from(packets)) <= 1
        assert max_ipid_delta(sample_from(packets)) is None  # no RST

    def test_injected_rst_large_delta(self):
        packets = [
            pkt(TCPFlags.SYN, ts=0.0, seq=10, ip_id=100),
            pkt(TCPFlags.PSHACK, ts=0.1, seq=11, ip_id=101, payload=b"x"),
            pkt(TCPFlags.RST, ts=0.2, seq=12, ip_id=54000),
        ]
        assert max_ipid_delta(sample_from(packets)) == 54000 - 101

    def test_delta_vs_preceding_non_rst(self):
        packets = [
            pkt(TCPFlags.SYN, ts=0.0, seq=10, ip_id=100),
            pkt(TCPFlags.RST, ts=0.2, seq=11, ip_id=105),
            pkt(TCPFlags.RST, ts=0.3, seq=11, ip_id=9000),
        ]
        # Both RSTs compare against the SYN (last non-RST).
        assert max_ipid_delta(sample_from(packets)) == 8900

    def test_ipv6_returns_none(self):
        packets = [pkt(TCPFlags.SYN, src="2a00::1")]
        assert max_ipid_delta(sample_from(packets, version=6)) is None
        assert min_ipid_delta(sample_from(packets, version=6)) is None

    def test_rst_first_no_baseline(self):
        packets = [pkt(TCPFlags.RST, ts=0.0, ip_id=9999)]
        assert max_ipid_delta(sample_from(packets)) is None


class TestTtlDeltas:
    def test_injected_rst_keeps_sign(self):
        packets = [
            pkt(TCPFlags.SYN, ts=0.0, seq=10, ttl=50),
            pkt(TCPFlags.RST, ts=0.2, seq=11, ttl=240),
        ]
        assert max_ttl_delta(sample_from(packets)) == 190
        packets[1] = pkt(TCPFlags.RST, ts=0.2, seq=11, ttl=20)
        assert max_ttl_delta(sample_from(packets)) == -30

    def test_largest_magnitude_wins(self):
        packets = [
            pkt(TCPFlags.SYN, ts=0.0, ttl=50),
            pkt(TCPFlags.RST, ts=0.1, ttl=55),
            pkt(TCPFlags.RST, ts=0.2, ttl=200),
        ]
        assert max_ttl_delta(sample_from(packets)) == 150

    def test_works_on_ipv6(self):
        packets = [
            pkt(TCPFlags.SYN, src="2a00::1", ttl=50),
            pkt(TCPFlags.RST, src="2a00::1", ts=0.1, ttl=255),
        ]
        assert max_ttl_delta(sample_from(packets, version=6)) == 205

    def test_min_ttl_delta_baseline(self):
        packets = [
            pkt(TCPFlags.SYN, ts=0.0, ttl=50),
            pkt(TCPFlags.ACK, ts=0.1, seq=1, ttl=50),
        ]
        assert min_ttl_delta(sample_from(packets)) == 0

    def test_single_packet_no_deltas(self):
        packets = [pkt(TCPFlags.SYN)]
        assert min_ttl_delta(sample_from(packets)) is None


class TestScannerHeuristics:
    def test_optionless_syn(self):
        p = pkt(TCPFlags.SYN)
        p = p.clone(options=())
        assert looks_like_scanner(sample_from([p]))

    def test_high_ttl(self):
        assert looks_like_scanner(sample_from([pkt(TCPFlags.SYN, ttl=230)]))

    def test_fixed_nonzero_ip_id(self):
        packets = [
            pkt(TCPFlags.SYN, ip_id=777),
            pkt(TCPFlags.ACK, ts=0.1, seq=1, ip_id=777),
        ]
        assert looks_like_scanner(sample_from(packets))

    def test_normal_client_not_flagged(self):
        packets = [
            pkt(TCPFlags.SYN, ip_id=100, ttl=50),
            pkt(TCPFlags.ACK, ts=0.1, seq=1, ip_id=101, ttl=50),
        ]
        assert not looks_like_scanner(sample_from(packets))

    def test_zmap_specific(self):
        p = pkt(TCPFlags.SYN, ip_id=54321).clone(options=())
        assert looks_like_zmap(sample_from([p]))
        q = pkt(TCPFlags.SYN, ip_id=54321)  # has options -> not ZMap
        assert not looks_like_zmap(sample_from([q]))


class TestEndToEndEvidence:
    def test_gfw_injection_visible_in_both_channels(self):
        result = run_vendor("gfw")
        summary = evidence_for_sample(result.sample)
        assert summary.ipid_inconsistent
        assert summary.ttl_inconsistent
        assert not summary.scanner

    def test_stealthy_injector_hides_from_headers(self):
        # single_rstack copies the client IP-ID and mimics its TTL.
        result = run_vendor("single_rstack")
        summary = evidence_for_sample(result.sample)
        assert not summary.ipid_inconsistent

    def test_clean_connection_consistent(self):
        from tests.conftest import capture, make_client, run_connection

        sample = capture(run_connection(make_client()), conn_id=5)
        summary = evidence_for_sample(sample)
        assert summary.max_ipid_delta is None  # no RSTs at all
        assert summary.min_ipid_delta is not None and summary.min_ipid_delta <= 1
