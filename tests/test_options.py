"""Unit tests for TCP option encoding and decoding."""

import struct

import pytest

from repro.errors import OptionDecodeError
from repro.netstack.options import (
    DEFAULT_CLIENT_OPTIONS,
    OptionKind,
    TCPOption,
    decode_options,
    encode_options,
    get_mss,
    find_option,
    mss_option,
    nop_option,
    sack_permitted_option,
    timestamp_option,
    window_scale_option,
)


class TestConstructors:
    def test_mss_value(self):
        opt = mss_option(1460)
        assert opt.kind == OptionKind.MSS
        assert struct.unpack("!H", opt.data)[0] == 1460

    def test_mss_out_of_range(self):
        with pytest.raises(ValueError):
            mss_option(0)
        with pytest.raises(ValueError):
            mss_option(70000)

    def test_window_scale_range(self):
        assert window_scale_option(14).data == b"\x0e"
        with pytest.raises(ValueError):
            window_scale_option(15)

    def test_sack_permitted_is_empty(self):
        assert sack_permitted_option().data == b""

    def test_timestamp_packing(self):
        opt = timestamp_option(123456, 789)
        tsval, tsecr = struct.unpack("!II", opt.data)
        assert (tsval, tsecr) == (123456, 789)

    def test_timestamp_wraps_to_32_bits(self):
        opt = timestamp_option(2**32 + 5)
        assert struct.unpack("!II", opt.data)[0] == 5

    def test_nop_carries_no_data(self):
        assert nop_option().wire_length == 1
        with pytest.raises(ValueError):
            TCPOption(OptionKind.NOP, b"x")

    def test_option_data_too_long(self):
        with pytest.raises(ValueError):
            TCPOption(200, b"x" * 39)


class TestEncodeDecode:
    def test_roundtrip_default_client_options(self):
        encoded = encode_options(DEFAULT_CLIENT_OPTIONS)
        assert len(encoded) % 4 == 0
        assert decode_options(encoded) == list(DEFAULT_CLIENT_OPTIONS)

    def test_empty_options_encode_empty(self):
        assert encode_options(()) == b""
        assert decode_options(b"") == []

    def test_padding_is_stripped_on_decode(self):
        encoded = encode_options([window_scale_option(7)])
        assert len(encoded) == 4  # 3 bytes + 1 padding
        assert decode_options(encoded) == [window_scale_option(7)]

    def test_eol_terminates_parsing(self):
        data = encode_options([mss_option()]) + b"\x00" + b"\xff\xff"
        assert decode_options(data) == [mss_option()]

    def test_too_many_options_raises(self):
        with pytest.raises(ValueError):
            encode_options([timestamp_option(i) for i in range(6)])

    def test_truncated_length_octet(self):
        with pytest.raises(OptionDecodeError):
            decode_options(b"\x02")  # MSS kind without length

    def test_bad_length_value(self):
        with pytest.raises(OptionDecodeError):
            decode_options(b"\x02\x01")  # length < 2

    def test_length_past_end(self):
        with pytest.raises(OptionDecodeError):
            decode_options(b"\x02\x08\x05")


class TestLookups:
    def test_find_option(self):
        assert find_option(DEFAULT_CLIENT_OPTIONS, OptionKind.MSS) == mss_option(1460)
        assert find_option(DEFAULT_CLIENT_OPTIONS, OptionKind.TIMESTAMP) is None

    def test_get_mss(self):
        assert get_mss(DEFAULT_CLIENT_OPTIONS) == 1460
        assert get_mss(()) is None
        assert get_mss([TCPOption(OptionKind.MSS, b"\x01")]) is None  # malformed
