"""Tests for :mod:`repro.stream.faults` and the lifecycle hardening it
motivates: seeded fault plans, flaky-source retry/dedupe, supervised
worker restart, graceful pool shutdown, and the cluster of
shutdown/resume bugfix regressions (exact-``max_samples`` ``finished``,
dropped shutdown sentinels, exit-0 worker deaths, cursors past EOF,
string-sorted worker metrics).

The multiprocessing-heavy end-to-end drills are marked ``chaos`` and run
in their own CI job; everything else stays in the default fast run.
"""

from __future__ import annotations

import json
import queue as queue_module
import time

import pytest

from repro.cdn.collector import write_samples_jsonl
from repro.errors import StreamError, TransientSourceError
from repro.stream import (
    FaultPlan,
    FaultSpec,
    FaultySource,
    IterableSource,
    JsonlDirectorySource,
    JsonlSource,
    ShardConfig,
    ShardedClassifierPool,
    StreamEngine,
    StreamItem,
    StreamMetrics,
    WorkerChaos,
    run_drill,
    serial_records,
)
from repro.workloads.scenarios import two_week_study


@pytest.fixture(scope="module")
def study():
    return two_week_study(n_connections=400, seed=7)


def make_source(study, n=None):
    samples = study.samples if n is None else study.samples[:n]
    return IterableSource(samples, timestamps=study.timestamps)


def clean_rollup(study, n=None):
    return StreamEngine(make_source(study, n), geodb=study.geo, n_workers=0).run()


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(5, 500, error_rate=0.05, duplicate_rate=0.05)
        b = FaultPlan.generate(5, 500, error_rate=0.05, duplicate_rate=0.05)
        assert a.to_dict() == b.to_dict()
        assert len(a) > 0
        c = FaultPlan.generate(6, 500, error_rate=0.05, duplicate_rate=0.05)
        assert a.to_dict() != c.to_dict()

    def test_json_roundtrip(self):
        plan = FaultPlan.generate(
            9, 300, error_rate=0.02, stall_rate=0.01,
            truncate_rate=0.01, duplicate_rate=0.02,
        )
        restored = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored.to_dict() == plan.to_dict()

    def test_at_indexes_faults(self):
        plan = FaultPlan(faults=[
            FaultSpec(index=7, kind="error"),
            FaultSpec(index=7, kind="duplicate"),
            FaultSpec(index=2, kind="stall"),
        ])
        assert [f.kind for _, f in plan.at(7)] == ["error", "duplicate"]
        assert plan.at(3) == []
        # construction sorted the faults by index
        assert [f.index for f in plan.faults] == [2, 7, 7]

    def test_validation(self):
        with pytest.raises(StreamError):
            FaultSpec(index=0, kind="meteor-strike")
        with pytest.raises(StreamError):
            FaultSpec(index=-1, kind="error")
        with pytest.raises(StreamError):
            FaultPlan.generate(1, 10, error_rate=1.5)
        with pytest.raises(StreamError):
            FaultPlan.from_dict({"version": 99, "faults": []})
        with pytest.raises(StreamError):
            WorkerChaos(mode="politely-ask")


# ----------------------------------------------------------------------
# Flaky sources: retry, truncation, duplicate delivery
# ----------------------------------------------------------------------
class TestFaultySource:
    def test_transient_errors_retried_to_parity(self, study):
        baseline = clean_rollup(study, 200)
        plan = FaultPlan(faults=[
            FaultSpec(index=3, kind="error"),
            FaultSpec(index=50, kind="truncate"),
            FaultSpec(index=50, kind="error"),  # two faults, same index
            FaultSpec(index=199, kind="error"),
        ])
        source = FaultySource(make_source(study, 200), plan)
        engine = StreamEngine(
            source, geodb=study.geo, n_workers=0,
            max_source_retries=3, retry_backoff_seconds=0.0,
        )
        report = engine.run()
        assert report.finished
        assert report.rollup.to_dict() == baseline.rollup.to_dict()
        assert report.metrics["source_retries"] == 4
        assert source.injected["error"] == 3
        assert source.injected["truncate"] == 1

    def test_retry_budget_exhausted_raises(self, study):
        plan = FaultPlan(faults=[
            FaultSpec(index=10, kind="error"),
            FaultSpec(index=10, kind="error"),
        ])
        source = FaultySource(make_source(study, 50), plan)
        engine = StreamEngine(
            source, geodb=study.geo, n_workers=0,
            max_source_retries=1, retry_backoff_seconds=0.0,
        )
        with pytest.raises(TransientSourceError):
            engine.run()

    def test_duplicates_dropped_to_parity(self, study):
        baseline = clean_rollup(study, 150)
        plan = FaultPlan(faults=[
            FaultSpec(index=0, kind="duplicate"),  # nothing to replay yet
            FaultSpec(index=5, kind="duplicate"),
            FaultSpec(index=80, kind="duplicate"),
            FaultSpec(index=149, kind="duplicate"),
        ])
        source = FaultySource(make_source(study, 150), plan)
        report = StreamEngine(source, geodb=study.geo, n_workers=0).run()
        assert report.rollup.to_dict() == baseline.rollup.to_dict()
        assert report.metrics["duplicates_dropped"] == 3
        assert source.injected["duplicate"] == 3

    def test_stalls_only_slow_things_down(self, study):
        baseline = clean_rollup(study, 60)
        plan = FaultPlan(faults=[
            FaultSpec(index=10, kind="stall", stall_seconds=0.001),
        ])
        source = FaultySource(make_source(study, 60), plan)
        report = StreamEngine(source, geodb=study.geo, n_workers=0).run()
        assert report.rollup.to_dict() == baseline.rollup.to_dict()
        assert source.injected["stall"] == 1

    def test_generated_storm_through_sharded_pool(self, study):
        baseline = clean_rollup(study, 300)
        plan = FaultPlan.generate(
            11, 300, error_rate=0.02, duplicate_rate=0.02, truncate_rate=0.01,
        )
        source = FaultySource(make_source(study, 300), plan)
        engine = StreamEngine(
            source, geodb=study.geo, n_workers=2,
            shard_config=ShardConfig(n_workers=2, batch_size=16, max_inflight=64),
            max_source_retries=8, retry_backoff_seconds=0.0,
        )
        report = engine.run()
        assert report.finished
        assert report.rollup.to_dict() == baseline.rollup.to_dict()

    def test_checkpoint_resume_through_faulty_source(self, study, tmp_path):
        ck = str(tmp_path / "ck.json")
        baseline = clean_rollup(study, 200)
        plan = FaultPlan(faults=[FaultSpec(index=40, kind="error")])
        StreamEngine(
            FaultySource(make_source(study, 200), plan),
            geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=30,
            max_source_retries=2, retry_backoff_seconds=0.0,
        ).run(max_samples=90)
        resumed = StreamEngine(
            FaultySource(make_source(study, 200), FaultPlan()),
            geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=30,
        ).run(resume=True)
        assert resumed.rollup.to_dict() == baseline.rollup.to_dict()


# ----------------------------------------------------------------------
# Worker supervision and graceful shutdown
# ----------------------------------------------------------------------
class TestSupervision:
    def test_kill9_worker_restarted_to_parity(self, study):
        reference = serial_records(study.samples[:300])
        config = ShardConfig(
            n_workers=2, batch_size=8, max_inflight=32,
            poll_seconds=0.05, max_restarts=2,
        )
        chaos = WorkerChaos(worker_id=1, after_batches=1, mode="kill9")
        with ShardedClassifierPool(config, chaos=chaos) as pool:
            records = pool.map_samples(study.samples[:300])
        assert records == reference
        assert pool.restarts == 1
        assert pool.worker_restarts == {1: 1}

    def test_exit0_worker_restarted_to_parity(self, study):
        reference = serial_records(study.samples[:200])
        config = ShardConfig(
            n_workers=2, batch_size=8, max_inflight=32,
            poll_seconds=0.05, max_restarts=1,
        )
        chaos = WorkerChaos(worker_id=0, after_batches=2, mode="exit0")
        with ShardedClassifierPool(config, chaos=chaos) as pool:
            records = pool.map_samples(study.samples[:200])
        assert records == reference
        assert pool.restarts == 1

    def test_exit0_death_without_budget_raises(self, study):
        """Satellite regression: a worker that dies cleanly-but-early must
        fail the stream, not leave the coordinator polling forever."""
        config = ShardConfig(
            n_workers=2, batch_size=4, max_inflight=16, poll_seconds=0.05,
        )
        chaos = WorkerChaos(worker_id=0, after_batches=0, mode="exit0")
        pool = ShardedClassifierPool(config, chaos=chaos)
        began = time.monotonic()
        with pytest.raises(StreamError, match="died with exit code 0"):
            list(pool.process(
                StreamItem(sample=s) for s in study.samples[:200]
            ))
        assert time.monotonic() - began < 30.0
        pool.close()

    def test_restart_budget_exhausted_raises(self, study):
        config = ShardConfig(
            n_workers=2, batch_size=4, max_inflight=16,
            poll_seconds=0.05, max_restarts=0,
        )
        chaos = WorkerChaos(worker_id=0, after_batches=0, mode="kill9")
        pool = ShardedClassifierPool(config, chaos=chaos)
        with pytest.raises(StreamError, match="died"):
            list(pool.process(
                StreamItem(sample=s) for s in study.samples[:200]
            ))
        pool.close()

    def test_close_with_full_input_queue_is_graceful(self, study):
        """Satellite regression: a full input queue used to swallow the
        shutdown sentinel, stalling join_seconds and terminating."""
        config = ShardConfig(
            n_workers=2, batch_size=4, max_inflight=64,
            queue_depth=2, join_seconds=20.0,
        )
        pool = ShardedClassifierPool(config)
        pool.start()
        rows = [(i, None, s) for i, s in enumerate(study.samples[:4])]
        for worker_id in range(2):
            for batch_id in range(50):
                try:
                    pool._in_queues[worker_id].put_nowait((1000 + batch_id, rows))
                except queue_module.Full:
                    break
        began = time.monotonic()
        pool.close()
        elapsed = time.monotonic() - began
        assert pool.forced_terminations == 0
        assert elapsed < config.join_seconds
        assert all(p.exitcode == 0 for p in pool._workers)

    def test_engine_supervised_run_matches_clean(self, study):
        baseline = clean_rollup(study, 300)
        engine = StreamEngine(
            make_source(study, 300), geodb=study.geo, n_workers=2,
            shard_config=ShardConfig(
                n_workers=2, batch_size=8, max_inflight=32,
                poll_seconds=0.05, max_restarts=2,
            ),
            worker_chaos=WorkerChaos(worker_id=0, after_batches=2, mode="kill9"),
        )
        report = engine.run()
        assert report.rollup.to_dict() == baseline.rollup.to_dict()
        assert report.metrics["worker_restarts"] == 1
        assert report.metrics["forced_terminations"] == 0


# ----------------------------------------------------------------------
# Satellite regressions: engine, sources, metrics
# ----------------------------------------------------------------------
class TestSatelliteRegressions:
    def test_finished_with_exactly_max_samples(self, study):
        """A source holding exactly max_samples items is a finished
        stream: trailing windows must flush to the detector."""
        n = 120
        baseline = StreamEngine(
            IterableSource(study.samples[:n], timestamps=study.timestamps),
            geodb=study.geo, n_workers=0,
        ).run()
        engine = StreamEngine(
            IterableSource(study.samples[:n], timestamps=study.timestamps),
            geodb=study.geo, n_workers=0,
        )
        report = engine.run(max_samples=n)
        assert report.finished
        assert engine._open_cells == {}  # trailing windows flushed
        assert report.rollup.to_dict() == baseline.rollup.to_dict()
        assert [e.to_dict() for e in report.events] == [
            e.to_dict() for e in baseline.events
        ]

    def test_not_finished_when_source_has_more(self, study):
        report = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0
        ).run(max_samples=100)
        assert not report.finished
        assert report.rollup.n_records == 100

    def test_jsonl_cursor_past_eof_fails_loudly(self, study, tmp_path):
        path = str(tmp_path / "s.jsonl")
        write_samples_jsonl(path, study.samples[:20])
        source = JsonlSource(path)
        source.seek(50)  # checkpoint taken before the file was truncated
        with pytest.raises(StreamError, match="only 20 samples present"):
            list(source)

    def test_jsonl_cursor_at_exact_eof_is_fine(self, study, tmp_path):
        path = str(tmp_path / "s.jsonl")
        write_samples_jsonl(path, study.samples[:20])
        source = JsonlSource(path)
        source.seek(20)
        assert list(source) == []

    def test_jsonl_truncated_tail_line_is_transient(self, study, tmp_path):
        path = str(tmp_path / "s.jsonl")
        write_samples_jsonl(path, study.samples[:5])
        with open(path, "a") as fh:
            fh.write('{"conn_id": 99, "client_ip": "1.2.3')  # torn write
        source = JsonlSource(path)
        with pytest.raises(TransientSourceError, match="after 5 samples"):
            list(source)

    def test_jsonl_directory_cursor_past_eof_fails_loudly(self, study, tmp_path):
        write_samples_jsonl(str(tmp_path / "cap-000.jsonl"), study.samples[:20])
        write_samples_jsonl(str(tmp_path / "cap-001.jsonl"), study.samples[20:30])
        source = JsonlDirectorySource(str(tmp_path))
        source.seek(["cap-001.jsonl", 25])
        with pytest.raises(StreamError, match="only 10 samples present"):
            list(source)

    def test_metrics_worker_sort_is_numeric(self):
        metrics = StreamMetrics()
        metrics.start()
        busy = {w: 0.01 for w in range(12)}
        records = {w: 10 for w in range(12)}
        metrics.set_worker_stats(busy, records)
        metrics.stop()
        rendered = metrics.render()
        line = [l for l in rendered.splitlines() if "worker utilization" in l][0]
        assert line.index("w2=") < line.index("w10=")

    def test_metrics_snapshot_has_fault_counters(self):
        snap = StreamMetrics().snapshot()
        for key in ("source_retries", "duplicates_dropped",
                    "worker_restarts", "forced_terminations"):
            assert snap[key] == 0

    def test_render_reports_survived_faults(self):
        metrics = StreamMetrics()
        metrics.source_retries = 2
        metrics.worker_restarts = 1
        assert "faults survived" in metrics.render()


# ----------------------------------------------------------------------
# End-to-end fire drills (multiprocessing-heavy: own CI job)
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestDrills:
    def test_kill_worker_drill(self):
        result = run_drill("kill-worker", connections=300, seed=7)
        assert result.ok, result.render()
        assert result.details["worker_restarts"] >= 1
        assert result.details["forced_terminations"] == 0

    def test_kill9_resume_drill(self, tmp_path):
        result = run_drill(
            "kill9-resume", connections=400, seed=7,
            checkpoint_dir=str(tmp_path),
        )
        assert result.ok, result.render()
        assert result.details["killed_by_sigkill"]

    def test_flaky_source_drill(self):
        result = run_drill("flaky-source", connections=250, seed=7)
        assert result.ok, result.render()
        assert result.details["source_retries"] > 0

    @pytest.mark.parametrize("point", ["segment-written", "manifest-swapped"])
    def test_store_compaction_drill(self, tmp_path, point):
        result = run_drill(
            "store-compaction", connections=400, seed=7,
            checkpoint_dir=str(tmp_path), store_chaos_point=point,
        )
        assert result.ok, result.render()
        assert result.details["killed_by_sigkill"]
        assert result.details["engine_parity"]
        assert result.details["store_query_parity"]
        assert result.details["resumed_from"] > 0

    def test_unknown_drill_rejected(self):
        with pytest.raises(StreamError):
            run_drill("unplug-the-router")

    def test_cli_drill_flaky_source(self, capsys):
        from repro.cli import main

        code = main(["stream", "--drill", "flaky-source", "-n", "150"])
        out = capsys.readouterr().out
        assert code == 0
        assert "drill flaky-source: PASS" in out


class TestCliFaultPlan:
    def test_stream_with_fault_plan_file(self, study, tmp_path, capsys):
        from repro.cli import main

        samples_path = str(tmp_path / "s.jsonl")
        write_samples_jsonl(samples_path, study.samples[:60])
        plan = FaultPlan(faults=[
            FaultSpec(index=5, kind="error"),
            FaultSpec(index=30, kind="duplicate"),
        ])
        plan_path = str(tmp_path / "plan.json")
        with open(plan_path, "w") as fh:
            json.dump(plan.to_dict(), fh)
        code = main(["stream", samples_path, "--fault-plan", plan_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "stream finished after 60 connections" in out
        assert "faults survived: 1 source retries, 1 duplicates dropped" in out
