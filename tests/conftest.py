"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.cdn.collector import ConnectionSample
from repro.cdn.edge import EdgeConfig, make_edge_server
from repro.cdn.sampler import CaptureConfig, capture_sample
from repro.core.classifier import ClassificationResult, TamperingClassifier
from repro.middlebox.policy import BlockPolicy, DomainRule, ExactIpRule, PortRule
from repro.middlebox.vendors import make_preset
from repro.netstack.http import build_http_request
from repro.netstack.tcp import HostConfig, TcpClient
from repro.netstack.tls import build_client_hello
from repro.network.conditions import NetworkConditions
from repro.network.sim import PathSimulator, SimResult

#: Server and client addresses used by single-connection helpers.
SERVER_IP = "198.41.7.7"
CLIENT_IP = "11.0.0.99"

_SYN_STAGE = {"syn_blackhole", "syn_rst_injector", "syn_rstack_injector", "gfw_syn"}


def make_client(
    domain: str = "blocked.example",
    protocol: str = "tls",
    client_ip: str = CLIENT_IP,
    port: int = 40000,
    seed: int = 3,
    segments: Optional[List[bytes]] = None,
    server_ip: str = SERVER_IP,
    server_port: Optional[int] = None,
) -> TcpClient:
    """A plain browser client requesting ``domain``."""
    if server_port is None:
        server_port = 443 if protocol == "tls" else 80
    if segments is None:
        if protocol == "tls":
            segments = [build_client_hello(domain, seed=seed)]
        else:
            segments = [build_http_request(domain)]
    config = HostConfig(ip=client_ip, port=port, isn=1000 + seed, ip_id_start=700 + seed)
    return TcpClient(config, server_ip, server_port, request_segments=segments)


def run_connection(
    client,
    middleboxes=(),
    server_ip: str = SERVER_IP,
    server_port: Optional[int] = None,
    start: float = 1000.0,
    seed: int = 5,
) -> SimResult:
    """Simulate one connection through a middlebox chain."""
    if server_port is None:
        server_port = getattr(client, "peer_port", None) or getattr(client, "server_port", 443)
    server = make_edge_server(server_ip, EdgeConfig(port=server_port), seed=seed)
    conditions = NetworkConditions.simple(n_middleboxes=len(middleboxes))
    sim = PathSimulator(client, server, middleboxes=list(middleboxes), conditions=conditions, seed=seed)
    return sim.run(start=start)


def capture(result: SimResult, conn_id: int = 1, seed: int = 9) -> Optional[ConnectionSample]:
    """Capture a simulation result with default pipeline settings."""
    return capture_sample(result, conn_id=conn_id, config=CaptureConfig(), seed=seed)


def run_vendor(
    vendor: str,
    domain: str = "blocked.example",
    protocol: str = "tls",
    blocked: bool = True,
    seed: int = 3,
    segments: Optional[List[bytes]] = None,
    http_only: bool = False,
) -> ClassificationResult:
    """End-to-end: one connection through one vendor preset, classified.

    ``blocked=False`` makes the policy target a different domain so the
    device never fires (negative control).
    """
    target = domain if blocked else "other-domain.example"
    if vendor in _SYN_STAGE:
        rule = ExactIpRule([SERVER_IP])
        if not blocked:
            rule = ExactIpRule(["203.0.113.1"])
    else:
        rule = DomainRule([target])
    if http_only:
        rule = PortRule(rule, frozenset({80}))
    policy = BlockPolicy([rule], name="test")
    device = make_preset(vendor, policy, seed=seed)
    client = make_client(domain=domain, protocol=protocol, seed=seed, segments=segments)
    result = run_connection(client, middleboxes=[device], server_port=client.peer_port, seed=seed)
    sample = capture(result, conn_id=seed)
    assert sample is not None, f"{vendor}: server saw no packets"
    return TamperingClassifier().classify(sample)


@pytest.fixture(scope="session")
def small_study():
    """A small but full two-week study, shared across test modules."""
    from repro.workloads.scenarios import two_week_study

    return two_week_study(n_connections=1500, seed=11, n_domains=1200)


@pytest.fixture(scope="session")
def small_dataset(small_study):
    """The analyzed dataset of :func:`small_study`."""
    return small_study.analyze()
