"""Tests for :mod:`repro.stream`: sources, sharding, rollups,
checkpoint/resume, and live anomaly detection.

The two load-bearing guarantees:

* **Batch parity** -- for a fixed seed, streaming end-to-end rollups are
  *identical* (exact floats, not approx) to ``classify_all`` +
  ``AnalysisDataset`` on the same world.
* **Kill safety** -- a stream stopped mid-run resumes from its
  checkpoint and converges to the same final rollup with no lost or
  duplicated connections.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys

import pytest

from repro.cdn.collector import write_samples_jsonl
from repro.core.aggregate import AnalysisDataset
from repro.core.classifier import TamperingClassifier
from repro.errors import CheckpointError, StreamError
from repro.stream import (
    AnomalyConfig,
    BoundedBuffer,
    CheckpointManager,
    EwmaDetector,
    IterableSource,
    JsonlDirectorySource,
    JsonlSource,
    ShardConfig,
    ShardedClassifierPool,
    SimulatorSource,
    StreamEngine,
    StreamItem,
    StreamRollup,
    serial_records,
    shard_of,
)
from repro.workloads.profiles import profile_for
from repro.workloads.scenarios import (
    iran_protest_study,
    two_week_stream_source,
    two_week_study,
)
from repro.workloads.world import World


@pytest.fixture(scope="module")
def study():
    return two_week_study(n_connections=500, seed=7)


@pytest.fixture(scope="module")
def batch_dataset(study):
    return study.analyze()


def make_source(study):
    return IterableSource(study.samples, timestamps=study.timestamps)


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class TestSources:
    def test_iterable_source_cursor_roundtrip(self, study):
        source = make_source(study)
        items = list(source)
        assert len(items) == len(study.samples)
        assert source.cursor() == len(study.samples)

        source2 = make_source(study)
        source2.seek(100)
        rest = list(source2)
        assert [i.sample.conn_id for i in rest] == [
            i.sample.conn_id for i in items[100:]
        ]

    def test_iterable_source_uses_timestamps(self, study):
        source = make_source(study)
        item = next(iter(source))
        assert item.ts == study.timestamps[item.sample.conn_id]

    def test_jsonl_source(self, study, tmp_path):
        path = str(tmp_path / "s.jsonl")
        write_samples_jsonl(path, study.samples[:50])
        source = JsonlSource(path)
        items = list(source)
        assert [i.sample.conn_id for i in items] == [
            s.conn_id for s in study.samples[:50]
        ]
        assert source.cursor() == 50

        source.seek(30)
        assert [i.sample.conn_id for i in source] == [
            s.conn_id for s in study.samples[30:50]
        ]

    def test_jsonl_source_missing_file(self, tmp_path):
        with pytest.raises(StreamError):
            JsonlSource(str(tmp_path / "nope.jsonl"))

    def test_jsonl_directory_source(self, study, tmp_path):
        write_samples_jsonl(str(tmp_path / "cap-000.jsonl"), study.samples[:20])
        write_samples_jsonl(str(tmp_path / "cap-001.jsonl"), study.samples[20:45])
        source = JsonlDirectorySource(str(tmp_path))
        ids = [i.sample.conn_id for i in source]
        assert ids == [s.conn_id for s in study.samples[:45]]

        # resume from the middle of the second file
        source2 = JsonlDirectorySource(str(tmp_path))
        source2.seek(["cap-001.jsonl", 10])
        ids2 = [i.sample.conn_id for i in source2]
        assert ids2 == [s.conn_id for s in study.samples[30:45]]

    def test_simulator_source_matches_batch_run(self):
        source = two_week_stream_source(n_connections=60, seed=21)
        streamed = list(source)
        batch = two_week_study(n_connections=60, seed=21)
        assert [i.sample.conn_id for i in streamed] == [
            s.conn_id for s in batch.samples
        ]
        assert [i.ts for i in streamed] == [
            batch.timestamps[s.conn_id] for s in batch.samples
        ]
        # cursor counts specs, including unobservable connections
        assert source.cursor() == 60

    def test_simulator_source_seek_resumes_identically(self):
        source = two_week_stream_source(n_connections=60, seed=21)
        full = list(source)
        cut = 25
        # consume 'cut' items, note the cursor, re-create and seek
        source2 = two_week_stream_source(n_connections=60, seed=21)
        iterator = iter(source2)
        head = [next(iterator) for _ in range(cut)]
        cursor = source2.cursor()
        source3 = two_week_stream_source(n_connections=60, seed=21)
        source3.seek(cursor)
        tail = list(source3)
        assert [i.sample.conn_id for i in head + tail] == [
            i.sample.conn_id for i in full
        ]

    def test_bounded_buffer_backpressure(self):
        buffer = BoundedBuffer(capacity=2)
        assert buffer.push(1) and buffer.push(2)
        assert not buffer.push(3)  # full: rejected, not grown
        assert buffer.rejected == 1
        assert len(buffer) == 2
        assert buffer.pop() == 1
        assert buffer.push(3)
        assert buffer.drain() == [2, 3]
        with pytest.raises(StreamError):
            buffer.pop()
        with pytest.raises(StreamError):
            BoundedBuffer(0)


# ----------------------------------------------------------------------
# Sharded pool
# ----------------------------------------------------------------------
class TestShardedPool:
    def test_shard_of_stable_and_in_range(self):
        assert all(0 <= shard_of(i, 4) < 4 for i in range(100))
        assert shard_of(12345, 4) == shard_of(12345, 4)

    def test_pool_matches_serial_in_order(self, study):
        reference = serial_records(study.samples, study.timestamps)
        config = ShardConfig(n_workers=2, batch_size=16, max_inflight=64)
        with ShardedClassifierPool(config) as pool:
            records = pool.map_samples(study.samples, study.timestamps)
        assert records == reference

    def test_pool_is_lazy_and_bounded(self, study):
        """The pool never pulls more than max_inflight ahead of the merge."""
        pulled = []

        def instrumented():
            for sample in study.samples[:120]:
                pulled.append(sample.conn_id)
                yield StreamItem(sample=sample)

        config = ShardConfig(n_workers=2, batch_size=8, max_inflight=32)
        max_lead = 0
        with ShardedClassifierPool(config) as pool:
            for count, record in enumerate(pool.process(instrumented()), start=1):
                max_lead = max(max_lead, len(pulled) - count)
        assert count == 120
        # one extra item may be in hand when saturation is detected
        assert max_lead <= config.max_inflight + 1

    def test_worker_death_raises(self, study):
        config = ShardConfig(n_workers=2, batch_size=4, max_inflight=16,
                             poll_seconds=0.05)
        pool = ShardedClassifierPool(config)
        pool.start()
        # kill a worker out from under the pool
        pool._workers[0].terminate()
        pool._workers[0].join()
        with pytest.raises(StreamError, match="died|failed"):
            list(pool.process(
                StreamItem(sample=s) for s in study.samples[:200]
            ))
        pool.close()

    def test_pool_tracks_worker_stats(self, study):
        config = ShardConfig(n_workers=2, batch_size=16, max_inflight=64)
        with ShardedClassifierPool(config) as pool:
            pool.map_samples(study.samples[:100])
        assert sum(pool.worker_records.values()) == 100


# ----------------------------------------------------------------------
# Rollup parity with the batch pipeline
# ----------------------------------------------------------------------
class TestRollupParity:
    @pytest.fixture(scope="class")
    def report(self, study):
        engine = StreamEngine(make_source(study), geodb=study.geo, n_workers=0)
        return engine.run()

    def test_country_tampering_rate_identical(self, report, batch_dataset):
        assert (
            report.rollup.country_tampering_rate()
            == batch_dataset.country_tampering_rate()
        )

    def test_country_signature_shares_identical(self, report, batch_dataset):
        assert (
            report.rollup.country_signature_shares()
            == batch_dataset.country_signature_shares()
        )

    def test_timeseries_identical(self, report, batch_dataset):
        assert report.rollup.timeseries() == batch_dataset.timeseries(
            bucket_seconds=3600.0
        )

    def test_stage_statistics_identical(self, report, batch_dataset):
        assert report.rollup.stage_statistics() == batch_dataset.stage_statistics()

    def test_nothing_lost(self, report, study):
        assert report.rollup.n_records == len(study.samples)
        assert report.finished

    def test_sharded_engine_same_rollup(self, study, report):
        engine = StreamEngine(
            make_source(study),
            geodb=study.geo,
            n_workers=2,
            shard_config=ShardConfig(n_workers=2, batch_size=16, max_inflight=64),
        )
        sharded = engine.run()
        assert sharded.rollup.to_dict() == report.rollup.to_dict()

    def test_rollup_merge_equals_single_pass(self, study):
        records = serial_records(study.samples, study.timestamps)
        whole = StreamRollup()
        for record in records:
            whole.add(record)
        first, second = StreamRollup(), StreamRollup()
        for record in records[:200]:
            first.add(record)
        for record in records[200:]:
            second.add(record)
        first.merge(second)
        assert first.to_dict() == whole.to_dict()

    def test_rollup_merge_out_of_order_raises(self, study):
        records = serial_records(study.samples, study.timestamps)
        mid = records[200].ts
        early, late = StreamRollup(), StreamRollup()
        for record in records:
            if record.ts < mid:
                early.add(record)
            elif record.ts > mid:
                late.add(record)
        # Merging the earlier slice *into* the later one would scramble
        # first-seen key order (batch parity); the extents catch it.
        with pytest.raises(StreamError, match="out-of-order merge"):
            late.merge(early)

    def test_rollup_merge_rejects_bucket_size_mismatch(self):
        with pytest.raises(StreamError, match="bucket sizes"):
            StreamRollup(bucket_seconds=3600.0).merge(
                StreamRollup(bucket_seconds=1800.0)
            )

    def test_rollup_serialization_roundtrip(self, report):
        data = json.loads(json.dumps(report.rollup.to_dict()))
        restored = StreamRollup.from_dict(data)
        assert restored.to_dict() == report.rollup.to_dict()
        assert (
            restored.country_tampering_rate()
            == report.rollup.country_tampering_rate()
        )

    def test_signature_hour_counts(self, report):
        for country in report.rollup.countries:
            for sig, series in report.rollup.signature_hour_counts(country).items():
                assert sig.is_tampering
                assert all(n > 0 for _, n in series)
                assert series == sorted(series)


# ----------------------------------------------------------------------
# Checkpoint / kill / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_kill_and_resume_yields_identical_rollups(self, study, tmp_path):
        ck = str(tmp_path / "ck.json")
        baseline = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0
        ).run()

        # "kill" mid-run: stop after 230 samples (checkpoint every 50,
        # so the last checkpoint is at 200 -- resume must redo 201-230
        # against the checkpointed state, not double-count them)
        engine1 = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=50,
        )
        partial = engine1.run(max_samples=230)
        assert not partial.finished
        assert os.path.exists(ck)

        engine2 = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=50,
        )
        resumed = engine2.run(resume=True)
        assert resumed.finished
        assert resumed.rollup.n_records == len(study.samples)
        assert resumed.rollup.to_dict() == baseline.rollup.to_dict()
        assert [e.to_dict() for e in resumed.events] == [
            e.to_dict() for e in baseline.events
        ]

    def test_resume_with_sharded_pool(self, study, tmp_path):
        ck = str(tmp_path / "ck.json")
        baseline = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0
        ).run()
        shard = ShardConfig(n_workers=2, batch_size=16, max_inflight=64)
        StreamEngine(
            make_source(study), geodb=study.geo, n_workers=2,
            shard_config=shard, checkpoint_path=ck, checkpoint_interval=64,
        ).run(max_samples=150)
        resumed = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=2,
            shard_config=shard, checkpoint_path=ck, checkpoint_interval=64,
        ).run(resume=True)
        assert resumed.rollup.to_dict() == baseline.rollup.to_dict()

    def test_resume_from_simulator_source(self, tmp_path):
        ck = str(tmp_path / "ck.json")
        source = two_week_stream_source(n_connections=80, seed=21)
        baseline = StreamEngine(source, geodb=source.world.geo, n_workers=0).run()

        source1 = two_week_stream_source(n_connections=80, seed=21)
        StreamEngine(
            source1, geodb=source1.world.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=20,
        ).run(max_samples=35)
        source2 = two_week_stream_source(n_connections=80, seed=21)
        resumed = StreamEngine(
            source2, geodb=source2.world.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=20,
        ).run(resume=True)
        assert resumed.rollup.to_dict() == baseline.rollup.to_dict()

    def test_checkpoint_atomic_and_versioned(self, tmp_path):
        path = str(tmp_path / "ck.json")
        manager = CheckpointManager(path, interval=10)
        assert manager.load() is None
        manager.save({"cursor": 5}, samples_done=10)
        payload = manager.load()
        assert payload["cursor"] == 5 and payload["samples_done"] == 10
        assert not manager.due(15)
        assert manager.due(20)

        with open(path, "w") as fh:
            fh.write("{\"version\": 999}")
        with pytest.raises(CheckpointError):
            manager.load()
        with open(path, "w") as fh:
            fh.write("not json")
        with pytest.raises(CheckpointError):
            manager.load()

    def test_resume_without_checkpoint_path_raises(self, study):
        engine = StreamEngine(make_source(study), geodb=study.geo)
        with pytest.raises(StreamError):
            engine.run(resume=True)


# ----------------------------------------------------------------------
# Anomaly detection
# ----------------------------------------------------------------------
class TestAnomalyDetection:
    def test_detector_fires_on_step_change(self):
        detector = EwmaDetector(AnomalyConfig(min_windows=6))
        events = []
        for window in range(60):
            rate = 10.0 if window < 40 else 35.0
            events += detector.observe("XX", float(window), rate, total=100)
        starts = [e for e in events if e.kind == "start"]
        assert len(starts) == 1
        assert starts[0].window_start >= 40.0
        assert detector.is_active("XX")
        assert detector.active_countries == ["XX"]

    def test_detector_quiet_on_noise(self):
        import random

        rng = random.Random(5)
        detector = EwmaDetector()
        for window in range(300):
            rate = max(0.0, rng.gauss(10.0, 2.0))
            detector.observe("XX", float(window), rate, total=200)
        assert detector.events == []

    def test_detector_skips_thin_windows(self):
        detector = EwmaDetector(AnomalyConfig(min_window_total=5))
        assert detector.observe("XX", 0.0, 100.0, total=2) == []
        assert detector.baseline("XX") is None

    def test_detector_hysteresis_closes_incident(self):
        detector = EwmaDetector(AnomalyConfig(min_windows=6))
        events = []
        rates = [10.0] * 30 + [40.0] * 10 + [10.0] * 20
        for window, rate in enumerate(rates):
            events += detector.observe("XX", float(window), rate, total=100)
        kinds = [e.kind for e in events]
        assert kinds == ["start", "end"]
        assert not detector.is_active("XX")

    def test_detector_state_roundtrip(self):
        detector = EwmaDetector(AnomalyConfig(min_windows=6))
        for window in range(50):
            rate = 10.0 if window < 40 else 40.0
            detector.observe("XX", float(window), rate, total=100)
        restored = EwmaDetector.from_dict(
            json.loads(json.dumps(detector.to_dict()))
        )
        assert restored.is_active("XX") == detector.is_active("XX")
        assert restored.baseline("XX") == detector.baseline("XX")
        assert [e.to_dict() for e in restored.events] == [
            e.to_dict() for e in detector.events
        ]

    def test_invalid_configs_rejected(self):
        with pytest.raises(StreamError):
            AnomalyConfig(alpha=0.0)
        with pytest.raises(StreamError):
            AnomalyConfig(cusum_enter=1.0, cusum_exit=2.0)
        with pytest.raises(StreamError):
            AnomalyConfig(min_window_total=0)
        with pytest.raises(StreamError):
            AnomalyConfig(drift=-0.1)
        with pytest.raises(StreamError):
            AnomalyConfig(sigma_floor=0.0)
        with pytest.raises(StreamError):
            AnomalyConfig(sigma_floor=-1.0)

    def test_incident_closes_during_sparse_traffic(self):
        # Regression: thin windows used to return without touching the
        # CUSUM statistic, so an incident opened just before a traffic
        # lull (the post-blackout shape of the Iran case study) latched
        # active forever.  Thin windows must decay the statistic and
        # eventually emit the "end" event.
        config = AnomalyConfig(min_windows=6)
        detector = EwmaDetector(config)
        events = []
        rates = [10.0] * 30 + [40.0] * 10
        for window, rate in enumerate(rates):
            events += detector.observe("XX", float(window), rate, total=100)
        assert [e.kind for e in events] == ["start"]
        assert detector.is_active("XX")
        baseline_before = detector.baseline("XX")

        # Starve the country: every window is below min_window_total.
        for window in range(len(rates), len(rates) + 40):
            events += detector.observe("XX", float(window), 0.0, total=1)
        kinds = [e.kind for e in events]
        assert kinds == ["start", "end"]
        assert not detector.is_active("XX")
        # Thin windows carry no rate information: the frozen baseline
        # must not have been dragged toward the (meaningless) thin rates.
        assert detector.baseline("XX") == baseline_before

    def test_thin_windows_decay_within_cap_bound(self):
        # The cap bounds the statistic, so the incident must close
        # within ceil((cusum_cap - cusum_exit) / drift) thin windows.
        config = AnomalyConfig(min_windows=6)
        detector = EwmaDetector(config)
        for window in range(40):
            rate = 10.0 if window < 30 else 40.0
            detector.observe("XX", float(window), rate, total=100)
        assert detector.is_active("XX")
        import math as _math

        bound = _math.ceil((config.cusum_cap - config.cusum_exit) / config.drift)
        closed_after = None
        for i in range(bound + 1):
            if detector.observe("XX", 40.0 + i, 0.0, total=1):
                closed_after = i + 1
                break
        assert closed_after is not None and closed_after <= bound

    def test_thin_windows_before_baseline_are_noops(self):
        detector = EwmaDetector(AnomalyConfig(min_window_total=5))
        # No state yet: a thin window must not create one.
        assert detector.observe("XX", 0.0, 100.0, total=2) == []
        assert "XX" not in detector._states

    def test_state_roundtrip_mid_incident_is_byte_for_byte(self):
        # Checkpoint/restore while an incident is open: active flag,
        # frozen baseline, and event history must survive exactly.
        detector = EwmaDetector(AnomalyConfig(min_windows=6))
        for window in range(45):
            rate = 10.0 if window < 40 else 40.0
            detector.observe("XX", float(window), rate, total=100)
        detector.observe("YY", 0.0, 5.0, total=50)  # second country, no incident
        assert detector.is_active("XX")

        payload = json.dumps(detector.to_dict(), sort_keys=True)
        restored = EwmaDetector.from_dict(json.loads(payload))
        assert json.dumps(restored.to_dict(), sort_keys=True) == payload
        assert restored.is_active("XX")
        assert restored.baseline("XX") == detector.baseline("XX")
        assert restored._states["XX"] == detector._states["XX"]
        assert [e.to_dict() for e in restored.events] == [
            e.to_dict() for e in detector.events
        ]
        # The restored detector keeps behaving identically.
        for window in range(45, 60):
            expected = detector.observe("XX", float(window), 10.0, total=100)
            got = restored.observe("XX", float(window), 10.0, total=100)
            assert [e.to_dict() for e in got] == [e.to_dict() for e in expected]


@pytest.mark.slow
class TestAnomalyScenarios:
    def test_fires_on_iran_protests_and_quiet_on_us_baseline(self):
        # 6000 connections keeps IR's hourly windows above the
        # detector's min_window_total population guard.
        iran = iran_protest_study(n_connections=6000, seed=13)
        engine = StreamEngine(
            IterableSource(iran.samples, timestamps=iran.timestamps),
            geodb=iran.geo,
            n_workers=0,
        )
        report = engine.run()
        ir_starts = [
            e for e in report.events if e.country == "IR" and e.kind == "start"
        ]
        assert ir_starts, "escalation in IR must raise an anomaly"
        protest_start = 1663027200.0
        days_in = (ir_starts[0].window_start - protest_start) / 86400.0
        # escalation ramps over days 0.5-3.5; detection should be live,
        # not a post-hoc artifact at the end of the window
        assert 0.5 <= days_in <= 6.0
        assert all(e.country != "DE" for e in report.events)

        # same engine configuration over a US-only baseline: no alerts
        us_world = World(
            profiles=[profile_for("US"), profile_for("DE")], seed=7, n_domains=800
        )
        us_study = two_week_study(n_connections=2500, seed=7, world=us_world)
        quiet = StreamEngine(
            IterableSource(us_study.samples, timestamps=us_study.timestamps),
            geodb=us_study.geo,
            n_workers=0,
        ).run()
        assert [e for e in quiet.events if e.country == "US"] == []


# ----------------------------------------------------------------------
# Engine odds and ends
# ----------------------------------------------------------------------
class TestEngine:
    def test_metrics_snapshot(self, study):
        engine = StreamEngine(make_source(study), geodb=study.geo, n_workers=0)
        report = engine.run(max_samples=100)
        snap = report.metrics
        assert snap["samples_in"] == 100
        assert snap["records_out"] == 100
        assert snap["queue_depth"] == 0
        assert snap["samples_per_second"] > 0
        assert "throughput" in engine.metrics.render()

    def test_report_render(self, study):
        report = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0
        ).run()
        text = report.render()
        assert "top tampered countries" in text
        assert "anomalies" in text

    def test_without_geodb_all_unattributed(self, study):
        report = StreamEngine(make_source(study), n_workers=0).run(max_samples=50)
        assert report.rollup.countries == ["??"]


# ----------------------------------------------------------------------
# Cooperative stop (request_stop / SIGTERM) and push mode
# ----------------------------------------------------------------------
class _StopTriggerSource:
    """Delegating source that requests an engine stop after N yields."""

    def __init__(self, inner, after):
        self.inner = inner
        self.after = after
        self.engine = None
        self.count = 0

    def __iter__(self):
        for item in self.inner:
            self.count += 1
            if self.count == self.after and self.engine is not None:
                self.engine.request_stop()
            yield item

    def cursor(self):
        return self.inner.cursor()

    def seek(self, cursor):
        self.inner.seek(cursor)

    def close(self):
        self.inner.close()


class TestCooperativeStop:
    def test_request_stop_checkpoints_and_resumes_identically(
        self, study, tmp_path
    ):
        ck = str(tmp_path / "ck.json")
        baseline = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0
        ).run()

        source = _StopTriggerSource(make_source(study), after=217)
        engine1 = StreamEngine(
            source, geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=50,
        )
        source.engine = engine1
        partial = engine1.run()
        assert not partial.finished
        assert partial.samples_processed == 217
        assert os.path.exists(ck)

        resumed = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=50,
        ).run(resume=True)
        assert resumed.finished
        assert resumed.rollup.to_dict() == baseline.rollup.to_dict()
        assert [e.to_dict() for e in resumed.events] == [
            e.to_dict() for e in baseline.events
        ]

    def test_request_stop_with_store_resumes_identically(self, study, tmp_path):
        offline = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0,
            store_dir=str(tmp_path / "offline"),
        ).run()

        ck = str(tmp_path / "ck.json")
        store_dir = str(tmp_path / "stopped")
        source = _StopTriggerSource(make_source(study), after=301)
        engine1 = StreamEngine(
            source, geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=50,
            store_dir=store_dir,
        )
        source.engine = engine1
        partial = engine1.run()
        assert not partial.finished
        engine1.store.close()

        engine2 = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=50,
            store_dir=store_dir,
        )
        resumed = engine2.run(resume=True)
        assert resumed.finished
        assert resumed.rollup.to_dict() == offline.rollup.to_dict()
        engine2.store.close()

    def test_stop_before_any_checkpoint_leaves_no_checkpoint(
        self, study, tmp_path
    ):
        ck = str(tmp_path / "ck.json")
        source = _StopTriggerSource(make_source(study), after=3)
        engine = StreamEngine(
            source, geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=50,
        )
        source.engine = engine
        partial = engine.run()
        assert not partial.finished
        # Stopped after 3 records: the due-interval never fired, but the
        # stop path writes a final resumable checkpoint anyway.
        assert os.path.exists(ck)
        resumed = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=50,
        ).run(resume=True)
        assert resumed.rollup.n_records == len(study.samples)


class TestPushMode:
    def _items(self, study):
        return [
            StreamItem(sample=s, ts=study.timestamps.get(s.conn_id))
            for s in study.samples
        ]

    def test_push_matches_pull_exactly(self, study, tmp_path):
        baseline = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0
        ).run()

        engine = StreamEngine(None, geodb=study.geo, n_workers=0)
        engine.open_push()
        items = self._items(study)
        total = 0
        for start in range(0, len(items), 97):  # uneven batches
            total += engine.push_items(items[start:start + 97])
        report = engine.drain()
        assert total == len(items)
        assert report.finished
        assert report.rollup.to_dict() == baseline.rollup.to_dict()
        assert [e.to_dict() for e in report.events] == [
            e.to_dict() for e in baseline.events
        ]

    def test_push_store_pause_resume_parity(self, study, tmp_path):
        offline = StreamEngine(
            make_source(study), geodb=study.geo, n_workers=0,
            store_dir=str(tmp_path / "offline"),
        ).run()

        ck = str(tmp_path / "ck.json")
        store_dir = str(tmp_path / "pushed")
        items = self._items(study)
        cut = len(items) // 2  # mid-bucket is fine: pause does not seal

        engine1 = StreamEngine(
            None, geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=100,
            store_dir=store_dir,
        )
        engine1.open_push()
        engine1.push_items(items[:cut])
        paused = engine1.drain(seal=False)
        assert not paused.finished
        engine1.store.close()

        engine2 = StreamEngine(
            None, geodb=study.geo, n_workers=0,
            checkpoint_path=ck, checkpoint_interval=100,
            store_dir=store_dir,
        )
        engine2.open_push(resume=True)
        engine2.push_items(items[cut:])
        report = engine2.drain(seal=True)
        assert report.finished
        assert report.rollup.to_dict() == offline.rollup.to_dict()
        assert [e.to_dict() for e in report.events] == [
            e.to_dict() for e in offline.events
        ]
        engine2.store.close()

    def test_push_mode_guards(self, study):
        with pytest.raises(StreamError, match="source-less"):
            StreamEngine(None, n_workers=0).run()
        with pytest.raises(StreamError, match="source-less"):
            StreamEngine(make_source(study), n_workers=0).open_push()
        with pytest.raises(StreamError, match="n_workers=0"):
            StreamEngine(None, n_workers=2).open_push()
        engine = StreamEngine(None, n_workers=0)
        with pytest.raises(StreamError, match="push session"):
            engine.push_items([])
        with pytest.raises(StreamError, match="push session"):
            engine.drain()
        engine.open_push()
        with pytest.raises(StreamError, match="already open"):
            engine.open_push()
        with pytest.raises(StreamError, match="no checkpoint path"):
            engine.checkpoint_now()
        with pytest.raises(StreamError, match="no checkpoint path"):
            StreamEngine(None, n_workers=0).open_push(resume=True)


@pytest.mark.chaos
class TestStreamSignals:
    def test_cli_sigterm_checkpoints_then_resume_parity(self, tmp_path):
        import signal
        import subprocess
        import time as _time

        study = two_week_study(n_connections=120, seed=31)
        samples_path = str(tmp_path / "samples.jsonl")
        write_samples_jsonl(samples_path, study.samples)
        n = len(study.samples)

        # Throttle the child with per-item stalls so the parent can
        # reliably signal it mid-run.
        plan_path = str(tmp_path / "faults.json")
        with open(plan_path, "w") as fh:
            json.dump({"faults": [
                {"index": i, "kind": "stall", "stall_seconds": 0.01}
                for i in range(n)
            ]}, fh)

        ck = str(tmp_path / "ck.json")
        store_dir = str(tmp_path / "store")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
        cmd = [
            sys.executable, "-m", "repro", "stream", samples_path,
            "--checkpoint", ck, "--checkpoint-interval", "20",
            "--store", store_dir, "--fault-plan", plan_path,
        ]
        child = subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        deadline = _time.monotonic() + 30
        while not os.path.exists(ck):
            assert _time.monotonic() < deadline, "child never checkpointed"
            assert child.poll() is None, child.communicate()[1]
            _time.sleep(0.02)
        child.send_signal(signal.SIGTERM)
        out, err = child.communicate(timeout=30)
        assert child.returncode == 0, err
        assert "stopped by SIGTERM" in err
        assert "stream stopped" in out

        resume = subprocess.run(
            cmd + ["--resume"], env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            timeout=60,
        )
        assert resume.returncode == 0, resume.stderr
        assert "stream finished" in resume.stdout

        from repro.store import RollupStore

        offline = StreamEngine(
            JsonlSource(samples_path), n_workers=0,
            store_dir=str(tmp_path / "offline"),
        ).run()
        reader = RollupStore.open_read_only(store_dir)
        assert reader.to_rollup().to_dict() == offline.rollup.to_dict()
        reader.close()
