"""Tests for :mod:`repro.serve`: the HTTP ingest/query tier.

The load-bearing assertion is the end-to-end parity gate: samples
ingested through ``POST /v1/samples`` -- including under concurrent
load with a 429 burst, and across a drain/restart -- must produce a
store whose queries are byte-for-byte identical to the same samples
run through the offline stream engine.  The unit classes pin down the
admission-control pieces (token buckets, the micro-batcher, the HTTP
parser) in isolation with injected clocks, so nothing sleeps.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ServeError, StoreError
from repro.serve import (
    ClientRateLimiter,
    MicroBatcher,
    RetryLater,
    ServeClient,
    ServeConfig,
    ServeService,
)
from repro.serve.httpd import HttpProtocolError, _read_request
from repro.store import RollupStore, StoreQuery
from repro.stream import IterableSource, StreamEngine
from repro.workloads.scenarios import two_week_study

HOUR = 3600.0


@pytest.fixture(scope="module")
def study():
    return two_week_study(n_connections=300, seed=9)


def ordered(value):
    """Freeze dict key order into lists so ``==`` compares it too."""
    if isinstance(value, dict):
        return [[str(key), ordered(val)] for key, val in value.items()]
    if isinstance(value, (list, tuple)):
        return [ordered(item) for item in value]
    return value


def assert_store_parity(dir_a, dir_b):
    """All four query families byte-identical between two stores."""
    a = RollupStore.open_read_only(dir_a)
    b = RollupStore.open_read_only(dir_b)
    try:
        for family in ("country_tampering_rate", "timeseries",
                       "stage_statistics"):
            assert ordered(a.query(StoreQuery(family)).value) == ordered(
                b.query(StoreQuery(family)).value
            ), family
        for country in a.query(StoreQuery("country_tampering_rate")).value:
            fam = StoreQuery("signature_hour_counts", country=country)
            assert ordered(a.query(fam).value) == ordered(b.query(fam).value)
    finally:
        a.close()
        b.close()


def bucket_aligned_cut(study, minimum_fraction=0.5):
    """First index after ``minimum_fraction`` where the hour bucket turns."""
    ts = [study.timestamps.get(s.conn_id) for s in study.samples]
    floor = int(len(ts) * minimum_fraction)
    for i in range(max(1, floor), len(ts)):
        if ts[i] // HOUR != ts[i - 1] // HOUR:
            return i
    raise AssertionError("no bucket boundary in the back half of the study")


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
class TestServeConfig:
    def test_defaults_validate(self):
        ServeConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        {"port": -1},
        {"port": 70000},
        {"batch_max_records": 0},
        {"batch_max_delay_seconds": -0.1},
        {"queue_max_records": 10, "batch_max_records": 20},
        {"rate_records_per_second": -1.0},
        {"rate_burst_records": 0},
        {"rate_max_clients": 0},
        {"max_body_bytes": 0},
    ])
    def test_bad_values_raise(self, kwargs):
        with pytest.raises(ServeError):
            ServeConfig(**kwargs).validate()


# ----------------------------------------------------------------------
# Token buckets
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(rate=2.0, burst=4.0, clock=clock)
        ok, wait = limiter.try_acquire("a", 4)
        assert ok and wait == 0.0
        ok, wait = limiter.try_acquire("a", 1)
        assert not ok and wait == pytest.approx(0.5)
        clock.advance(0.5)
        ok, _ = limiter.try_acquire("a", 1)
        assert ok

    def test_oversized_requests_get_finite_wait(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(rate=1.0, burst=2.0, clock=clock)
        ok, wait = limiter.try_acquire("a", 100)
        assert not ok
        assert wait == pytest.approx(0.0)  # bucket starts full
        clock.advance(1000)
        ok, wait = limiter.try_acquire("a", 100)
        assert not ok and wait == pytest.approx(0.0)

    def test_clients_are_independent(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(rate=1.0, burst=2.0, clock=clock)
        assert limiter.try_acquire("a", 2)[0]
        assert not limiter.try_acquire("a", 1)[0]
        assert limiter.try_acquire("b", 2)[0]

    def test_disabled_when_rate_zero(self):
        limiter = ClientRateLimiter(rate=0.0)
        for _ in range(100):
            assert limiter.try_acquire("a", 10**9) == (True, 0.0)

    def test_lru_eviction_bounds_the_table(self):
        clock = FakeClock()
        limiter = ClientRateLimiter(
            rate=1.0, burst=5.0, max_clients=2, clock=clock
        )
        limiter.try_acquire("a", 5)  # drain a's bucket
        limiter.try_acquire("b", 1)
        limiter.try_acquire("c", 1)  # evicts a (LRU)
        assert len(limiter._buckets) == 2
        # a re-enters with a fresh (full) bucket, same as a new client.
        assert limiter.try_acquire("a", 5)[0]


# ----------------------------------------------------------------------
# Micro-batcher
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def make(self, batch=4, delay=10.0, queue=16, clock=None):
        return MicroBatcher(batch, delay, queue, clock=clock or FakeClock())

    def test_flush_on_size(self):
        batcher = self.make(batch=4)
        assert batcher.offer([1, 2, 3, 4, 5])
        assert batcher.next_batch() == [1, 2, 3, 4]
        assert batcher.depth() == 1

    def test_flush_on_deadline(self):
        clock = FakeClock()
        batcher = self.make(batch=100, delay=0.5, queue=200, clock=clock)
        batcher.offer([1, 2])
        clock.advance(0.6)  # past the deadline: a short batch flushes
        assert batcher.next_batch() == [1, 2]

    def test_bounded_offer_refuses_all_or_nothing(self):
        batcher = self.make(queue=6)
        assert batcher.offer([1, 2, 3, 4])
        assert not batcher.offer([5, 6, 7])  # 4 + 3 > 6
        assert batcher.depth() == 4  # nothing partially admitted
        assert batcher.refused == 3
        assert batcher.offer([5, 6])

    def test_close_flushes_remainder_then_none(self):
        batcher = self.make(batch=100, delay=100.0, queue=200)
        batcher.offer([1, 2, 3])
        batcher.close()
        assert not batcher.offer([4])  # closed admits nothing
        assert batcher.next_batch() == [1, 2, 3]
        assert batcher.next_batch() is None

    def test_fifo_across_offers(self):
        batcher = self.make(batch=3)
        batcher.offer([1])
        batcher.offer([2, 3])
        assert batcher.next_batch() == [1, 2, 3]

    def test_worker_wakes_on_size_threshold(self):
        # Real clock: a blocked consumer must wake when the producer
        # crosses the batch threshold, not only on deadline expiry.
        batcher = MicroBatcher(2, 30.0, 16)
        got = []
        thread = threading.Thread(
            target=lambda: got.append(batcher.next_batch())
        )
        thread.start()
        time.sleep(0.05)
        batcher.offer([1, 2])
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert got == [[1, 2]]

    def test_would_ever_fit(self):
        batcher = self.make(queue=16)
        assert batcher.would_ever_fit(16)
        assert not batcher.would_ever_fit(17)


# ----------------------------------------------------------------------
# HTTP parsing
# ----------------------------------------------------------------------
def parse_http(raw, max_header=65536, max_body=1 << 20):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await _read_request(reader, "test-peer", max_header, max_body)

    return asyncio.run(go())


class TestHttpParsing:
    def test_get_with_query_params(self):
        request = parse_http(
            b"GET /v1/query?family=timeseries&start=1.5 HTTP/1.1\r\n"
            b"Host: x\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/v1/query"
        assert request.query == {"family": "timeseries", "start": "1.5"}
        assert request.peer == "test-peer"

    def test_post_with_body(self):
        request = parse_http(
            b"POST /v1/samples HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert request.body == b"abcd"
        assert request.headers["content-length"] == "4"

    def test_clean_eof_returns_none(self):
        assert parse_http(b"") is None

    @pytest.mark.parametrize("raw,status", [
        (b"GARBAGE\r\n\r\n", 400),
        (b"GET /x SPDY/3\r\n\r\n", 400),
        (b"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n", 400),
        (b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
        (b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", 400),
        (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
    ])
    def test_malformed_requests(self, raw, status):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse_http(raw)
        assert excinfo.value.status == status

    def test_oversize_body_is_413(self):
        with pytest.raises(HttpProtocolError) as excinfo:
            parse_http(
                b"POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\n",
                max_body=10,
            )
        assert excinfo.value.status == 413

    def test_oversize_headers_rejected(self):
        raw = b"GET /x HTTP/1.1\r\n" + b"A: " + b"b" * 200 + b"\r\n\r\n"
        with pytest.raises(HttpProtocolError) as excinfo:
            parse_http(raw, max_header=100)
        assert excinfo.value.status == 400


# ----------------------------------------------------------------------
# In-process service harness
# ----------------------------------------------------------------------
class RunningService:
    def __init__(self, service):
        self.service = service
        self.thread = threading.Thread(target=service.run, daemon=True)

    def __enter__(self):
        self.thread.start()
        assert self.service.ready.wait(15), "service never became ready"
        return self.service

    def __exit__(self, exc_type, exc, tb):
        self.stop()

    def stop(self):
        if self.thread.is_alive():
            self.service.request_shutdown_threadsafe()
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "service failed to drain"


def wait_folded(client, n, timeout=15.0):
    """Poll /readyz until the engine has folded ``n`` records."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            payload = client._json("GET", "/readyz")
        except ServeError:
            time.sleep(0.02)
            continue
        if payload.get("folded", -1) >= n and payload.get("queued") == 0:
            return
        time.sleep(0.02)
    raise AssertionError(f"server never folded {n} records")


class TestServiceEndpoints:
    def test_health_ready_and_routing(self, tmp_path, study):
        service = ServeService(
            str(tmp_path / "store"), config=ServeConfig(port=0),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port)
            assert client.healthz() == {"status": "ok"}
            assert client.ready() is True
            status, _, _ = client._request("GET", "/no/such/route")
            assert status == 404
            status, headers, _ = client._request("GET", "/v1/samples")
            assert status == 405
            assert headers.get("allow") == "POST"
            status, _, _ = client._request("POST", "/healthz")
            assert status == 405
            client.close()

    def test_request_id_echo_on_success_and_errors(self, tmp_path, study):
        service = ServeService(
            str(tmp_path / "store"), config=ServeConfig(port=0),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port)
            # No client id sent: the server mints one per response.
            status, headers, _ = client._request("GET", "/healthz")
            assert status == 200
            minted = headers.get("x-request-id")
            assert minted
            status, headers, _ = client._request("GET", "/healthz")
            assert headers.get("x-request-id") != minted

            # A client-supplied id is echoed verbatim -- on errors too,
            # and injected into the JSON error body for log correlation.
            supplied = {"X-Request-Id": "req-abc-123"}
            status, headers, payload = client._request(
                "POST", "/v1/samples", body=b"not json",
                headers={"Content-Type": "application/json", **supplied},
            )
            assert status == 400
            assert headers.get("x-request-id") == "req-abc-123"
            assert json.loads(payload)["request_id"] == "req-abc-123"

            status, headers, payload = client._request(
                "GET", "/no/such/route", headers=supplied
            )
            assert status == 404
            assert headers.get("x-request-id") == "req-abc-123"
            assert json.loads(payload)["request_id"] == "req-abc-123"

            status, headers, _ = client._request(
                "POST", "/v1/query", headers=supplied
            )
            assert status == 405
            assert headers.get("x-request-id") == "req-abc-123"

            # The stdlib client helper tracks what it sent vs. got back.
            client.post_samples(study.samples[:2],
                                timestamps=study.timestamps)
            assert client.last_request_id
            assert client.last_response_request_id == client.last_request_id
            client.close()

    def test_bad_payloads_are_400(self, tmp_path, study):
        service = ServeService(
            str(tmp_path / "store"), config=ServeConfig(port=0),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port)
            for body in (b"not json", b"[1, 2, 3]", b'{"sample": {}}',
                         b'[{"not_a_sample": true}]'):
                status, _, payload = client._request(
                    "POST", "/v1/samples", body=body
                )
                assert status == 400, body
                assert b"error" in payload
            # Empty body is fine: zero records accepted.
            assert client.post_samples([]) == {"accepted": 0, "queued": 0}
            client.close()

    def test_oversize_batch_is_413(self, tmp_path, study):
        service = ServeService(
            str(tmp_path / "store"),
            config=ServeConfig(
                port=0, batch_max_records=4, queue_max_records=8
            ),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port)
            with pytest.raises(ServeError, match="413"):
                client.post_samples(study.samples[:9])
            client.close()

    def test_rate_limit_answers_429_with_retry_after(self, tmp_path, study):
        service = ServeService(
            str(tmp_path / "store"),
            config=ServeConfig(
                port=0,
                rate_records_per_second=1.0,
                rate_burst_records=2,
            ),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port, client_id="limited")
            # Larger than the burst: can never pass outright.
            with pytest.raises(RetryLater) as excinfo:
                client.post_samples(study.samples[:3])
            assert excinfo.value.retry_after >= 1
            # Within burst: admitted; immediately again: out of tokens.
            assert client.post_samples(study.samples[:2])["accepted"] == 2
            with pytest.raises(RetryLater):
                client.post_samples(study.samples[2:4])
            # A different client has its own bucket.
            other = ServeClient(port=service.port, client_id="fresh")
            assert other.post_samples(study.samples[4:6])["accepted"] == 2
            metrics = client.metrics_text()
            assert "repro_serve_rejected_ratelimit_total" in metrics
            client.close()
            other.close()

    def test_queue_full_answers_429(self, tmp_path, study):
        service = ServeService(
            str(tmp_path / "store"),
            config=ServeConfig(
                port=0, batch_max_records=4, queue_max_records=8,
                batch_max_delay_seconds=0.01,
            ),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port)
            # Wedge the fold: the worker blocks on the engine lock with
            # at most one batch in hand, so the queue cannot drain.
            with service._engine_lock:
                assert client.post_samples(study.samples[:8])["accepted"] == 8
                time.sleep(0.1)  # let the worker take its one batch
                with pytest.raises(RetryLater) as excinfo:
                    client.post_samples(study.samples[8:16])
                assert excinfo.value.retry_after >= 1
            wait_folded(client, 8)
            assert client.post_samples(study.samples[8:16])["accepted"] == 8
            client.close()

    def test_query_and_anomalies_roundtrip(self, tmp_path, study):
        service = ServeService(
            str(tmp_path / "store"), config=ServeConfig(port=0),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port)
            client.post_samples(study.samples, timestamps=study.timestamps)
            wait_folded(client, len(study.samples))
            result = client.query("country_tampering_rate")
            assert result["family"] == "country_tampering_rate"
            assert result["value"]  # sealed buckets are visible live
            assert result["open_buckets_scanned"] == 0
            result = client.query("timeseries", country=None)
            assert set(result) >= {"value", "generation", "buckets_scanned"}
            anomalies = client.anomalies()
            assert anomalies["count"] == len(anomalies["events"])
            with pytest.raises(ServeError, match="400"):
                client.query("no_such_family")
            status, _, _ = client._request(
                "GET", "/v1/query?family=timeseries&start=abc"
            )
            assert status == 400
            client.close()

    def test_metrics_exposition_includes_endpoint_latency(
        self, tmp_path, study
    ):
        service = ServeService(
            str(tmp_path / "store"), config=ServeConfig(port=0),
            geodb=study.geo,
        )
        with RunningService(service):
            client = ServeClient(port=service.port)
            client.healthz()
            text = client.metrics_text()
            assert "# TYPE repro_serve_http_healthz_seconds histogram" in text
            assert 'repro_serve_http_healthz_seconds_bucket{le="+Inf"}' in text
            assert "repro_serve_http_requests_total" in text
            assert "repro_serve_http_healthz_inflight 0" in text
            client.close()


# ----------------------------------------------------------------------
# Parity gates
# ----------------------------------------------------------------------
def offline_store(study, directory, samples=None):
    source = IterableSource(
        samples if samples is not None else study.samples,
        timestamps=study.timestamps,
    )
    engine = StreamEngine(
        source, geodb=study.geo, n_workers=0, store_dir=directory
    )
    report = engine.run()
    engine.store.close()
    return report


class TestServeParity:
    def test_sequential_ingest_is_byte_identical_to_offline(
        self, tmp_path, study
    ):
        offline_store(study, str(tmp_path / "offline"))

        serve_dir = str(tmp_path / "served")
        service = ServeService(
            serve_dir,
            config=ServeConfig(
                port=0, batch_max_records=32, batch_max_delay_seconds=0.005
            ),
            geodb=study.geo,
        )
        runner = RunningService(service)
        with runner:
            client = ServeClient(port=service.port)
            for start in range(0, len(study.samples), 53):  # uneven POSTs
                client.post_samples(
                    study.samples[start:start + 53],
                    timestamps=study.timestamps,
                )
            wait_folded(client, len(study.samples))
            client.close()
            runner.stop()  # graceful drain seals the tail
        assert service.report is not None and service.report.finished
        assert_store_parity(serve_dir, str(tmp_path / "offline"))

    def test_concurrent_load_with_429s_and_restart_parity(
        self, tmp_path, study
    ):
        """The acceptance gate: concurrency + a 429 burst + drain/restart.

        Admission order is kept deterministic the honest way -- the
        ingest client sends batch k+1 only after batch k is accepted --
        while a concurrent flood client (whose batches exceed the token
        burst, so every one is rejected with 429) and concurrent query
        readers provide the contention.  The flood never pollutes the
        store, so the final state must be byte-identical to offline.
        """
        offline_store(study, str(tmp_path / "offline"))
        cut = bucket_aligned_cut(study)
        serve_dir = str(tmp_path / "served")
        config = ServeConfig(
            port=0,
            batch_max_records=32,
            batch_max_delay_seconds=0.005,
            rate_records_per_second=1e6,  # refills instantly...
            rate_burst_records=64,        # ...but bursts above 64 never pass
        )

        def flood_and_read(service, stop_event, saw_429, errors):
            flood = ServeClient(port=service.port, client_id="flood")
            reader = ServeClient(port=service.port, client_id="reader")
            oversized = study.samples[:65]  # burst is 64
            while not stop_event.is_set():
                try:
                    flood.post_samples(oversized)
                    errors.append("flood batch was admitted")
                    return
                except RetryLater:
                    saw_429.append(1)
                except ServeError:
                    pass  # drain race: connection refused / 503
                try:
                    reader.query("timeseries")
                    reader.anomalies()
                    reader.metrics_text()
                except ServeError:
                    pass
            flood.close()
            reader.close()

        def serve_phase(samples, resume_expected, folded_target):
            service = ServeService(serve_dir, config=config, geodb=study.geo)
            runner = RunningService(service)
            stop_event = threading.Event()
            saw_429, errors = [], []
            with runner:
                hammer = threading.Thread(
                    target=flood_and_read,
                    args=(service, stop_event, saw_429, errors),
                )
                hammer.start()
                try:
                    client = ServeClient(port=service.port, client_id="main")
                    for start in range(0, len(samples), 48):
                        batch = samples[start:start + 48]
                        while True:  # in-order: retry THIS batch until in
                            try:
                                client.post_samples(
                                    batch, timestamps=study.timestamps
                                )
                                break
                            except RetryLater as exc:
                                time.sleep(min(exc.retry_after, 0.05))
                    wait_folded(client, folded_target)
                    client.close()
                finally:
                    stop_event.set()
                    hammer.join(timeout=30)
                runner.stop()
            assert not errors, errors
            assert saw_429, "flood client never drew a 429"
            assert service.report is not None
            # Per-endpoint status-class counters: the main client's
            # accepted batches are 2xx, every flood rejection is a 4xx
            # (the drain-race 503s land in 5xx, never in 4xx).
            registry = service.obs.registry
            assert registry.get("serve.http.samples.2xx").value > 0
            assert registry.get("serve.http.samples.4xx").value >= len(
                saw_429
            )
            assert registry.get("serve.http.query.2xx").value > 0
            assert registry.get("serve.http.query.4xx").value == 0

        # Phase 1: first half (ends on a bucket boundary), then drain.
        serve_phase(study.samples[:cut], False, cut)
        # Phase 2: restart over the same store, resume, second half.
        serve_phase(study.samples[cut:], True, len(study.samples))

        assert_store_parity(serve_dir, str(tmp_path / "offline"))


# ----------------------------------------------------------------------
# CLI smoke: real process, real SIGTERM
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestServeCli:
    def _spawn(self, store, port, extra=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(
            os.path.dirname(__file__), "..", "src"
        )
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--store", store, "--port", str(port),
            "--batch-records", "64", "--batch-delay", "0.01",
        ] + list(extra)
        return subprocess.Popen(
            cmd, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )

    def _wait_ready(self, client, child, timeout=30):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            assert child.poll() is None, child.communicate()[1]
            try:
                if client.ready():
                    return
            except ServeError:
                pass
            time.sleep(0.05)
        raise AssertionError("server never became ready")

    def test_serve_smoke_post_query_scrape_sigterm(self, tmp_path):
        import socket

        study = two_week_study(n_connections=150, seed=13)
        cut = bucket_aligned_cut(study)
        store = str(tmp_path / "store")
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]

        # Boot, POST the first half, query it back, scrape, SIGTERM.
        child = self._spawn(store, port)
        client = ServeClient(port=port)
        self._wait_ready(client, child)
        # No geodb in the CLI path: samples classify with their own
        # country attribution, exactly like `repro stream <file>`.
        result = client.post_samples(
            study.samples[:cut], timestamps=study.timestamps
        )
        assert result["accepted"] == cut
        wait_folded(client, cut)
        query = client.query("timeseries")
        assert query["value"], "live query returned nothing"
        scrape = client.metrics_text()
        assert "repro_serve_records_accepted_total" in scrape
        client.close()
        child.send_signal(signal.SIGTERM)
        out, err = child.communicate(timeout=60)
        assert child.returncode == 0, err
        assert "drained after" in err

        # Restart over the same store: resume, second half, drain.
        child = self._spawn(store, port)
        client = ServeClient(port=port)
        self._wait_ready(client, child)
        client.post_samples(study.samples[cut:], timestamps=study.timestamps)
        wait_folded(client, len(study.samples))
        client.close()
        child.send_signal(signal.SIGTERM)
        out, err = child.communicate(timeout=60)
        assert child.returncode == 0, err

        # Byte-identical to the same samples streamed offline.
        offline = str(tmp_path / "offline")
        engine = StreamEngine(
            IterableSource(study.samples, timestamps=study.timestamps),
            n_workers=0, store_dir=offline,
        )
        engine.run()
        engine.store.close()
        assert_store_parity(store, offline)
