"""Tests for encrypted-SNI (ESNI/ECH) support and its censorship.

Paper footnote 1: TLS 1.3's encrypted ClientHello still shows a
cleartext outer SNI, and the earlier ESNI proposal was blocked by China
entirely -- reference [19].  The `gfw_ech` vendor models that wholesale
blocking; these tests cover the TLS mechanics and the policy/censorship
consequences.
"""

import pytest

from repro.core.classifier import TamperingClassifier
from repro.core.model import SignatureId
from repro.middlebox.policy import BlockPolicy, DomainRule, EncryptedSniRule, FlowContext
from repro.middlebox.vendors import gfw, gfw_ech
from repro.netstack.tls import (
    build_client_hello,
    extract_sni,
    has_encrypted_sni,
    parse_client_hello,
)
from tests.conftest import capture, make_client, run_connection


class TestEchWireFormat:
    def test_ech_hides_the_real_name(self):
        hello = build_client_hello("secret.example", ech=True)
        assert extract_sni(hello) is None
        assert has_encrypted_sni(hello)

    def test_ech_with_outer_sni(self):
        hello = build_client_hello("secret.example", ech=True, outer_sni="provider.example")
        assert extract_sni(hello) == "provider.example"  # cleartext outer name
        assert has_encrypted_sni(hello)
        parsed = parse_client_hello(hello)
        assert parsed.encrypted_sni
        assert parsed.sni == "provider.example"

    def test_plain_hello_not_flagged(self):
        hello = build_client_hello("plain.example")
        assert not has_encrypted_sni(hello)
        assert not parse_client_hello(hello).encrypted_sni

    def test_never_raises_on_garbage(self):
        for blob in (b"", b"\x16\x03", b"GET / HTTP/1.1", bytes(64)):
            assert not has_encrypted_sni(blob)


class TestEncryptedSniRule:
    def test_matches_on_payload(self):
        rule = EncryptedSniRule()
        ech = build_client_hello("x.example", ech=True)
        plain = build_client_hello("x.example")
        assert rule.matches(FlowContext(server_ip="1.2.3.4", server_port=443, payload=ech))
        assert not rule.matches(FlowContext(server_ip="1.2.3.4", server_port=443, payload=plain))
        assert not rule.matches(FlowContext(server_ip="1.2.3.4", server_port=443))


class TestGfwEchVendor:
    def _run(self, segments, seed=3):
        device = gfw_ech(BlockPolicy.nothing(), seed=seed)
        client = make_client(segments=segments, seed=seed)
        result = run_connection(client, middleboxes=[device], server_port=client.peer_port, seed=seed)
        return TamperingClassifier().classify(capture(result, conn_id=seed))

    def test_any_ech_handshake_blocked(self):
        """Even a completely innocent domain dies if it hides its SNI."""
        segments = [build_client_hello("innocent.example", ech=True)]
        verdict = self._run(segments)
        assert verdict.signature == SignatureId.PSH_RST_RSTACK
        assert verdict.is_tampering

    def test_plain_handshake_passes(self):
        segments = [build_client_hello("innocent.example")]
        verdict = self._run(segments)
        assert verdict.signature == SignatureId.NOT_TAMPERING

    def test_ech_evades_domain_censor_but_not_ech_censor(self):
        """The arms race in one test: ECH hides the name from a
        domain-keyed censor (evasion works), but an ECH-keying censor
        blocks the mechanism itself."""
        domain_censor = gfw(BlockPolicy([DomainRule(["blocked.example"])]), seed=5)
        ech_segments = [build_client_hello("blocked.example", ech=True)]

        client = make_client(segments=ech_segments, seed=5)
        result = run_connection(client, middleboxes=[domain_censor],
                                server_port=client.peer_port, seed=5)
        verdict = TamperingClassifier().classify(capture(result, conn_id=5))
        assert verdict.signature == SignatureId.NOT_TAMPERING  # evaded!

        verdict = self._run(ech_segments, seed=6)
        assert verdict.is_tampering  # ...until the censor keys on ECH

    def test_registered_preset(self):
        from repro.middlebox.vendors import VENDOR_PRESETS

        assert "gfw_ech" in VENDOR_PRESETS
