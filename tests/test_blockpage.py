"""Tests for block-page content injection (paper footnote 2 extension)."""

from repro.core.classifier import TamperingClassifier
from repro.core.model import SignatureId
from repro.middlebox.device import TamperBehavior, TamperingMiddlebox
from repro.middlebox.injector import InjectionSpec
from repro.middlebox.policy import BlockPolicy, DomainRule
from repro.middlebox.vendors import BLOCKPAGE_BODY, iran_blockpage
from repro.netstack.flags import TCPFlags
from tests.conftest import capture, make_client, run_connection


def make_device(**behavior_kwargs):
    behavior = TamperBehavior(
        drop_trigger=True,
        inject_to_server=InjectionSpec.single(TCPFlags.RSTACK),
        blockpage=b"HTTP/1.1 403 Forbidden\r\n\r\nblocked",
        **behavior_kwargs,
    )
    return TamperingMiddlebox(BlockPolicy([DomainRule(["blocked.example"])]), behavior)


class TestBlockpageInjection:
    def test_client_receives_forged_page(self):
        device = make_device()
        client = make_client()
        result = run_connection(client, middleboxes=[device], server_port=client.peer_port)
        pages = [p for p in result.client_received if p.injected and p.has_payload]
        assert len(pages) == 1
        assert pages[0].payload.startswith(b"HTTP/1.1 403")
        # Spoofed from the server's address.
        assert pages[0].src == result.server_inbound[0].dst

    def test_server_never_sees_the_page(self):
        device = make_device()
        client = make_client()
        result = run_connection(client, middleboxes=[device], server_port=client.peer_port)
        assert all(not (p.injected and p.has_payload) for p in result.server_inbound)

    def test_server_side_verdict_unchanged(self):
        """The page is invisible to the methodology: the signature is the
        same as without it (footnote 2)."""
        with_page = make_device()
        without_page = TamperingMiddlebox(
            BlockPolicy([DomainRule(["blocked.example"])]),
            TamperBehavior(drop_trigger=True, inject_to_server=InjectionSpec.single(TCPFlags.RSTACK)),
        )
        verdicts = []
        for device in (with_page, without_page):
            client = make_client()
            result = run_connection(client, middleboxes=[device], server_port=client.peer_port)
            verdicts.append(TamperingClassifier().classify(capture(result)).signature)
        assert verdicts[0] == verdicts[1]


class TestIranBlockpagePreset:
    def test_signature_is_post_ack_rst(self):
        policy = BlockPolicy([DomainRule(["blocked.example"])])
        device = iran_blockpage(policy, seed=5)
        client = make_client()
        result = run_connection(client, middleboxes=[device], server_port=client.peer_port)
        verdict = TamperingClassifier().classify(capture(result))
        assert verdict.signature == SignatureId.ACK_RST
        pages = [p for p in result.client_received if p.injected and p.has_payload]
        assert pages and pages[0].payload == BLOCKPAGE_BODY

    def test_preset_registered(self):
        from repro.middlebox.vendors import VENDOR_PRESETS

        assert "iran_blockpage" in VENDOR_PRESETS
