"""Unit tests for the Table 1 signature decision logic.

These tests build inbound packet lists by hand (no simulator) so every
branch of the decision tree is pinned down explicitly.
"""

import pytest

from repro.core.model import SignatureId, Stage
from repro.core.signatures import INACTIVITY_SECONDS, match_signature
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet

CLIENT, SERVER = "11.0.0.8", "198.41.0.3"


def pkt(flags, ts=0.0, seq=100, ack=0, payload=b""):
    return Packet(src=CLIENT, dst=SERVER, sport=40000, dport=443,
                  seq=seq, ack=ack, flags=flags, ts=ts, payload=payload)


def syn(ts=0.0, seq=100):
    return pkt(TCPFlags.SYN, ts=ts, seq=seq)


def hs_ack(ts=0.0):
    return pkt(TCPFlags.ACK, ts=ts, seq=101, ack=901)


def data(ts=0.0, seq=101, payload=b"\x16\x03\x01data"):
    return pkt(TCPFlags.PSHACK, ts=ts, seq=seq, ack=901, payload=payload)


def rst(ts=1.0, seq=120, ack=0):
    return pkt(TCPFlags.RST, ts=ts, seq=seq, ack=ack)


def rstack(ts=1.0, seq=120, ack=901):
    return pkt(TCPFlags.RSTACK, ts=ts, seq=seq, ack=ack)


def fin(ts=2.0, seq=150):
    return pkt(TCPFlags.FINACK, ts=ts, seq=seq, ack=950)


def classify(packets, window_end=None):
    if window_end is None:
        last = max((p.ts for p in packets), default=0.0)
        window_end = last + 10.0
    return match_signature(packets, window_end=window_end)


class TestPostSyn:
    def test_syn_none(self):
        m = classify([syn()])
        assert m.signature == SignatureId.SYN_NONE
        assert m.stage == Stage.POST_SYN
        assert m.possibly_tampered

    def test_retransmitted_syns_still_syn_none(self):
        m = classify([syn(0.0), syn(1.0), syn(3.0)])
        assert m.signature == SignatureId.SYN_NONE

    def test_syn_rst(self):
        assert classify([syn(), rst()]).signature == SignatureId.SYN_RST

    def test_syn_multiple_rst(self):
        m = classify([syn(), rst(1.0), rst(1.1, ack=5)])
        assert m.signature == SignatureId.SYN_RST  # "one or more"

    def test_syn_rstack(self):
        assert classify([syn(), rstack()]).signature == SignatureId.SYN_RSTACK

    def test_syn_rst_rstack(self):
        m = classify([syn(), rst(1.0), rstack(1.1)])
        assert m.signature == SignatureId.SYN_RST_RSTACK

    def test_syn_with_payload_still_post_syn(self):
        # TCP fast-open style SYN carrying an HTTP request (paper §4.1).
        m = classify([pkt(TCPFlags.SYN, payload=b"GET / HTTP/1.1\r\n\r\n")])
        assert m.signature == SignatureId.SYN_NONE
        assert m.stage == Stage.POST_SYN


class TestPostAck:
    def test_ack_none(self):
        m = classify([syn(), hs_ack(0.1)])
        assert m.signature == SignatureId.ACK_NONE
        assert m.stage == Stage.POST_ACK

    def test_ack_rst_exactly_one(self):
        assert classify([syn(), hs_ack(0.1), rst()]).signature == SignatureId.ACK_RST

    def test_ack_rst_rst(self):
        m = classify([syn(), hs_ack(0.1), rst(1.0), rst(1.1, ack=7)])
        assert m.signature == SignatureId.ACK_RST_RST

    def test_ack_rstack(self):
        assert classify([syn(), hs_ack(0.1), rstack()]).signature == SignatureId.ACK_RSTACK

    def test_ack_rstack_rstack(self):
        m = classify([syn(), hs_ack(0.1), rstack(1.0), rstack(1.1)])
        assert m.signature == SignatureId.ACK_RSTACK_RSTACK

    def test_mixed_teardown_is_other(self):
        m = classify([syn(), hs_ack(0.1), rst(1.0), rstack(1.1)])
        assert m.signature == SignatureId.OTHER


class TestPostPsh:
    def base(self):
        return [syn(), hs_ack(0.1), data(0.2)]

    def test_psh_none(self):
        m = classify(self.base())
        assert m.signature == SignatureId.PSH_NONE
        assert m.stage == Stage.POST_PSH

    def test_psh_rst(self):
        assert classify(self.base() + [rst()]).signature == SignatureId.PSH_RST

    def test_psh_rstack(self):
        assert classify(self.base() + [rstack()]).signature == SignatureId.PSH_RSTACK

    def test_psh_rst_rstack(self):
        m = classify(self.base() + [rst(1.0), rstack(1.1)])
        assert m.signature == SignatureId.PSH_RST_RSTACK

    def test_psh_rstack_rstack(self):
        m = classify(self.base() + [rstack(1.0), rstack(1.1)])
        assert m.signature == SignatureId.PSH_RSTACK_RSTACK

    def test_psh_rst_eq_rst(self):
        m = classify(self.base() + [rst(1.0, ack=5000), rst(1.1, ack=5000)])
        assert m.signature == SignatureId.PSH_RST_EQ_RST

    def test_psh_rst_eq_rst_all_zero_acks(self):
        m = classify(self.base() + [rst(1.0, ack=0), rst(1.1, ack=0)])
        assert m.signature == SignatureId.PSH_RST_EQ_RST

    def test_psh_rst_neq_rst(self):
        m = classify(self.base() + [rst(1.0, ack=5000), rst(1.1, ack=6460)])
        assert m.signature == SignatureId.PSH_RST_NEQ_RST

    def test_psh_rst_rst0(self):
        m = classify(self.base() + [rst(1.0, ack=5000), rst(1.1, ack=0)])
        assert m.signature == SignatureId.PSH_RST_RST0

    def test_retransmitted_data_stays_post_psh(self):
        # Same sequence number twice = one logical data packet.
        packets = [syn(), hs_ack(0.1), data(0.2, seq=101), data(1.2, seq=101)]
        m = classify(packets)
        assert m.n_data_segments == 1
        assert m.signature == SignatureId.PSH_NONE


class TestPostData:
    def base(self):
        return [syn(), hs_ack(0.1), data(0.2, seq=101),
                data(0.3, seq=101 + 12, payload=b"secondseg")]

    def test_data_rst(self):
        m = classify(self.base() + [rst()])
        assert m.signature == SignatureId.DATA_RST
        assert m.stage == Stage.POST_DATA

    def test_data_rstack(self):
        assert classify(self.base() + [rstack()]).signature == SignatureId.DATA_RSTACK

    def test_multiple_rsts_still_match(self):
        m = classify(self.base() + [rst(1.0), rst(1.1, ack=9)])
        assert m.signature == SignatureId.DATA_RST

    def test_mixed_is_other(self):
        m = classify(self.base() + [rst(1.0), rstack(1.1)])
        assert m.signature == SignatureId.OTHER

    def test_silence_after_data_is_other(self):
        # Timeout after multiple data packets has no Table 1 signature.
        m = classify(self.base())
        assert m.signature == SignatureId.OTHER
        assert m.possibly_tampered


class TestGracefulAndEdgeCases:
    def test_graceful_fin_not_tampering(self):
        m = classify([syn(), hs_ack(0.1), data(0.2), fin(0.4)])
        assert m.signature == SignatureId.NOT_TAMPERING
        assert not m.possibly_tampered
        assert m.saw_fin

    def test_rst_after_fin_matches_post_data(self):
        # A FIN is itself a packet after the first data segment, so the
        # connection lands in the post-data group, whose signatures do
        # not exclude FIN-bearing connections (commercial-device RSTs
        # and abortive client closes are indistinguishable there).
        m = classify([syn(), hs_ack(0.1), data(0.2), fin(0.4), rst(0.5)])
        assert m.signature == SignatureId.DATA_RST
        assert m.stage == Stage.POST_DATA
        assert m.possibly_tampered

    def test_rst_after_fin_multiple_data_matches_post_data(self):
        packets = [syn(), hs_ack(0.1), data(0.2, seq=101),
                   data(0.3, seq=113, payload=b"second-part!"),
                   fin(0.5), rst(0.6)]
        m = classify(packets)
        assert m.signature == SignatureId.DATA_RST

    def test_ack_after_data_pushes_to_post_data(self):
        # A client ACK (of the server's response) between the data packet
        # and the RST means the tear-down was NOT immediate: post-data.
        resp_ack = pkt(TCPFlags.ACK, ts=0.3, seq=115, ack=2500)
        m = classify([syn(), hs_ack(0.1), data(0.2), resp_ack, rst(0.6)])
        assert m.stage == Stage.POST_DATA
        assert m.signature == SignatureId.DATA_RST

    def test_idle_keepalive_is_uncovered_post_data(self):
        # Response ACKed, then silence without FIN: possibly tampered,
        # post-data, but matching no signature (the paper's 30.8%
        # uncovered residue in that stage).
        resp_ack = pkt(TCPFlags.ACK, ts=0.3, seq=115, ack=2500)
        m = classify([syn(), hs_ack(0.1), data(0.2), resp_ack])
        assert m.possibly_tampered
        assert m.stage == Stage.POST_DATA
        assert m.signature == SignatureId.OTHER

    def test_fast_full_capture_without_fin_not_tampered(self):
        # Ten packets inside one second, no FIN, no RST: the buffer
        # truncated a healthy long connection.
        packets = [syn(0.0), hs_ack(0.0)]
        seq = 101
        for i in range(8):
            packets.append(data(0.0, seq=seq, payload=b"x" * 10))
            seq += 10
        m = classify(packets)
        assert m.signature == SignatureId.NOT_TAMPERING
        assert not m.possibly_tampered

    def test_internal_gap_counts_as_silence(self):
        packets = [syn(0.0), hs_ack(0.1), data(0.2), data(8.0, seq=400, payload=b"late")]
        m = classify(packets)
        assert m.possibly_tampered
        assert m.silence_gap >= INACTIVITY_SECONDS

    def test_two_bare_acks_is_other(self):
        # The paper's example of a connection that does not fall cleanly
        # into a stage: a SYN and two ACKs.
        packets = [syn(), hs_ack(0.1), pkt(TCPFlags.ACK, ts=0.2, seq=101, ack=1400)]
        m = classify(packets)
        assert m.signature == SignatureId.OTHER

    def test_empty_sample(self):
        m = match_signature([], window_end=10.0)
        assert m.signature == SignatureId.OTHER
        assert not m.possibly_tampered

    def test_inactivity_threshold_respected(self):
        packets = [syn(0.0)]
        m = match_signature(packets, window_end=2.0)  # only 2s of silence
        assert m.signature == SignatureId.NOT_TAMPERING
        m = match_signature(packets, window_end=4.0)
        assert m.signature == SignatureId.SYN_NONE

    def test_custom_inactivity_seconds(self):
        packets = [syn(0.0)]
        m = match_signature(packets, window_end=2.0, inactivity_seconds=1.0)
        assert m.signature == SignatureId.SYN_NONE

    def test_truncated_capture_trailing_gap_ignored(self):
        # Exactly max_packets packets: the trailing gap says nothing.
        packets = [syn(0.0), hs_ack(0.0)] + [
            data(0.1, seq=101 + 10 * i, payload=b"y" * 10) for i in range(8)
        ]
        assert len(packets) == 10
        m = match_signature(packets, window_end=100.0, max_packets=10)
        assert m.signature == SignatureId.NOT_TAMPERING


class TestReorderingRobustness:
    def test_shuffled_input_same_result(self):
        packets = [syn(), hs_ack(0.1), data(0.2), rst(1.0), rstack(1.1)]
        expected = classify(packets).signature
        shuffled = [packets[i] for i in (4, 0, 3, 1, 2)]
        # Flatten timestamps into one bucket to force reconstruction.
        flat = [p.clone(ts=0.0) for p in shuffled]
        assert classify(flat, window_end=10.0).signature == expected

    def test_reorder_disabled_trusts_input(self):
        packets = [rst(0.0), syn(0.0)]
        ordered = match_signature(packets, window_end=10.0, reorder=True)
        raw = match_signature(packets, window_end=10.0, reorder=False)
        assert ordered.signature == SignatureId.SYN_RST
        assert raw.signature == ordered.signature  # counting is order-free here
