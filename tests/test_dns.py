"""Tests for the DNS substrate: wire format, resolution, censorship."""

import pytest

from repro.dns.message import (
    DnsHeader,
    DnsMessage,
    DnsQuestion,
    DnsRecord,
    QType,
    RCode,
    decode_name,
    encode_name,
)
from repro.dns.pipeline import filter_specs_through_dns
from repro.dns.resolver import (
    AuthoritativeServer,
    DnsCensor,
    DnsTamperMode,
    ResolutionOutcome,
    StubResolver,
)
from repro.errors import PacketDecodeError
from repro.middlebox.policy import BlockPolicy, DomainRule, SubstringRule


class TestNames:
    def test_roundtrip(self):
        for name in ("example.com", "a.b.c.d.example.co.uk", "x.io"):
            encoded = encode_name(name)
            decoded, offset = decode_name(encoded, 0)
            assert decoded == name
            assert offset == len(encoded)

    def test_root(self):
        assert encode_name("") == b"\x00"
        assert decode_name(b"\x00", 0) == ("", 1)

    def test_label_too_long(self):
        with pytest.raises(ValueError):
            encode_name("a" * 64 + ".com")

    def test_compression_pointer(self):
        # "example.com" at offset 0; a pointer to it at the end.
        base = encode_name("example.com")
        data = base + b"\x03www" + b"\xc0\x00"
        name, offset = decode_name(data, len(base))
        assert name == "www.example.com"
        assert offset == len(data)

    def test_pointer_loop_rejected(self):
        with pytest.raises(PacketDecodeError):
            decode_name(b"\xc0\x00", 0)

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            decode_name(b"\x05ab", 0)


class TestMessageRoundtrip:
    def test_query(self):
        msg = DnsMessage.query("blocked.example", txid=77)
        back = DnsMessage.decode(msg.encode())
        assert back.header.txid == 77
        assert not back.header.is_response
        assert back.question_name == "blocked.example"
        assert back.questions[0].qtype == QType.A

    def test_response_with_a_record(self):
        query = DnsMessage.query("x.example", txid=5)
        response = query.respond([DnsRecord("x.example", QType.A, 300, "198.41.0.9")])
        back = DnsMessage.decode(response.encode())
        assert back.header.is_response
        assert back.header.rcode == RCode.NOERROR
        assert back.addresses() == ["198.41.0.9"]
        assert back.header.txid == 5

    def test_aaaa_and_cname(self):
        query = DnsMessage.query("x.example", qtype=QType.AAAA, txid=1)
        response = query.respond([
            DnsRecord("x.example", QType.CNAME, 60, "edge.cdn.example"),
            DnsRecord("edge.cdn.example", QType.AAAA, 60, "2606:4700::9"),
        ])
        back = DnsMessage.decode(response.encode())
        assert back.answers[0].rtype == QType.CNAME
        assert back.answers[0].data == "edge.cdn.example"
        assert back.addresses() == ["2606:4700::9"]

    def test_nxdomain(self):
        query = DnsMessage.query("missing.example", txid=2)
        back = DnsMessage.decode(query.respond([], rcode=RCode.NXDOMAIN).encode())
        assert back.header.rcode == RCode.NXDOMAIN
        assert back.addresses() == []

    def test_header_flags(self):
        header = DnsHeader(txid=9, is_response=True, recursion_desired=True,
                           recursion_available=True, authoritative=True)
        back = DnsHeader.decode(header.encode())
        assert back.is_response and back.recursion_desired
        assert back.recursion_available and back.authoritative

    def test_truncated_header(self):
        with pytest.raises(PacketDecodeError):
            DnsMessage.decode(b"\x00\x01")


@pytest.fixture(scope="module")
def world():
    from repro.workloads.profiles import CountryProfile, DeploymentSpec
    from repro.workloads.world import World

    profiles = [
        CountryProfile(
            code="AA", name="Censorland", weight=1.0, n_asns=2, p_blocked=0.5,
            blocked_categories=(("News", 0.5),),
            deployments=(DeploymentSpec(vendor="gfw", blocked_share=1.0),),
        ),
        CountryProfile(code="BB", name="Freeland", weight=1.0, n_asns=1),
    ]
    return World(profiles=profiles, seed=5, n_domains=300, clients_per_asn=6)


class TestAuthoritative:
    def test_hosted_domain_resolves_to_edge(self, world):
        server = AuthoritativeServer.for_world(world)
        name = world.universe.names[0]
        result = StubResolver(server).resolve(name)
        assert result.outcome == ResolutionOutcome.OK
        assert result.addresses == (world.edge_ip_for(name, 4),)
        assert not result.injected

    def test_www_prefix_resolves(self, world):
        server = AuthoritativeServer.for_world(world)
        name = world.universe.names[0]
        result = StubResolver(server).resolve(f"www.{name}")
        assert result.outcome == ResolutionOutcome.OK

    def test_aaaa(self, world):
        server = AuthoritativeServer.for_world(world)
        name = world.universe.names[0]
        result = StubResolver(server).resolve(name, qtype=QType.AAAA)
        assert result.addresses == (world.edge_ip_for(name, 6),)

    def test_unhosted_nxdomain(self, world):
        server = AuthoritativeServer.for_world(world)
        result = StubResolver(server).resolve("not-hosted.invalid")
        assert result.outcome == ResolutionOutcome.NXDOMAIN


class TestDnsCensor:
    def make_resolver(self, world, mode):
        server = AuthoritativeServer.for_world(world)
        censor = DnsCensor(BlockPolicy([DomainRule(["blocked.example"])]), mode=mode)
        return StubResolver(server, censors=[censor]), censor

    def test_nxdomain_injection(self, world):
        resolver, censor = self.make_resolver(world, DnsTamperMode.NXDOMAIN)
        result = resolver.resolve("blocked.example")
        assert result.outcome == ResolutionOutcome.NXDOMAIN
        assert result.injected
        assert censor.triggers == 1

    def test_forged_answer(self, world):
        resolver, _ = self.make_resolver(world, DnsTamperMode.FORGE)
        result = resolver.resolve("blocked.example")
        assert result.outcome == ResolutionOutcome.FORGED
        assert result.addresses
        from repro.cdn.geo import GeoDatabase

        assert not GeoDatabase.is_edge_address(result.addresses[0])

    def test_drop(self, world):
        resolver, _ = self.make_resolver(world, DnsTamperMode.DROP)
        result = resolver.resolve("blocked.example")
        assert result.outcome == ResolutionOutcome.TIMEOUT

    def test_subdomains_blocked(self, world):
        resolver, _ = self.make_resolver(world, DnsTamperMode.NXDOMAIN)
        assert resolver.resolve("www.blocked.example").injected

    def test_substring_overblocking(self, world):
        server = AuthoritativeServer.for_world(world)
        censor = DnsCensor(BlockPolicy([SubstringRule(["wn.com"])]), mode=DnsTamperMode.FORGE)
        resolver = StubResolver(server, censors=[censor])
        assert resolver.resolve("dawn.common.example").injected

    def test_clean_domain_untouched(self, world):
        resolver, censor = self.make_resolver(world, DnsTamperMode.FORGE)
        name = world.universe.names[0]
        result = resolver.resolve(name)
        assert result.outcome == ResolutionOutcome.OK
        assert censor.triggers == 0


class TestPipelineFilter:
    def test_partition(self, world):
        from repro.workloads.traffic import TrafficGenerator

        generator = TrafficGenerator(world, seed=5)
        specs = generator.specs(300, start_ts=0.0, duration=86400.0)
        blocked_names = sorted(world.blocklist("AA"))
        censor = DnsCensor(BlockPolicy([DomainRule(blocked_names)]), mode=DnsTamperMode.NXDOMAIN)
        result = filter_specs_through_dns(world, specs, {"AA": [censor]})

        assert len(result.surviving) + result.blocked_count == len(specs)
        assert result.blocked_count > 0
        for spec, res in result.dns_blocked:
            assert spec.country == "AA"
            assert world.is_blocked("AA", spec.domain)
            assert not res.outcome.reaches_cdn
        # Free-country traffic never touches the censor.
        assert all(spec.country == "BB" or spec.domain not in result.blocked_domains()
                   for spec in result.surviving if spec.country == "BB")

    def test_no_censors_pass_through(self, world):
        from repro.workloads.traffic import TrafficGenerator

        specs = TrafficGenerator(world, seed=6).specs(40, 0.0, 3600.0)
        result = filter_specs_through_dns(world, specs, {})
        assert result.blocked_count == 0
        assert len(result.surviving) == 40
