"""Synthetic geolocation: IP prefixes per (country, ASN), IPv4 and IPv6.

The real pipeline geolocates client addresses with a commercial database.
Here the database is *constructed*: every ASN in the world model receives
one IPv4 /16 and one IPv6 /32, allocated deterministically in
registration order.  Lookups are O(1) dictionary probes on the prefix
bits, and the generator side can mint random client addresses inside any
ASN's space -- the two operations the pipeline needs.

CDN anycast addresses live in dedicated, recognisable prefixes
(``198.41.0.0/16`` and ``2606:4700::/32``) so tests can assert that edge
addresses never geolocate to a client network.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro._util import int_to_ipv4, int_to_ipv6, ipv4_to_int, ipv6_to_int
from repro.errors import GeoError

__all__ = ["GeoRecord", "GeoDatabase", "CDN_V4_PREFIX", "CDN_V6_PREFIX"]

#: Anycast space used by simulated edge servers.
CDN_V4_PREFIX = "198.41.0.0/16"
CDN_V6_PREFIX = "2606:4700::/32"

_V4_BASE = ipv4_to_int("11.0.0.0")
_V6_BASE = ipv6_to_int("2a00::")
_CDN_V4_BASE = ipv4_to_int("198.41.0.0")
_CDN_V6_BASE = ipv6_to_int("2606:4700::")


@dataclasses.dataclass(frozen=True)
class GeoRecord:
    """Attribution of one client prefix."""

    country: str
    asn: int


class GeoDatabase:
    """Prefix → (country, ASN) attribution plus address minting.

    Register ASNs with :meth:`register_asn` (idempotent per ASN), then
    use :meth:`lookup` for attribution and :meth:`client_address` to draw
    addresses.  Registration order fixes the address layout, so building
    the same world twice yields identical addressing.
    """

    def __init__(self) -> None:
        self._v4_blocks: Dict[int, GeoRecord] = {}  # /16 index -> record
        self._v6_blocks: Dict[int, GeoRecord] = {}  # /32 index -> record
        self._asn_v4_block: Dict[int, int] = {}
        self._asn_v6_block: Dict[int, int] = {}
        self._asn_record: Dict[int, GeoRecord] = {}
        self._next_block = 0

    # ------------------------------------------------------------------
    def register_asn(self, country: str, asn: int) -> None:
        """Allocate address space for ``asn`` in ``country``.

        Re-registering the same ASN with the same country is a no-op;
        with a different country it raises :class:`GeoError` (an ASN
        belongs to one country in this model).
        """
        existing = self._asn_record.get(asn)
        record = GeoRecord(country=country, asn=asn)
        if existing is not None:
            if existing.country != country:
                raise GeoError(f"ASN {asn} already registered to {existing.country}")
            return
        block = self._next_block
        self._next_block += 1
        v4_index = (_V4_BASE >> 16) + block
        v6_index = (_V6_BASE >> 96) + block
        if v4_index >= (_CDN_V4_BASE >> 16):
            raise GeoError("IPv4 allocation space exhausted (too many ASNs)")
        self._v4_blocks[v4_index] = record
        self._v6_blocks[v6_index] = record
        self._asn_v4_block[asn] = v4_index
        self._asn_v6_block[asn] = v6_index
        self._asn_record[asn] = record

    @property
    def asns(self) -> List[int]:
        """All registered ASNs in registration order."""
        return list(self._asn_record)

    def asns_in(self, country: str) -> List[int]:
        """ASNs registered to ``country``."""
        return [asn for asn, rec in self._asn_record.items() if rec.country == country]

    # ------------------------------------------------------------------
    def lookup(self, address: str) -> GeoRecord:
        """Attribute a client address; raises :class:`GeoError` if unknown."""
        if ":" in address:
            index = ipv6_to_int(address) >> 96
            record = self._v6_blocks.get(index)
        else:
            index = ipv4_to_int(address) >> 16
            record = self._v4_blocks.get(index)
        if record is None:
            raise GeoError(f"address {address} not in any registered prefix")
        return record

    def lookup_or_none(self, address: str) -> Optional[GeoRecord]:
        """Like :meth:`lookup` but returns None for unknown space."""
        try:
            return self.lookup(address)
        except (GeoError, ValueError):
            return None

    def country_of(self, address: str) -> Optional[str]:
        """Country code for ``address`` or None."""
        record = self.lookup_or_none(address)
        return record.country if record else None

    # ------------------------------------------------------------------
    def client_address(self, rng: random.Random, asn: int, version: int = 4) -> str:
        """Mint a random client address inside ``asn``'s space."""
        if version == 4:
            block = self._asn_v4_block.get(asn)
            if block is None:
                raise GeoError(f"ASN {asn} not registered")
            host = rng.randrange(1, 0xFFFF)  # avoid .0.0 network address
            return int_to_ipv4((block << 16) | host)
        if version == 6:
            block = self._asn_v6_block.get(asn)
            if block is None:
                raise GeoError(f"ASN {asn} not registered")
            host = rng.getrandbits(64) | 1
            return int_to_ipv6((block << 96) | host)
        raise ValueError(f"bad IP version: {version}")

    @staticmethod
    def edge_address(rng: random.Random, version: int = 4) -> str:
        """Mint a CDN anycast edge address."""
        if version == 4:
            return int_to_ipv4(_CDN_V4_BASE | rng.randrange(1, 0xFFFF))
        if version == 6:
            return int_to_ipv6(_CDN_V6_BASE | (rng.getrandbits(32) | 1))
        raise ValueError(f"bad IP version: {version}")

    @staticmethod
    def is_edge_address(address: str) -> bool:
        """True if ``address`` lies in the CDN anycast space."""
        if ":" in address:
            return (ipv6_to_int(address) >> 96) == (_CDN_V6_BASE >> 96)
        return (ipv4_to_int(address) >> 16) == (_CDN_V4_BASE >> 16)
