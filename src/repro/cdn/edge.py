"""Edge server construction.

One :class:`~repro.netstack.tcp.TcpServer` is built per simulated
connection (the CDN terminates each TCP connection independently).  The
edge personality is fixed and well-behaved: standard options, 255-hop
initial TTL budget unused (64), counter IP-IDs, and a small HTTP/TLS-ish
response followed by a graceful FIN -- the baseline against which
client-side anomalies stand out.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from repro._util import derive_rng
from repro.netstack.tcp import HostConfig, IpIdMode, TcpServer

__all__ = ["EdgeConfig", "make_edge_server"]


@dataclasses.dataclass(frozen=True)
class EdgeConfig:
    """Tunables for simulated edge servers."""

    port: int = 443
    response_size: int = 2200
    mss: int = 1460
    initial_ttl: int = 64

    def response_payload(self) -> bytes:
        """A deterministic response body of ``response_size`` bytes."""
        head = (
            b"HTTP/1.1 200 OK\r\n"
            b"Server: repro-edge\r\n"
            b"Content-Type: text/html\r\n"
            b"Content-Length: %d\r\n\r\n" % max(0, self.response_size)
        )
        body = bytes((i * 31 + 7) & 0xFF for i in range(max(0, self.response_size)))
        return head + body


def make_edge_server(
    ip: str,
    config: Optional[EdgeConfig] = None,
    seed: int = 0,
) -> TcpServer:
    """Build a fresh edge server endpoint bound to ``ip``.

    The ISN and IP-ID start are derived from ``seed`` so that repeated
    builds are deterministic but distinct connections do not share
    sequence space.
    """
    config = config or EdgeConfig()
    rng = derive_rng(seed, f"edge:{ip}:{config.port}")
    host = HostConfig(
        ip=ip,
        port=config.port,
        initial_ttl=config.initial_ttl,
        ip_id_mode=IpIdMode.COUNTER,
        ip_id_start=rng.randrange(0, 0x10000),
        isn=rng.randrange(0, 1 << 32),
        mss=config.mss,
    )
    return TcpServer(config=host, response_payload=config.response_payload())
