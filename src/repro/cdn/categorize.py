"""Domain categorization service.

The paper buckets tampered domains into subject categories using the
CDN's third-party vendor feed; Table 2 is built from those buckets.  Here
the category assignments come from the synthetic domain universe
(:mod:`repro.workloads.domains`), and this module provides the
pipeline-facing service object: category lookup with the paper's caveat
that a domain may belong to multiple categories.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

__all__ = ["CategoryDB", "STANDARD_CATEGORIES"]

#: The categories appearing in the paper's Table 2, plus common fillers.
STANDARD_CATEGORIES: Tuple[str, ...] = (
    "Adult Themes",
    "Advertisements",
    "Business",
    "Chat",
    "Content Servers",
    "Education",
    "Gaming",
    "Hobbies & Interests",
    "Login Screens",
    "News",
    "Shopping",
    "Social Networks",
    "Streaming",
    "Technology",
)


class CategoryDB:
    """Domain → categories lookup with reverse (category → domains) views."""

    def __init__(self, assignments: Optional[Mapping[str, Iterable[str]]] = None) -> None:
        self._by_domain: Dict[str, FrozenSet[str]] = {}
        self._by_category: Dict[str, Set[str]] = {}
        if assignments:
            for domain, cats in assignments.items():
                self.assign(domain, cats)

    def assign(self, domain: str, categories: Iterable[str]) -> None:
        """Record (or extend) the categories of ``domain``."""
        domain = domain.lower().strip(".")
        cats = frozenset(categories) | self._by_domain.get(domain, frozenset())
        self._by_domain[domain] = cats
        for cat in cats:
            self._by_category.setdefault(cat, set()).add(domain)

    def categories_of(self, domain: Optional[str]) -> FrozenSet[str]:
        """Categories of ``domain`` (exact match, then parent-domain walk)."""
        if not domain:
            return frozenset()
        name = domain.lower().strip(".")
        while name:
            cats = self._by_domain.get(name)
            if cats is not None:
                return cats
            _, _, name = name.partition(".")
        return frozenset()

    def domains_in(self, category: str) -> FrozenSet[str]:
        """All domains assigned to ``category``."""
        return frozenset(self._by_category.get(category, ()))

    @property
    def categories(self) -> List[str]:
        """All known categories, sorted."""
        return sorted(self._by_category)

    @property
    def domains(self) -> List[str]:
        """All known domains, sorted."""
        return sorted(self._by_domain)

    def __len__(self) -> int:
        return len(self._by_domain)

    def __contains__(self, domain: str) -> bool:
        return domain.lower().strip(".") in self._by_domain

    def as_lookup(self):
        """Return a plain callable suitable for middlebox ``categorizer``."""
        return self.categories_of
