"""Connection sampling and capture, with the paper's constraints.

Two concerns live here:

* **Which** connections to record: uniform 1-in-N sampling
  (:class:`ConnectionSampler`), applied after DDoS filtering in the real
  system.  Sampling is hash-based so it is deterministic per connection
  id yet uniform across ids.

* **What** to record per connection: :func:`capture_sample` reduces a
  full simulation result to the paper's observed view -- the first ten
  *inbound* packets, timestamps floored to one-second granularity, and
  (to faithfully model the logging pipeline) a deterministic shuffle of
  packets that share a timestamp bucket, since order within a second is
  not preserved.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import List, Optional

from repro._util import derive_rng, stable_hash
from repro.cdn.collector import ConnectionSample
from repro.errors import ConfigError
from repro.netstack.packet import Packet, PacketDirection
from repro.network.sim import SimResult

__all__ = ["ConnectionSampler", "CaptureConfig", "capture_sample"]


class ConnectionSampler:
    """Uniform 1-in-``rate`` connection sampling.

    ``decide(conn_id)`` is stable: the same connection id always gets the
    same verdict, independent of arrival order -- mirroring a hash-based
    production sampler and keeping runs reproducible.
    """

    def __init__(self, rate: int = 10_000, seed: int = 0) -> None:
        if rate < 1:
            raise ConfigError("sampling rate must be >= 1")
        self.rate = rate
        self._seed = seed
        self.observed = 0
        self.sampled = 0

    def decide(self, conn_id: int) -> bool:
        """Return True if connection ``conn_id`` should be recorded."""
        self.observed += 1
        keep = stable_hash(self._seed, "sampler", conn_id) % self.rate == 0
        if keep:
            self.sampled += 1
        return keep

    @property
    def effective_rate(self) -> float:
        """Fraction of observed connections actually sampled so far."""
        if self.observed == 0:
            return 0.0
        return self.sampled / self.observed


@dataclasses.dataclass(frozen=True)
class CaptureConfig:
    """Knobs of the logging pipeline.

    ``max_packets``
        The paper records the first 10 inbound packets.
    ``timestamp_granularity``
        Seconds; timestamps are floored to multiples of this (1 s in the
        paper).
    ``shuffle_within_bucket``
        Whether packets sharing a timestamp bucket are stored in
        arbitrary order (True models the real pipeline; ablations turn
        it off).
    ``watch_seconds``
        How long after the last inbound packet the window stays open --
        this bounds the inactivity the classifier can observe.
    """

    max_packets: int = 10
    timestamp_granularity: float = 1.0
    shuffle_within_bucket: bool = True
    watch_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.max_packets < 1:
            raise ConfigError("max_packets must be >= 1")
        if self.timestamp_granularity <= 0:
            raise ConfigError("timestamp_granularity must be positive")
        if self.watch_seconds < 0:
            raise ConfigError("watch_seconds must be non-negative")


def capture_sample(
    result: SimResult,
    conn_id: int,
    config: Optional[CaptureConfig] = None,
    seed: int = 0,
    truth_tampered: Optional[bool] = None,
    truth_vendor: Optional[str] = None,
    truth_domain: Optional[str] = None,
    truth_client_kind: str = "browser",
) -> Optional[ConnectionSample]:
    """Reduce a simulation result to the pipeline's observed record.

    Returns None when the server received no packets at all (nothing to
    log -- e.g. the SYN itself was dropped upstream, which the real system
    cannot observe either).
    """
    config = config or CaptureConfig()
    inbound = [p for p in result.server_inbound if p.direction == PacketDirection.TO_SERVER]
    if not inbound:
        return None

    kept = inbound[: config.max_packets]
    gran = config.timestamp_granularity
    floored = [p.clone(ts=math.floor(p.ts / gran) * gran) for p in kept]

    if config.shuffle_within_bucket:
        rng = derive_rng(seed, f"capture:{conn_id}")
        buckets: dict = {}
        for p in floored:
            buckets.setdefault(p.ts, []).append(p)
        shuffled: List[Packet] = []
        for ts in sorted(buckets):
            group = buckets[ts]
            rng.shuffle(group)
            shuffled.extend(group)
        floored = shuffled

    first = inbound[0]
    client_ip, client_port = first.src, first.sport
    server_ip, server_port = first.dst, first.dport
    # The window close must be measured on the same clock as the stored
    # packets: computing it from the un-floored timestamps inflated the
    # trailing silence gap by up to one granularity unit, flipping
    # possibly_tampered for connections near the 3-second threshold.
    window_end = max(p.ts for p in floored) + config.watch_seconds

    return ConnectionSample(
        conn_id=conn_id,
        packets=floored,
        window_end=window_end,
        client_ip=client_ip,
        client_port=client_port,
        server_ip=server_ip,
        server_port=server_port,
        ip_version=first.ip_version,
        truth_tampered=truth_tampered,
        truth_vendor=truth_vendor,
        truth_domain=truth_domain,
        truth_client_kind=truth_client_kind,
    )
