"""The observing CDN: geolocation, edge servers, sampling, collection.

The paper's measurement position is the *server side* of a global CDN.
This subpackage provides that position: a synthetic geolocation database
mapping client prefixes to (country, ASN) (:mod:`repro.cdn.geo`), a
domain-category service (:mod:`repro.cdn.categorize`), edge-server
construction (:mod:`repro.cdn.edge`), the 1-in-N connection sampler with
the paper's collection constraints -- first 10 inbound packets, 1-second
timestamps, possible reordering -- (:mod:`repro.cdn.sampler`), and sample
records with JSONL/pcap persistence (:mod:`repro.cdn.collector`).
"""

from repro.cdn.categorize import CategoryDB
from repro.cdn.collector import ConnectionSample, read_samples_jsonl, write_samples_jsonl
from repro.cdn.edge import EdgeConfig, make_edge_server
from repro.cdn.geo import GeoDatabase, GeoRecord
from repro.cdn.sampler import CaptureConfig, ConnectionSampler, capture_sample

__all__ = [
    "GeoDatabase",
    "GeoRecord",
    "CategoryDB",
    "EdgeConfig",
    "make_edge_server",
    "CaptureConfig",
    "ConnectionSampler",
    "capture_sample",
    "ConnectionSample",
    "write_samples_jsonl",
    "read_samples_jsonl",
]
