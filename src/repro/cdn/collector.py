"""Connection sample records and their persistence.

A :class:`ConnectionSample` is the unit the analysis pipeline consumes:
the first (up to) ten inbound packets of one sampled connection, with
1-second timestamps, plus connection identifiers.  Ground-truth fields
(was the connection actually tampered? by which device? which domain did
the client request?) ride along for evaluation and are clearly separated
from observed fields; the classifier reads only the observed part.

Samples serialise to JSON-lines (one connection per line, payloads
base64) and to pcap via :func:`repro.netstack.pcap.write_pcap`.
"""

from __future__ import annotations

import base64
import dataclasses
import json
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from repro.netstack.flags import TCPFlags
from repro.netstack.options import TCPOption
from repro.netstack.packet import Packet, PacketDirection

__all__ = ["ConnectionSample", "write_samples_jsonl", "read_samples_jsonl"]


@dataclasses.dataclass
class ConnectionSample:
    """One sampled connection as recorded at the edge.

    Observed fields -- what the real pipeline records:

    ``packets``
        Up to ten inbound packets, timestamps floored to whole seconds,
        possibly out of order within a second (the paper's constraint).
    ``window_end``
        Virtual time when the capture window closed; the gap between the
        last packet and this instant is what the 3-second inactivity rule
        inspects.
    ``client_ip`` / ``server_ip`` / ports / ``ip_version``
        Connection identifiers.

    Ground-truth fields -- evaluation only, never read by the classifier:

    ``truth_tampered`` / ``truth_vendor`` / ``truth_domain`` /
    ``truth_client_kind``.
    """

    conn_id: int
    packets: List[Packet]
    window_end: float
    client_ip: str
    client_port: int
    server_ip: str
    server_port: int
    ip_version: int
    # --- ground truth (evaluation only) ---
    truth_tampered: Optional[bool] = None
    truth_vendor: Optional[str] = None
    truth_domain: Optional[str] = None
    truth_client_kind: str = "browser"

    def __post_init__(self) -> None:
        if any(p.direction != PacketDirection.TO_SERVER for p in self.packets):
            raise ValueError("ConnectionSample must contain inbound packets only")

    @property
    def n_packets(self) -> int:
        return len(self.packets)

    @property
    def last_packet_ts(self) -> Optional[float]:
        """Timestamp of the latest packet (samples may be unordered)."""
        if not self.packets:
            return None
        return max(p.ts for p in self.packets)

    @property
    def is_https(self) -> bool:
        return self.server_port == 443

    def first_payload(self) -> bytes:
        """Concatenated client payload in sequence order (DPI view)."""
        data_packets = sorted(
            (p for p in self.packets if p.has_payload), key=lambda p: p.seq
        )
        return b"".join(p.payload for p in data_packets)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dictionary form."""
        return {
            "conn_id": self.conn_id,
            "window_end": self.window_end,
            "client_ip": self.client_ip,
            "client_port": self.client_port,
            "server_ip": self.server_ip,
            "server_port": self.server_port,
            "ip_version": self.ip_version,
            "truth_tampered": self.truth_tampered,
            "truth_vendor": self.truth_vendor,
            "truth_domain": self.truth_domain,
            "truth_client_kind": self.truth_client_kind,
            "packets": [
                {
                    "ts": p.ts,
                    "src": p.src,
                    "dst": p.dst,
                    "ttl": p.ttl,
                    "ip_id": p.ip_id,
                    "sport": p.sport,
                    "dport": p.dport,
                    "seq": p.seq,
                    "ack": p.ack,
                    "flags": int(p.flags),
                    "window": p.window,
                    "options": [[o.kind, base64.b64encode(o.data).decode()] for o in p.options],
                    "payload": base64.b64encode(p.payload).decode(),
                    "injected": p.injected,
                }
                for p in self.packets
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ConnectionSample":
        """Inverse of :meth:`to_dict`."""
        packets = [
            Packet(
                ts=entry["ts"],
                src=entry["src"],
                dst=entry["dst"],
                ttl=entry["ttl"],
                ip_id=entry["ip_id"],
                sport=entry["sport"],
                dport=entry["dport"],
                seq=entry["seq"],
                ack=entry["ack"],
                flags=TCPFlags(entry["flags"]),
                window=entry.get("window", 0),
                options=tuple(
                    TCPOption(kind, base64.b64decode(b64)) for kind, b64 in entry.get("options", [])
                ),
                payload=base64.b64decode(entry["payload"]),
                direction=PacketDirection.TO_SERVER,
                injected=entry.get("injected", False),
            )
            for entry in data["packets"]
        ]
        return cls(
            conn_id=data["conn_id"],
            packets=packets,
            window_end=data["window_end"],
            client_ip=data["client_ip"],
            client_port=data["client_port"],
            server_ip=data["server_ip"],
            server_port=data["server_port"],
            ip_version=data["ip_version"],
            truth_tampered=data.get("truth_tampered"),
            truth_vendor=data.get("truth_vendor"),
            truth_domain=data.get("truth_domain"),
            truth_client_kind=data.get("truth_client_kind", "browser"),
        )


def write_samples_jsonl(path_or_file: Union[str, IO[str]], samples: Iterable[ConnectionSample]) -> int:
    """Write samples as JSON lines; returns the sample count."""
    owned = isinstance(path_or_file, str)
    fh = open(path_or_file, "w") if owned else path_or_file
    count = 0
    try:
        for sample in samples:
            fh.write(json.dumps(sample.to_dict(), separators=(",", ":")))
            fh.write("\n")
            count += 1
    finally:
        if owned:
            fh.close()
    return count


def read_samples_jsonl(path_or_file: Union[str, IO[str]]) -> List[ConnectionSample]:
    """Read samples back from JSON lines."""
    return list(iter_samples_jsonl(path_or_file))


def iter_samples_jsonl(path_or_file: Union[str, IO[str]]) -> Iterator[ConnectionSample]:
    """Stream samples from a JSON-lines file."""
    owned = isinstance(path_or_file, str)
    fh = open(path_or_file, "r") if owned else path_or_file
    try:
        for line in fh:
            line = line.strip()
            if line:
                yield ConnectionSample.from_dict(json.loads(line))
    finally:
        if owned:
            fh.close()
