"""TCP options: encoding, decoding, and convenience constructors.

Options matter to this reproduction for two reasons:

* Scanner detection (paper §4.2) keys on connections **without TCP
  options** -- ZMap-style SYN probes carry none, while every mainstream OS
  stack sends at least MSS.  :mod:`repro.core.evidence` implements that
  heuristic over these structures.
* Injected packets forged by middleboxes typically carry *no* options,
  which is one more header-level inconsistency with the client's packets.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import Iterable, List, Optional, Tuple

from repro.errors import OptionDecodeError

__all__ = [
    "OptionKind",
    "TCPOption",
    "encode_options",
    "decode_options",
    "mss_option",
    "window_scale_option",
    "sack_permitted_option",
    "timestamp_option",
    "nop_option",
    "DEFAULT_CLIENT_OPTIONS",
]


class OptionKind(enum.IntEnum):
    """Assigned TCP option kind numbers (subset; see IANA registry)."""

    EOL = 0
    NOP = 1
    MSS = 2
    WINDOW_SCALE = 3
    SACK_PERMITTED = 4
    SACK = 5
    TIMESTAMP = 8


@dataclasses.dataclass(frozen=True)
class TCPOption:
    """One TCP option: a kind byte and its raw data bytes.

    ``data`` excludes the kind and length octets.  EOL and NOP carry no
    length octet on the wire and must have empty ``data``.
    """

    kind: int
    data: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.kind <= 255:
            raise ValueError(f"option kind out of range: {self.kind}")
        if self.kind in (OptionKind.EOL, OptionKind.NOP) and self.data:
            raise ValueError("EOL/NOP options cannot carry data")
        if len(self.data) > 38:  # 40-byte option area minus kind+len
            raise ValueError("option data too long for TCP header")

    @property
    def wire_length(self) -> int:
        """Number of bytes this option occupies on the wire."""
        if self.kind in (OptionKind.EOL, OptionKind.NOP):
            return 1
        return 2 + len(self.data)


def mss_option(mss: int = 1460) -> TCPOption:
    """Maximum Segment Size option (kind 2)."""
    if not 0 < mss <= 0xFFFF:
        raise ValueError(f"mss out of range: {mss}")
    return TCPOption(OptionKind.MSS, struct.pack("!H", mss))


def window_scale_option(shift: int = 7) -> TCPOption:
    """Window Scale option (kind 3)."""
    if not 0 <= shift <= 14:
        raise ValueError(f"window scale shift out of range: {shift}")
    return TCPOption(OptionKind.WINDOW_SCALE, struct.pack("!B", shift))


def sack_permitted_option() -> TCPOption:
    """SACK-Permitted option (kind 4)."""
    return TCPOption(OptionKind.SACK_PERMITTED)


def timestamp_option(tsval: int, tsecr: int = 0) -> TCPOption:
    """Timestamps option (kind 8)."""
    return TCPOption(OptionKind.TIMESTAMP, struct.pack("!II", tsval & 0xFFFFFFFF, tsecr & 0xFFFFFFFF))


def nop_option() -> TCPOption:
    """No-Operation padding option (kind 1)."""
    return TCPOption(OptionKind.NOP)


#: The option set a typical OS client stack puts on its SYN.
DEFAULT_CLIENT_OPTIONS: Tuple[TCPOption, ...] = (
    mss_option(1460),
    sack_permitted_option(),
    window_scale_option(7),
)


def encode_options(options: Iterable[TCPOption]) -> bytes:
    """Serialise options and pad to a 4-byte boundary with NOPs+EOL.

    Raises :class:`ValueError` if the encoded area exceeds the 40 bytes
    available in a TCP header.
    """
    out = bytearray()
    for opt in options:
        if opt.kind in (OptionKind.EOL, OptionKind.NOP):
            out.append(opt.kind)
        else:
            out.append(opt.kind)
            out.append(2 + len(opt.data))
            out.extend(opt.data)
    while len(out) % 4:
        out.append(OptionKind.NOP if len(out) % 4 != 3 else OptionKind.EOL)
    if len(out) > 40:
        raise ValueError(f"encoded TCP options exceed 40 bytes: {len(out)}")
    return bytes(out)


def decode_options(data: bytes) -> List[TCPOption]:
    """Parse a TCP option area back into a list of :class:`TCPOption`.

    Padding (NOP) and the terminating EOL are *not* returned, so a
    round-trip through :func:`encode_options` preserves the semantic
    option list rather than the padding layout.
    """
    options: List[TCPOption] = []
    i = 0
    while i < len(data):
        kind = data[i]
        if kind == OptionKind.EOL:
            break
        if kind == OptionKind.NOP:
            i += 1
            continue
        if i + 1 >= len(data):
            raise OptionDecodeError("option truncated: missing length octet")
        length = data[i + 1]
        if length < 2:
            raise OptionDecodeError(f"option length {length} < 2 for kind {kind}")
        if i + length > len(data):
            raise OptionDecodeError("option data runs past end of option area")
        options.append(TCPOption(kind, bytes(data[i + 2 : i + length])))
        i += length
    return options


def find_option(options: Iterable[TCPOption], kind: int) -> Optional[TCPOption]:
    """Return the first option of ``kind`` or None."""
    for opt in options:
        if opt.kind == kind:
            return opt
    return None


def get_mss(options: Iterable[TCPOption]) -> Optional[int]:
    """Extract the MSS value if present."""
    opt = find_option(options, OptionKind.MSS)
    if opt is None or len(opt.data) != 2:
        return None
    return struct.unpack("!H", opt.data)[0]
