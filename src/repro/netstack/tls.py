"""Minimal TLS: ClientHello construction and SNI extraction.

Tampering middleboxes key on the cleartext Server Name Indication in the
TLS ClientHello (paper §2.1).  This module builds byte-accurate
ClientHello records (TLS 1.2-style outer record, as sent by TLS 1.3
clients for middlebox compatibility) and parses them back, which is the
exact capability a DPI box needs and the exact payload our simulated
clients place in their first data segment on port 443.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import List, Optional, Tuple

from repro._util import derive_rng
from repro.errors import TlsParseError

__all__ = [
    "ClientHello",
    "build_client_hello",
    "parse_client_hello",
    "extract_sni",
    "has_encrypted_sni",
    "is_tls_client_hello",
]

_RECORD_HANDSHAKE = 0x16
_HANDSHAKE_CLIENT_HELLO = 0x01
_EXT_SERVER_NAME = 0x0000
_EXT_SUPPORTED_VERSIONS = 0x002B
_EXT_ALPN = 0x0010
_EXT_ECH = 0xFE0D  # encrypted_client_hello (draft codepoint)
_EXT_ESNI = 0xFFCE  # the older encrypted_server_name draft

#: A plausible modern cipher-suite offer (values from the IANA registry).
_DEFAULT_CIPHER_SUITES: Tuple[int, ...] = (
    0x1301,  # TLS_AES_128_GCM_SHA256
    0x1302,  # TLS_AES_256_GCM_SHA384
    0x1303,  # TLS_CHACHA20_POLY1305_SHA256
    0xC02B,  # ECDHE-ECDSA-AES128-GCM-SHA256
    0xC02F,  # ECDHE-RSA-AES128-GCM-SHA256
)


@dataclasses.dataclass(frozen=True)
class ClientHello:
    """Parsed view of a TLS ClientHello."""

    legacy_version: int
    random: bytes
    session_id: bytes
    cipher_suites: Tuple[int, ...]
    sni: Optional[str]
    alpn: Tuple[str, ...] = ()
    #: True when an encrypted-SNI extension (ESNI or ECH) is present --
    #: the very thing China's GFW keyed on to block such handshakes
    #: wholesale (paper footnote 1 and reference [19]).
    encrypted_sni: bool = False


def _extension(ext_type: int, body: bytes) -> bytes:
    return struct.pack("!HH", ext_type, len(body)) + body


def _sni_extension(hostname: str) -> bytes:
    name = hostname.encode("idna") if any(ord(c) > 127 for c in hostname) else hostname.encode("ascii")
    entry = struct.pack("!BH", 0, len(name)) + name  # type 0 = host_name
    server_name_list = struct.pack("!H", len(entry)) + entry
    return _extension(_EXT_SERVER_NAME, server_name_list)


def _alpn_extension(protocols: Tuple[str, ...]) -> bytes:
    body = b"".join(struct.pack("!B", len(p)) + p.encode("ascii") for p in protocols)
    return _extension(_EXT_ALPN, struct.pack("!H", len(body)) + body)


def build_client_hello(
    hostname: Optional[str],
    seed: int = 0,
    alpn: Tuple[str, ...] = ("h2", "http/1.1"),
    cipher_suites: Tuple[int, ...] = _DEFAULT_CIPHER_SUITES,
    ech: bool = False,
    outer_sni: Optional[str] = None,
) -> bytes:
    """Return the wire bytes of a TLS record containing a ClientHello.

    ``hostname=None`` omits the SNI extension (an SNI-less hello, as sent
    by some tooling -- useful for testing DPI behaviour on missing SNI).
    ``seed`` makes the 32-byte random and session id deterministic.

    ``ech=True`` adds an encrypted_client_hello extension whose payload
    hides the real name; the visible SNI becomes ``outer_sni`` (ECH's
    cleartext outer name, typically the provider's shared name) or is
    omitted entirely (old-style ESNI).  Either way a DPI box cannot read
    ``hostname`` -- but it *can* see that encryption is in use, which is
    exactly what China's ESNI blocking keyed on.
    """
    rng = derive_rng(seed, f"client-hello:{hostname}")
    client_random = bytes(rng.getrandbits(8) for _ in range(32))
    session_id = bytes(rng.getrandbits(8) for _ in range(32))

    extensions = bytearray()
    if ech:
        if outer_sni is not None:
            extensions += _sni_extension(outer_sni)
        payload = bytes(rng.getrandbits(8) for _ in range(64))
        extensions += _extension(_EXT_ECH, b"\x00" + payload)
    elif hostname is not None:
        extensions += _sni_extension(hostname)
    if alpn:
        extensions += _alpn_extension(alpn)
    # supported_versions advertising TLS 1.3 + 1.2
    extensions += _extension(_EXT_SUPPORTED_VERSIONS, b"\x04\x03\x04\x03\x03")

    body = bytearray()
    body += struct.pack("!H", 0x0303)  # legacy_version TLS 1.2
    body += client_random
    body += struct.pack("!B", len(session_id)) + session_id
    body += struct.pack("!H", 2 * len(cipher_suites))
    for suite in cipher_suites:
        body += struct.pack("!H", suite)
    body += b"\x01\x00"  # compression methods: null only
    body += struct.pack("!H", len(extensions)) + extensions

    handshake = struct.pack("!B", _HANDSHAKE_CLIENT_HELLO) + len(body).to_bytes(3, "big") + body
    record = struct.pack("!BHH", _RECORD_HANDSHAKE, 0x0301, len(handshake)) + handshake
    return bytes(record)


def is_tls_client_hello(data: bytes) -> bool:
    """Cheap test: does ``data`` begin with a ClientHello record?"""
    return (
        len(data) >= 6
        and data[0] == _RECORD_HANDSHAKE
        and data[1] == 0x03
        and data[5] == _HANDSHAKE_CLIENT_HELLO
    )


class _Cursor:
    """Bounds-checked byte reader for the TLS parser."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise TlsParseError(f"truncated TLS data: wanted {n} bytes at offset {self._pos}")
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("!H", self.take(2))[0]

    def u24(self) -> int:
        return int.from_bytes(self.take(3), "big")

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos


def parse_client_hello(data: bytes) -> ClientHello:
    """Parse a TLS record containing a ClientHello.

    Raises :class:`~repro.errors.TlsParseError` for anything that is not a
    well-formed ClientHello (middleboxes typically just give up and let
    such traffic through, which our DPI model mirrors).
    """
    cur = _Cursor(data)
    record_type = cur.u8()
    if record_type != _RECORD_HANDSHAKE:
        raise TlsParseError(f"not a handshake record (type {record_type})")
    cur.u16()  # record legacy version
    record_len = cur.u16()
    if record_len > cur.remaining:
        raise TlsParseError("record length exceeds data")
    hs_type = cur.u8()
    if hs_type != _HANDSHAKE_CLIENT_HELLO:
        raise TlsParseError(f"not a ClientHello (handshake type {hs_type})")
    cur.u24()  # handshake length
    legacy_version = cur.u16()
    client_random = cur.take(32)
    session_id = cur.take(cur.u8())
    suites_len = cur.u16()
    if suites_len % 2:
        raise TlsParseError("odd cipher-suites length")
    suites = tuple(struct.unpack(f"!{suites_len // 2}H", cur.take(suites_len)))
    cur.take(cur.u8())  # compression methods

    sni: Optional[str] = None
    alpn: List[str] = []
    encrypted_sni = False
    if cur.remaining >= 2:
        ext_total = cur.u16()
        ext_end = min(ext_total, cur.remaining)
        consumed = 0
        while consumed + 4 <= ext_end:
            ext_type = cur.u16()
            ext_len = cur.u16()
            ext_body = cur.take(ext_len)
            consumed += 4 + ext_len
            if ext_type == _EXT_SERVER_NAME and len(ext_body) >= 5:
                inner = _Cursor(ext_body)
                inner.u16()  # server_name_list length
                name_type = inner.u8()
                name_len = inner.u16()
                if name_type == 0:
                    try:
                        sni = inner.take(name_len).decode("ascii")
                    except (TlsParseError, UnicodeDecodeError) as exc:
                        raise TlsParseError("bad SNI host_name") from exc
            elif ext_type in (_EXT_ECH, _EXT_ESNI):
                encrypted_sni = True
            elif ext_type == _EXT_ALPN and len(ext_body) >= 2:
                inner = _Cursor(ext_body)
                list_len = inner.u16()
                read = 0
                while read < list_len and inner.remaining:
                    plen = inner.u8()
                    alpn.append(inner.take(plen).decode("ascii", "replace"))
                    read += 1 + plen

    return ClientHello(
        legacy_version=legacy_version,
        random=client_random,
        session_id=session_id,
        cipher_suites=suites,
        sni=sni,
        alpn=tuple(alpn),
        encrypted_sni=encrypted_sni,
    )


def has_encrypted_sni(data: bytes) -> bool:
    """True if ``data`` is a ClientHello carrying an ESNI/ECH extension.

    Never raises on arbitrary bytes -- the primitive China's wholesale
    ESNI blocking needs.
    """
    if not is_tls_client_hello(data):
        return False
    try:
        return parse_client_hello(data).encrypted_sni
    except TlsParseError:
        return False


def extract_sni(data: bytes) -> Optional[str]:
    """Best-effort SNI extraction: None when absent or unparseable.

    This is the primitive a DPI middlebox runs on the first data packet of
    every port-443 flow; it must never raise on arbitrary bytes.
    """
    if not is_tls_client_hello(data):
        return None
    try:
        return parse_client_hello(data).sni
    except TlsParseError:
        return None
