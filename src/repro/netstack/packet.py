"""The packet model: one IPv4/IPv6 + TCP packet with real wire encoding.

:class:`Packet` is the unit of data flowing through the whole system --
clients emit them, middleboxes observe/drop/forge them, the CDN edge
receives them, and the sampler records them.  The classifier consumes only
fields that a genuine server-side capture would contain.

Two kinds of extra state ride along for *testing and validation only*:

* ``injected`` -- ground-truth marker set by middlebox forgery.  The
  classifier never reads it; tests use it to score precision/recall, and
  the evidence analysis (Figures 2-3) uses it only to label oracle plots.
* ``direction`` -- whether the packet travels client→server or
  server→client.  The CDN sampler keeps inbound packets only, mirroring
  the paper's collection constraint.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import List, Optional, Tuple

from repro._util import int_to_ipv4, int_to_ipv6, ip_version, ipv4_to_int, ipv6_to_int
from repro.errors import PacketDecodeError, PacketEncodeError
from repro.netstack.checksum import internet_checksum, tcp_checksum
from repro.netstack.flags import TCPFlags, flags_to_str
from repro.netstack.options import TCPOption, decode_options, encode_options

__all__ = ["Packet", "PacketDirection"]

_IPV4_MIN_HEADER = 20
_IPV6_HEADER = 40
_TCP_MIN_HEADER = 20


class PacketDirection(enum.Enum):
    """Direction of travel relative to the CDN edge server."""

    TO_SERVER = "to_server"
    TO_CLIENT = "to_client"


@dataclasses.dataclass
class Packet:
    """One TCP/IP packet.

    Addresses are textual; ``ip_version`` is derived automatically when
    left at 0.  ``ip_id`` is meaningful only for IPv4 (the paper's IP-ID
    evidence analysis skips IPv6 connections for exactly this reason).
    """

    ts: float = 0.0
    src: str = "0.0.0.0"
    dst: str = "0.0.0.0"
    ttl: int = 64
    ip_id: int = 0
    ip_version: int = 0
    sport: int = 0
    dport: int = 0
    seq: int = 0
    ack: int = 0
    flags: TCPFlags = TCPFlags.NONE
    window: int = 65535
    options: Tuple[TCPOption, ...] = ()
    payload: bytes = b""
    # --- simulation-only annotations (never read by the classifier) ---
    direction: PacketDirection = PacketDirection.TO_SERVER
    injected: bool = False

    def __post_init__(self) -> None:
        if self.ip_version == 0:
            self.ip_version = ip_version(self.src)
        if self.ip_version not in (4, 6):
            raise ValueError(f"bad ip_version: {self.ip_version}")
        if not 0 <= self.sport <= 0xFFFF or not 0 <= self.dport <= 0xFFFF:
            raise ValueError("TCP port out of range")
        self.seq &= 0xFFFFFFFF
        self.ack &= 0xFFFFFFFF
        self.ip_id &= 0xFFFF
        self.ttl &= 0xFF
        self.flags = TCPFlags(self.flags)
        if not isinstance(self.options, tuple):
            self.options = tuple(self.options)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def has_payload(self) -> bool:
        """True if the segment carries application data."""
        return len(self.payload) > 0

    @property
    def flow(self) -> Tuple[str, int, str, int]:
        """(src, sport, dst, dport) 4-tuple."""
        return (self.src, self.sport, self.dst, self.dport)

    @property
    def conn_key(self) -> Tuple[str, int, str, int]:
        """Direction-independent connection key (sorted endpoint pair)."""
        a = (self.src, self.sport)
        b = (self.dst, self.dport)
        lo, hi = sorted((a, b))
        return (lo[0], lo[1], hi[0], hi[1])

    def describe(self) -> str:
        """Short human-readable one-liner for logs and examples."""
        tag = " [injected]" if self.injected else ""
        return (
            f"{self.ts:10.3f} {self.src}:{self.sport} > {self.dst}:{self.dport} "
            f"{flags_to_str(self.flags)} seq={self.seq} ack={self.ack} "
            f"len={len(self.payload)} ttl={self.ttl} id={self.ip_id}{tag}"
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialise to real IPv4/IPv6 + TCP wire bytes with checksums."""
        option_bytes = encode_options(self.options)
        data_offset_words = (_TCP_MIN_HEADER + len(option_bytes)) // 4
        tcp_header = struct.pack(
            "!HHIIBBHHH",
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            data_offset_words << 4,
            int(self.flags) & 0xFF,
            self.window & 0xFFFF,
            0,  # checksum placeholder
            0,  # urgent pointer
        )
        segment = tcp_header + option_bytes + self.payload
        csum = tcp_checksum(self.src, self.dst, self.ip_version, segment)
        segment = segment[:16] + struct.pack("!H", csum) + segment[18:]

        if self.ip_version == 4:
            total_length = _IPV4_MIN_HEADER + len(segment)
            if total_length > 0xFFFF:
                raise PacketEncodeError("IPv4 packet exceeds 65535 bytes")
            ip_header = struct.pack(
                "!BBHHHBBHII",
                (4 << 4) | 5,  # version + IHL
                0,  # DSCP/ECN
                total_length,
                self.ip_id,
                0,  # flags + fragment offset (DF not modelled)
                self.ttl,
                6,  # protocol TCP
                0,  # header checksum placeholder
                ipv4_to_int(self.src),
                ipv4_to_int(self.dst),
            )
            ip_csum = internet_checksum(ip_header)
            ip_header = ip_header[:10] + struct.pack("!H", ip_csum) + ip_header[12:]
            return ip_header + segment

        # IPv6: fixed header only, next-header TCP, hop limit in self.ttl.
        ip_header = struct.pack(
            "!IHBB",
            6 << 28,  # version, zero traffic class / flow label
            len(segment),
            6,  # next header TCP
            self.ttl,
        ) + ipv6_to_int(self.src).to_bytes(16, "big") + ipv6_to_int(self.dst).to_bytes(16, "big")
        return ip_header + segment

    @classmethod
    def decode(cls, data: bytes, ts: float = 0.0, strict: bool = False) -> "Packet":
        """Parse wire bytes produced by :meth:`encode` (or a real capture).

        With ``strict=True`` a bad TCP checksum raises
        :class:`~repro.errors.ChecksumError` (via tcp verification); by
        default checksums are ignored on decode, like most passive taps.
        """
        if len(data) < 1:
            raise PacketDecodeError("empty packet")
        version = data[0] >> 4
        if version == 4:
            if len(data) < _IPV4_MIN_HEADER:
                raise PacketDecodeError("short IPv4 header")
            ihl = (data[0] & 0x0F) * 4
            if ihl < _IPV4_MIN_HEADER or len(data) < ihl:
                raise PacketDecodeError(f"bad IPv4 IHL: {ihl}")
            total_length, ip_id = struct.unpack("!HH", data[2:6])
            ttl, proto = data[8], data[9]
            if proto != 6:
                raise PacketDecodeError(f"not TCP (protocol {proto})")
            src = int_to_ipv4(struct.unpack("!I", data[12:16])[0])
            dst = int_to_ipv4(struct.unpack("!I", data[16:20])[0])
            if total_length > len(data):
                raise PacketDecodeError("IPv4 total length exceeds capture")
            segment = data[ihl:total_length]
        elif version == 6:
            if len(data) < _IPV6_HEADER:
                raise PacketDecodeError("short IPv6 header")
            payload_length = struct.unpack("!H", data[4:6])[0]
            next_header, hop_limit = data[6], data[7]
            if next_header != 6:
                raise PacketDecodeError(f"not TCP (next header {next_header})")
            src = int_to_ipv6(int.from_bytes(data[8:24], "big"))
            dst = int_to_ipv6(int.from_bytes(data[24:40], "big"))
            ttl, ip_id = hop_limit, 0
            if _IPV6_HEADER + payload_length > len(data):
                raise PacketDecodeError("IPv6 payload length exceeds capture")
            segment = data[_IPV6_HEADER : _IPV6_HEADER + payload_length]
        else:
            raise PacketDecodeError(f"unknown IP version nibble: {version}")

        if len(segment) < _TCP_MIN_HEADER:
            raise PacketDecodeError("short TCP header")
        sport, dport, seq, ack, off_flags, flag_bits, window, _csum, _urg = struct.unpack(
            "!HHIIBBHHH", segment[:_TCP_MIN_HEADER]
        )
        data_offset = (off_flags >> 4) * 4
        if data_offset < _TCP_MIN_HEADER or data_offset > len(segment):
            raise PacketDecodeError(f"bad TCP data offset: {data_offset}")
        options = tuple(decode_options(segment[_TCP_MIN_HEADER:data_offset]))
        payload = segment[data_offset:]

        if strict:
            from repro.errors import ChecksumError
            from repro.netstack.checksum import verify_tcp_checksum

            if not verify_tcp_checksum(src, dst, version, segment):
                raise ChecksumError("TCP checksum verification failed")

        return cls(
            ts=ts,
            src=src,
            dst=dst,
            ttl=ttl,
            ip_id=ip_id,
            ip_version=version,
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            flags=TCPFlags(flag_bits),
            window=window,
            options=options,
            payload=bytes(payload),
        )

    # ------------------------------------------------------------------
    # Convenience constructors used across the simulator
    # ------------------------------------------------------------------
    def reply_template(self) -> "Packet":
        """A packet skeleton going the opposite way on the same flow."""
        return Packet(
            ts=self.ts,
            src=self.dst,
            dst=self.src,
            sport=self.dport,
            dport=self.sport,
            ip_version=self.ip_version,
            direction=(
                PacketDirection.TO_CLIENT
                if self.direction == PacketDirection.TO_SERVER
                else PacketDirection.TO_SERVER
            ),
        )

    def clone(self, **overrides: object) -> "Packet":
        """Copy the packet, replacing the given fields."""
        return dataclasses.replace(self, **overrides)  # type: ignore[arg-type]


def sort_key_capture(pkt: Packet) -> Tuple[float, int]:
    """Sort key approximating capture order at 1-second granularity."""
    return (float(int(pkt.ts)), pkt.seq)


def total_inbound_bytes(packets: List[Packet]) -> int:
    """Sum of payload bytes on to-server packets (helper for stats)."""
    return sum(len(p.payload) for p in packets if p.direction == PacketDirection.TO_SERVER)
