"""Minimal HTTP/1.1: request construction and Host/keyword extraction.

On port 80, DPI middleboxes look for forbidden domain names in the
``Host`` header and keywords in the request line (paper §2.1).  This
module produces the cleartext request bytes our simulated clients send
as their first data segment, and the parsing primitives the DPI model
uses to inspect them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.errors import HttpParseError

__all__ = [
    "HttpRequest",
    "build_http_request",
    "parse_http_request",
    "extract_host",
    "is_http_request",
]

_METHODS = ("GET", "POST", "HEAD", "PUT", "DELETE", "OPTIONS", "PATCH", "CONNECT")


@dataclasses.dataclass(frozen=True)
class HttpRequest:
    """Parsed view of an HTTP/1.x request head."""

    method: str
    target: str
    version: str
    headers: Tuple[Tuple[str, str], ...]

    def header(self, name: str) -> Optional[str]:
        """Case-insensitive single-header lookup (first match wins)."""
        lowered = name.lower()
        for key, value in self.headers:
            if key.lower() == lowered:
                return value
        return None

    @property
    def host(self) -> Optional[str]:
        """The Host header value with any :port suffix stripped."""
        raw = self.header("host")
        if raw is None:
            return None
        return raw.rsplit(":", 1)[0] if ":" in raw and not raw.endswith("]") else raw


def build_http_request(
    host: str,
    path: str = "/",
    method: str = "GET",
    user_agent: str = "Mozilla/5.0 (X11; Linux x86_64) repro/1.0",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialise an HTTP/1.1 request head to wire bytes.

    The header order (Host first) matches common browsers, which matters
    for keyword-matching middleboxes that only scan a bounded prefix.
    """
    if method not in _METHODS:
        raise ValueError(f"unsupported HTTP method: {method}")
    if not path.startswith("/"):
        raise ValueError("path must start with '/'")
    lines = [f"{method} {path} HTTP/1.1", f"Host: {host}", f"User-Agent: {user_agent}", "Accept: */*"]
    for key, value in (extra_headers or {}).items():
        lines.append(f"{key}: {value}")
    lines.append("Connection: keep-alive")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii", "replace")


def is_http_request(data: bytes) -> bool:
    """Cheap test: does ``data`` start like an HTTP/1.x request line?"""
    head = data[:8]
    return any(head.startswith(m.encode() + b" ") for m in _METHODS)


def parse_http_request(data: bytes) -> HttpRequest:
    """Parse the request head out of ``data``.

    Tolerates a truncated body but requires a complete request line and
    raises :class:`~repro.errors.HttpParseError` on garbage, mirroring a
    DPI engine that bails out on non-HTTP traffic.
    """
    try:
        text = data.split(b"\r\n\r\n", 1)[0].decode("iso-8859-1")
    except Exception as exc:  # pragma: no cover - iso-8859-1 never fails
        raise HttpParseError("undecodable request bytes") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpParseError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if method not in _METHODS:
        raise HttpParseError(f"unknown method: {method!r}")
    if not version.startswith("HTTP/"):
        raise HttpParseError(f"bad HTTP version: {version!r}")
    headers = []
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HttpParseError(f"malformed header line: {line!r}")
        key, _, value = line.partition(":")
        headers.append((key.strip(), value.strip()))
    return HttpRequest(method=method, target=target, version=version, headers=tuple(headers))


def extract_host(data: bytes) -> Optional[str]:
    """Best-effort Host extraction: None when absent or unparseable.

    Never raises on arbitrary bytes -- the DPI primitive for port-80
    flows, paired with :func:`repro.netstack.tls.extract_sni` for 443.
    """
    if not is_http_request(data):
        return None
    try:
        return parse_http_request(data).host
    except HttpParseError:
        return None
