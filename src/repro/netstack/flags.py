"""TCP control flags.

The tampering signatures of the paper are defined entirely over sequences
of TCP flag combinations (``SYN``, ``ACK``, ``PSH+ACK``, ``RST``,
``RST+ACK``, ``FIN`` ...), so this module is the vocabulary for the whole
library.  Flag bit values follow RFC 793 / RFC 3168.
"""

from __future__ import annotations

import enum

__all__ = ["TCPFlags", "flags_to_str", "flags_from_str", "CANONICAL_ORDER"]


class TCPFlags(enum.IntFlag):
    """TCP header flag bits (low byte of offset/flags word)."""

    NONE = 0x00
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80

    # Common combinations, named for readability at call sites.
    SYNACK = SYN | ACK
    PSHACK = PSH | ACK
    RSTACK = RST | ACK
    FINACK = FIN | ACK

    @property
    def is_rst(self) -> bool:
        """True if the RST bit is set (with or without ACK)."""
        return bool(self & TCPFlags.RST)

    @property
    def is_pure_rst(self) -> bool:
        """True for RST without ACK -- one of the two teardown variants."""
        return bool(self & TCPFlags.RST) and not bool(self & TCPFlags.ACK)

    @property
    def is_rst_ack(self) -> bool:
        """True for RST+ACK -- the other teardown variant."""
        return bool(self & TCPFlags.RST) and bool(self & TCPFlags.ACK)

    @property
    def is_syn(self) -> bool:
        """True if the SYN bit is set."""
        return bool(self & TCPFlags.SYN)

    @property
    def is_fin(self) -> bool:
        """True if the FIN bit is set."""
        return bool(self & TCPFlags.FIN)

    @property
    def is_ack(self) -> bool:
        """True if the ACK bit is set."""
        return bool(self & TCPFlags.ACK)

    @property
    def is_psh(self) -> bool:
        """True if the PSH bit is set."""
        return bool(self & TCPFlags.PSH)


#: Rendering order used by :func:`flags_to_str`; matches tcpdump-ish style.
CANONICAL_ORDER = (
    (TCPFlags.SYN, "SYN"),
    (TCPFlags.FIN, "FIN"),
    (TCPFlags.RST, "RST"),
    (TCPFlags.PSH, "PSH"),
    (TCPFlags.ACK, "ACK"),
    (TCPFlags.URG, "URG"),
    (TCPFlags.ECE, "ECE"),
    (TCPFlags.CWR, "CWR"),
)

_NAME_TO_FLAG = {name: flag for flag, name in CANONICAL_ORDER}


def flags_to_str(flags: TCPFlags) -> str:
    """Render flags as a ``+``-joined string, e.g. ``"SYN+ACK"``.

    The empty flag set renders as ``"NONE"``.
    """
    names = [name for flag, name in CANONICAL_ORDER if flags & flag]
    return "+".join(names) if names else "NONE"


def flags_from_str(text: str) -> TCPFlags:
    """Parse a ``+``-joined flag string back into :class:`TCPFlags`.

    Accepts the output of :func:`flags_to_str` case-insensitively.

    >>> flags_from_str("syn+ack") == TCPFlags.SYNACK
    True
    """
    text = text.strip()
    if not text or text.upper() == "NONE":
        return TCPFlags.NONE
    flags = TCPFlags.NONE
    for part in text.split("+"):
        name = part.strip().upper()
        if name not in _NAME_TO_FLAG:
            raise ValueError(f"unknown TCP flag name: {part!r}")
        flags |= _NAME_TO_FLAG[name]
    return flags
