"""Classic pcap (libpcap) file reading and writing.

Captured samples can be persisted as standard pcap files (linktype RAW,
i.e. bare IP packets) so that external tools -- tcpdump, Wireshark, or a
colleague's scripts -- can inspect the simulated traffic.  Both byte
orders and both microsecond/nanosecond magics are accepted on read.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterable, Iterator, List, Tuple, Union

from repro.errors import PcapError
from repro.netstack.packet import Packet

__all__ = ["write_pcap", "read_pcap", "LINKTYPE_RAW"]

#: DLT_RAW: packets begin directly with the IP header.
LINKTYPE_RAW = 101

_MAGIC_US = 0xA1B2C3D4
_MAGIC_NS = 0xA1B23C4D
_SNAPLEN = 262144


def _open(path_or_file: Union[str, BinaryIO], mode: str):
    if isinstance(path_or_file, str):
        return open(path_or_file, mode), True
    return path_or_file, False


def write_pcap(path_or_file: Union[str, BinaryIO], packets: Iterable[Packet]) -> int:
    """Write packets to a classic pcap file; returns the packet count.

    Packets are encoded to real wire bytes (checksums included) and
    stamped with their simulated timestamps at microsecond precision.
    """
    fh, owned = _open(path_or_file, "wb")
    count = 0
    try:
        fh.write(
            struct.pack(
                "!IHHiIII",
                _MAGIC_US,
                2,  # major
                4,  # minor
                0,  # thiszone
                0,  # sigfigs
                _SNAPLEN,
                LINKTYPE_RAW,
            )
        )
        for pkt in packets:
            data = pkt.encode()
            ts_sec = int(pkt.ts)
            ts_usec = int(round((pkt.ts - ts_sec) * 1_000_000))
            if ts_usec >= 1_000_000:
                ts_sec, ts_usec = ts_sec + 1, ts_usec - 1_000_000
            fh.write(struct.pack("!IIII", ts_sec, ts_usec, len(data), len(data)))
            fh.write(data)
            count += 1
    finally:
        if owned:
            fh.close()
    return count


def read_pcap(path_or_file: Union[str, BinaryIO]) -> List[Packet]:
    """Read a classic pcap file of raw-IP packets into :class:`Packet` s."""
    return list(iter_pcap(path_or_file))


def iter_pcap(path_or_file: Union[str, BinaryIO]) -> Iterator[Packet]:
    """Stream packets from a classic pcap file of raw-IP packets."""
    fh, owned = _open(path_or_file, "rb")
    try:
        header = fh.read(24)
        if len(header) != 24:
            raise PcapError("truncated pcap global header")
        magic_be = struct.unpack("!I", header[:4])[0]
        magic_le = struct.unpack("<I", header[:4])[0]
        if magic_be in (_MAGIC_US, _MAGIC_NS):
            endian, magic = "!", magic_be
        elif magic_le in (_MAGIC_US, _MAGIC_NS):
            endian, magic = "<", magic_le
        else:
            raise PcapError(f"bad pcap magic: {header[:4].hex()}")
        ts_divisor = 1_000_000 if magic == _MAGIC_US else 1_000_000_000
        linktype = struct.unpack(endian + "IHHiIII", header)[6]
        if linktype != LINKTYPE_RAW:
            raise PcapError(f"unsupported linktype {linktype}; expected RAW ({LINKTYPE_RAW})")
        while True:
            rec = fh.read(16)
            if not rec:
                return
            if len(rec) != 16:
                raise PcapError("truncated pcap record header")
            ts_sec, ts_frac, caplen, origlen = struct.unpack(endian + "IIII", rec)
            data = fh.read(caplen)
            if len(data) != caplen:
                raise PcapError("truncated pcap record body")
            if caplen < origlen:
                raise PcapError("snapped packets are not supported")
            yield Packet.decode(data, ts=ts_sec + ts_frac / ts_divisor)
    finally:
        if owned:
            fh.close()
