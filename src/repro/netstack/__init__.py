"""Packet-level network substrate.

This subpackage implements everything below the measurement pipeline:
TCP flags and options, an IPv4/IPv6+TCP packet model with real wire
encoding, internet checksums, minimal-but-correct TCP endpoint state
machines, TLS ClientHello and HTTP/1.1 request builders/parsers (enough
for SNI / Host extraction, which is what DPI middleboxes key on), and a
classic-pcap reader/writer for persisting captures.
"""

from repro.netstack.flags import TCPFlags, flags_from_str, flags_to_str
from repro.netstack.options import (
    TCPOption,
    OptionKind,
    decode_options,
    encode_options,
    mss_option,
    nop_option,
    sack_permitted_option,
    timestamp_option,
    window_scale_option,
)
from repro.netstack.packet import Packet, PacketDirection
from repro.netstack.checksum import internet_checksum, tcp_checksum
from repro.netstack.tcp import TcpClient, TcpServer, TcpState
from repro.netstack.tls import (
    ClientHello,
    build_client_hello,
    extract_sni,
    parse_client_hello,
)
from repro.netstack.http import (
    HttpRequest,
    build_http_request,
    extract_host,
    parse_http_request,
)
from repro.netstack.pcap import read_pcap, write_pcap

__all__ = [
    "TCPFlags",
    "flags_from_str",
    "flags_to_str",
    "TCPOption",
    "OptionKind",
    "decode_options",
    "encode_options",
    "mss_option",
    "nop_option",
    "sack_permitted_option",
    "timestamp_option",
    "window_scale_option",
    "Packet",
    "PacketDirection",
    "internet_checksum",
    "tcp_checksum",
    "TcpClient",
    "TcpServer",
    "TcpState",
    "ClientHello",
    "build_client_hello",
    "extract_sni",
    "parse_client_hello",
    "HttpRequest",
    "build_http_request",
    "extract_host",
    "parse_http_request",
    "read_pcap",
    "write_pcap",
]
