"""Internet (ones-complement) checksums for IPv4 and TCP.

Implemented from RFC 1071.  The simulator encodes packets to real wire
bytes (see :mod:`repro.netstack.packet`), and middlebox-forged packets are
checksummed exactly like genuine ones -- real-world injectors produce valid
checksums, otherwise endpoints would discard the forgeries.
"""

from __future__ import annotations

import struct

from repro._util import ipv4_to_int, ipv6_to_int

__all__ = ["internet_checksum", "tcp_checksum", "verify_tcp_checksum"]


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit ones-complement checksum of ``data``.

    Odd-length input is virtually padded with a trailing zero byte, per
    RFC 1071 section 4.1.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
    # Fold carries back into the low 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _pseudo_header(src: str, dst: str, version: int, tcp_length: int) -> bytes:
    """Build the IPv4/IPv6 pseudo-header used in the TCP checksum."""
    if version == 4:
        return struct.pack(
            "!IIBBH",
            ipv4_to_int(src),
            ipv4_to_int(dst),
            0,
            6,  # protocol = TCP
            tcp_length,
        )
    if version == 6:
        return (
            ipv6_to_int(src).to_bytes(16, "big")
            + ipv6_to_int(dst).to_bytes(16, "big")
            + struct.pack("!IHBB", tcp_length, 0, 0, 6)
        )
    raise ValueError(f"unsupported IP version: {version}")


def tcp_checksum(src: str, dst: str, version: int, segment: bytes) -> int:
    """Checksum a TCP ``segment`` (header+payload, checksum field zeroed)."""
    return internet_checksum(_pseudo_header(src, dst, version, len(segment)) + segment)


def verify_tcp_checksum(src: str, dst: str, version: int, segment: bytes) -> bool:
    """Return True if ``segment`` (with its checksum in place) verifies.

    Summing a segment that includes a correct checksum yields zero.
    """
    total = internet_checksum(_pseudo_header(src, dst, version, len(segment)) + segment)
    return total == 0
