"""Minimal-but-correct TCP endpoint state machines.

These endpoints implement the parts of TCP that matter to server-side
tampering detection: the three-way handshake, sequenced data transfer
with cumulative ACKs, graceful FIN teardown, RST abort handling, and
client-side retransmission timers (whose visible effect -- duplicate SYNs
and duplicate data segments at the server -- the classifier must tolerate).

They deliberately omit congestion control, window management, SACK
processing and urgent data: none of those change the first ten inbound
packet *headers* the paper's pipeline records.

The endpoints are driven by :mod:`repro.network.sim`: the simulator calls
:meth:`on_packet` when a packet arrives and :meth:`on_timer` when the
endpoint's retransmission clock fires, and transmits whatever packets the
endpoint returns.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import List, Optional, Tuple

from repro._util import chunk_payload
from repro.errors import StateMachineError
from repro.netstack.flags import TCPFlags
from repro.netstack.options import DEFAULT_CLIENT_OPTIONS, TCPOption, mss_option
from repro.netstack.packet import Packet, PacketDirection

__all__ = ["TcpState", "IpIdMode", "HostConfig", "TcpClient", "TcpServer"]

_MAX_SEQ = 1 << 32


class TcpState(enum.Enum):
    """Connection states (reduced RFC 793 set)."""

    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn_sent"
    SYN_RECEIVED = "syn_received"
    ESTABLISHED = "established"
    FIN_WAIT = "fin_wait"
    CLOSE_WAIT = "close_wait"
    LAST_ACK = "last_ack"
    TIME_WAIT = "time_wait"
    RESET = "reset"
    ABORTED = "aborted"  # gave up after retransmission timeout


class IpIdMode(enum.Enum):
    """How a host stack assigns the IPv4 Identification field.

    Mirrors the behaviours catalogued in the paper's §4.3: most modern
    stacks use zero, a per-connection counter, or a global counter, so
    consecutive packets of one connection differ by 0 or 1 -- which is what
    makes wildly different IP-IDs on injected packets detectable.
    """

    ZERO = "zero"
    COUNTER = "counter"
    RANDOM = "random"  # pathological stack: new random value each packet


@dataclasses.dataclass
class HostConfig:
    """Per-host network-stack personality shared by client and server."""

    ip: str
    port: int
    initial_ttl: int = 64
    ip_id_mode: IpIdMode = IpIdMode.COUNTER
    ip_id_start: int = 0
    isn: int = 0
    mss: int = 1460
    options: Tuple[TCPOption, ...] = DEFAULT_CLIENT_OPTIONS
    rto: float = 1.0
    max_retries: int = 2


class _TcpEndpoint:
    """Shared machinery between :class:`TcpClient` and :class:`TcpServer`."""

    def __init__(self, config: HostConfig, peer_ip: str, peer_port: int) -> None:
        self.config = config
        self.peer_ip = peer_ip
        self.peer_port = peer_port
        self.state = TcpState.CLOSED
        self.snd_nxt = config.isn
        self.snd_una = config.isn
        self.rcv_nxt = 0
        self._ip_id = config.ip_id_start & 0xFFFF
        self._rng = random.Random(config.isn ^ 0x5EED)
        self._timer_at: Optional[float] = None
        self._retries = 0
        self.packets_sent = 0
        self.fin_received = False
        self.fin_sent = False

    # ------------------------------------------------------------------
    def _next_ip_id(self) -> int:
        mode = self.config.ip_id_mode
        if mode == IpIdMode.ZERO:
            return 0
        if mode == IpIdMode.RANDOM:
            return self._rng.randrange(0, 0x10000)
        value = self._ip_id
        self._ip_id = (self._ip_id + 1) & 0xFFFF
        return value

    def _make(
        self,
        ts: float,
        flags: TCPFlags,
        seq: int,
        ack: int = 0,
        payload: bytes = b"",
        options: Tuple[TCPOption, ...] = (),
    ) -> Packet:
        self.packets_sent += 1
        direction = (
            PacketDirection.TO_SERVER if isinstance(self, TcpClient) else PacketDirection.TO_CLIENT
        )
        return Packet(
            ts=ts,
            src=self.config.ip,
            dst=self.peer_ip,
            sport=self.config.port,
            dport=self.peer_port,
            ttl=self.config.initial_ttl,
            ip_id=self._next_ip_id(),
            seq=seq % _MAX_SEQ,
            ack=ack % _MAX_SEQ,
            flags=flags,
            options=options,
            payload=payload,
            direction=direction,
        )

    # -- timer plumbing -------------------------------------------------
    def next_timer(self) -> Optional[float]:
        """When the endpoint next wants :meth:`on_timer` called, if ever."""
        return self._timer_at

    def _arm_timer(self, now: float) -> None:
        # Exponential backoff like a real stack: rto, 2*rto, 4*rto ...
        self._timer_at = now + self.config.rto * (2 ** self._retries)

    def _cancel_timer(self) -> None:
        self._timer_at = None

    def _handle_rst(self) -> None:
        self.state = TcpState.RESET
        self._cancel_timer()

    @property
    def done(self) -> bool:
        """True once the endpoint will emit no further packets."""
        return self.state in (TcpState.CLOSED, TcpState.TIME_WAIT, TcpState.RESET, TcpState.ABORTED)


class TcpClient(_TcpEndpoint):
    """A client that connects, sends a request, reads the response, closes.

    ``request_segments`` is the application payload pre-split into the
    byte chunks the client will send as individual PSH+ACK segments (the
    first usually a TLS ClientHello or HTTP request head).
    """

    def __init__(
        self,
        config: HostConfig,
        server_ip: str,
        server_port: int,
        request_segments: Optional[List[bytes]] = None,
        request_payload: bytes = b"",
        syn_payload: bytes = b"",
    ) -> None:
        super().__init__(config, server_ip, server_port)
        if request_segments is None:
            request_segments = chunk_payload(request_payload, config.mss)
        self.request_segments = list(request_segments)
        self.syn_payload = syn_payload
        self._segments_acked = 0
        self._request_bytes = sum(len(s) for s in self.request_segments)

    # ------------------------------------------------------------------
    def begin(self, now: float) -> List[Packet]:
        """Initiate the connection: emit the SYN and arm the SYN timer."""
        if self.state != TcpState.CLOSED:
            raise StateMachineError(f"begin() in state {self.state}")
        self.state = TcpState.SYN_SENT
        syn = self._make(
            now,
            TCPFlags.SYN,
            seq=self.snd_nxt,
            options=self.config.options,
            payload=self.syn_payload,
        )
        self.snd_nxt = (self.snd_nxt + 1 + len(self.syn_payload)) % _MAX_SEQ
        self._arm_timer(now)
        return [syn]

    def on_timer(self, now: float) -> List[Packet]:
        """Retransmission timeout: re-send SYN or unacked request data."""
        if self.done or self._timer_at is None or now + 1e-9 < self._timer_at:
            return []
        self._retries += 1
        if self._retries > self.config.max_retries:
            self.state = TcpState.ABORTED
            self._cancel_timer()
            return []
        if self.state == TcpState.SYN_SENT:
            self._arm_timer(now)
            return [
                self._make(
                    now,
                    TCPFlags.SYN,
                    seq=self.config.isn,
                    options=self.config.options,
                    payload=self.syn_payload,
                )
            ]
        if self.state == TcpState.ESTABLISHED and self.snd_una != self.snd_nxt:
            self._arm_timer(now)
            return self._emit_request(now, start_at=self._segments_acked, retransmit=True)
        self._cancel_timer()
        return []

    def _emit_request(self, now: float, start_at: int = 0, retransmit: bool = False) -> List[Packet]:
        """Emit request segments from index ``start_at`` onward."""
        out: List[Packet] = []
        seq = self.snd_una if retransmit else self.snd_nxt
        for segment in self.request_segments[start_at:]:
            out.append(
                self._make(now, TCPFlags.PSHACK, seq=seq, ack=self.rcv_nxt, payload=segment)
            )
            seq = (seq + len(segment)) % _MAX_SEQ
        if not retransmit:
            self.snd_nxt = seq
        return out

    def on_packet(self, pkt: Packet, now: float) -> List[Packet]:
        """Process one packet from the network, returning replies."""
        if self.done:
            return []
        flags = pkt.flags
        if flags.is_rst:
            self._handle_rst()
            return []

        if self.state == TcpState.SYN_SENT:
            if flags.is_syn and flags.is_ack:
                self.rcv_nxt = (pkt.seq + 1) % _MAX_SEQ
                self.snd_una = self.snd_nxt
                self.state = TcpState.ESTABLISHED
                self._retries = 0
                ack = self._make(now, TCPFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt)
                data = self._emit_request(now)
                if data:
                    self._arm_timer(now)
                else:
                    self._cancel_timer()
                return [ack] + data
            return []  # ignore strays while connecting

        if self.state in (TcpState.ESTABLISHED, TcpState.FIN_WAIT, TcpState.CLOSE_WAIT):
            replies: List[Packet] = []
            if flags.is_ack:
                acked = (pkt.ack - self.snd_una) % _MAX_SEQ
                outstanding = (self.snd_nxt - self.snd_una) % _MAX_SEQ
                if 0 < acked <= outstanding:
                    self.snd_una = pkt.ack
                    consumed = 0
                    advanced = 0
                    for segment in self.request_segments[self._segments_acked :]:
                        consumed += len(segment)
                        if consumed <= acked:
                            advanced += 1
                    self._segments_acked += advanced
                    if self.snd_una == self.snd_nxt:
                        self._retries = 0
                        self._cancel_timer()
            if pkt.has_payload:
                expected = self.rcv_nxt
                if pkt.seq == expected:
                    self.rcv_nxt = (pkt.seq + len(pkt.payload)) % _MAX_SEQ
                # ACK data (dup-ACK for out-of-order, like a real stack)
                replies.append(self._make(now, TCPFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt))
            if flags.is_fin and not self.fin_received:
                self.fin_received = True
                self.rcv_nxt = (max(self.rcv_nxt, (pkt.seq + len(pkt.payload)) % _MAX_SEQ) + 1) % _MAX_SEQ
                # Respond with our own FIN+ACK (close in both directions).
                fin = self._make(now, TCPFlags.FINACK, seq=self.snd_nxt, ack=self.rcv_nxt)
                self.snd_nxt = (self.snd_nxt + 1) % _MAX_SEQ
                self.fin_sent = True
                self.state = TcpState.LAST_ACK
                replies.append(fin)
            return replies

        if self.state == TcpState.LAST_ACK:
            if flags.is_ack and pkt.ack == self.snd_nxt:
                self.state = TcpState.TIME_WAIT
                self._cancel_timer()
            return []

        return []


class TcpServer(_TcpEndpoint):
    """A single-connection server endpoint (the CDN edge wraps this).

    The server accepts one handshake, ACKs incoming data, and -- once at
    least ``request_threshold`` payload bytes have arrived -- sends
    ``response_segments`` followed by a FIN, then completes teardown.
    """

    def __init__(
        self,
        config: HostConfig,
        response_segments: Optional[List[bytes]] = None,
        response_payload: bytes = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok",
        request_threshold: int = 1,
    ) -> None:
        super().__init__(config, peer_ip="0.0.0.0", peer_port=0)
        self.state = TcpState.LISTEN
        if response_segments is None:
            response_segments = chunk_payload(response_payload, config.mss)
        self.response_segments = list(response_segments)
        self.request_threshold = request_threshold
        self.bytes_received = 0
        self.request_data = bytearray()
        self._responded = False
        #: Out-of-order reassembly buffer: seq -> payload.
        self._ooo: dict = {}

    def on_timer(self, now: float) -> List[Packet]:
        """Servers do not retransmit in this model."""
        return []

    def _ingest_payload(self, pkt: Packet) -> None:
        """Consume in-order data; buffer out-of-order segments.

        Future segments (seq beyond rcv_nxt) wait in a reassembly buffer
        and are drained as soon as the gap fills -- so a retransmitted
        first segment arriving after its successors still yields the
        complete request, exactly like a real stack's receive queue.
        """
        offset = (pkt.seq - self.rcv_nxt) % _MAX_SEQ
        if offset == 0:
            self._consume(pkt.payload)
        elif offset < (1 << 30):  # a future segment (not an old duplicate)
            self._ooo.setdefault(pkt.seq, bytes(pkt.payload))
        # Drain anything now contiguous.
        while self.rcv_nxt in self._ooo:
            self._consume(self._ooo.pop(self.rcv_nxt))

    def _consume(self, payload: bytes) -> None:
        self.rcv_nxt = (self.rcv_nxt + len(payload)) % _MAX_SEQ
        self.request_data.extend(payload)
        self.bytes_received += len(payload)

    def on_packet(self, pkt: Packet, now: float) -> List[Packet]:
        """Process one packet from the network, returning replies."""
        if self.done:
            return []
        flags = pkt.flags

        if flags.is_rst:
            self._handle_rst()
            return []

        if self.state == TcpState.LISTEN:
            if flags.is_syn and not flags.is_ack:
                self.peer_ip, self.peer_port = pkt.src, pkt.sport
                self.rcv_nxt = (pkt.seq + 1 + len(pkt.payload)) % _MAX_SEQ
                if pkt.has_payload:
                    self.request_data.extend(pkt.payload)
                    self.bytes_received += len(pkt.payload)
                self.state = TcpState.SYN_RECEIVED
                synack = self._make(
                    now,
                    TCPFlags.SYNACK,
                    seq=self.snd_nxt,
                    ack=self.rcv_nxt,
                    options=(mss_option(self.config.mss),) + tuple(
                        o for o in self.config.options if o.kind != 2
                    ),
                )
                self.snd_nxt = (self.snd_nxt + 1) % _MAX_SEQ
                return [synack]
            # Unsolicited non-SYN to a closed port: RST+ACK, per RFC 793.
            rst = self._make(
                now,
                TCPFlags.RSTACK,
                seq=0,
                ack=(pkt.seq + len(pkt.payload) + (1 if flags.is_syn or flags.is_fin else 0)) % _MAX_SEQ,
            )
            return [rst]

        if self.state == TcpState.SYN_RECEIVED:
            if flags.is_ack and pkt.ack == self.snd_nxt:
                self.state = TcpState.ESTABLISHED
                self.snd_una = self.snd_nxt
                # fall through: the ACK may carry data (client piggyback)
            else:
                return []

        if self.state in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            replies: List[Packet] = []
            if pkt.has_payload:
                self._ingest_payload(pkt)
                replies.append(self._make(now, TCPFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt))
            if flags.is_fin:
                self.fin_received = True
                self.rcv_nxt = (self.rcv_nxt + 1) % _MAX_SEQ
                if not self._responded:
                    # Client closed before a full request: just FIN back.
                    fin = self._make(now, TCPFlags.FINACK, seq=self.snd_nxt, ack=self.rcv_nxt)
                    self.snd_nxt = (self.snd_nxt + 1) % _MAX_SEQ
                    self.fin_sent = True
                    self.state = TcpState.LAST_ACK
                    replies.append(fin)
                else:
                    replies.append(self._make(now, TCPFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt))
                    self.state = TcpState.TIME_WAIT
                return replies
            if (
                not self._responded
                and self.bytes_received >= self.request_threshold
                and self.state == TcpState.ESTABLISHED
            ):
                self._responded = True
                seq = self.snd_nxt
                for segment in self.response_segments:
                    replies.append(
                        self._make(now, TCPFlags.PSHACK, seq=seq, ack=self.rcv_nxt, payload=segment)
                    )
                    seq = (seq + len(segment)) % _MAX_SEQ
                fin = self._make(now, TCPFlags.FINACK, seq=seq, ack=self.rcv_nxt)
                seq = (seq + 1) % _MAX_SEQ
                self.snd_nxt = seq
                self.fin_sent = True
                replies.append(fin)
            return replies

        if self.state == TcpState.LAST_ACK:
            if flags.is_ack and pkt.ack == self.snd_nxt:
                self.state = TcpState.TIME_WAIT
            return []

        if self.state == TcpState.TIME_WAIT:
            return []

        return []
