"""Small shared utilities: deterministic RNG derivation and IP formatting.

The whole simulation is seeded.  To avoid threading a single
:class:`random.Random` instance through every component (which would make
results depend on call ordering), components derive *independent* child
generators from a parent seed and a string label via :func:`derive_rng`.
Two runs with the same seed therefore produce identical traffic no matter
how the caller interleaves component construction.
"""

from __future__ import annotations

import hashlib
import ipaddress
import random
from typing import Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

__all__ = [
    "derive_seed",
    "derive_rng",
    "ipv4_to_int",
    "int_to_ipv4",
    "ipv6_to_int",
    "int_to_ipv6",
    "ip_version",
    "zipf_weights",
    "weighted_choice",
    "stable_hash",
    "chunk_payload",
    "clamp",
]


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Python's builtin :func:`hash` is randomised per process for strings,
    which would break cross-run determinism, so we hash through SHA-256.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest()[:8], "big")


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a component ``label``."""
    return stable_hash(parent_seed, label)


def derive_rng(parent_seed: int, label: str) -> random.Random:
    """Return an independent :class:`random.Random` for one component."""
    return random.Random(derive_seed(parent_seed, label))


def ipv4_to_int(address: str) -> int:
    """Convert dotted-quad IPv4 text to its 32-bit integer value."""
    return int(ipaddress.IPv4Address(address))


def int_to_ipv4(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad IPv4 text."""
    return str(ipaddress.IPv4Address(value))


def ipv6_to_int(address: str) -> int:
    """Convert IPv6 text to its 128-bit integer value."""
    return int(ipaddress.IPv6Address(address))


def int_to_ipv6(value: int) -> str:
    """Convert a 128-bit integer to compressed IPv6 text."""
    return str(ipaddress.IPv6Address(value))


def ip_version(address: str) -> int:
    """Return 4 or 6 for the given textual IP address."""
    return ipaddress.ip_address(address).version


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Return ``n`` Zipf-distributed weights summing to 1.

    Rank 1 is the heaviest.  Used for domain popularity so that a small
    set of domains dominates traffic, as on the real web.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / ((rank + 1) ** exponent) for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item according to ``weights`` using ``rng``.

    Thin wrapper that validates lengths; ``random.choices`` silently
    mis-pairs mismatched sequences.
    """
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    return rng.choices(items, weights=weights, k=1)[0]


def chunk_payload(payload: bytes, mss: int) -> List[bytes]:
    """Split an application payload into MSS-sized TCP segments."""
    if mss <= 0:
        raise ValueError("mss must be positive")
    if not payload:
        return []
    return [payload[i : i + mss] for i in range(0, len(payload), mss)]


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the inclusive range [low, high]."""
    return max(low, min(high, value))


def cumulative(values: Iterable[float]) -> List[float]:
    """Running sum of ``values`` (used by CDF helpers in reports)."""
    out: List[float] = []
    total = 0.0
    for v in values:
        total += v
        out.append(total)
    return out


def pairwise(seq: Sequence[T]) -> Iterable[Tuple[T, T]]:
    """Yield consecutive pairs of ``seq`` (like itertools.pairwise)."""
    for i in range(len(seq) - 1):
        yield seq[i], seq[i + 1]
