"""Small shared utilities: deterministic RNG derivation, IP formatting,
and crash-safe file replacement.

The whole simulation is seeded.  To avoid threading a single
:class:`random.Random` instance through every component (which would make
results depend on call ordering), components derive *independent* child
generators from a parent seed and a string label via :func:`derive_rng`.
Two runs with the same seed therefore produce identical traffic no matter
how the caller interleaves component construction.

:func:`atomic_write_json` / :func:`fsync_directory` are the durability
primitives shared by every crash-safe writer in the tree (stream
checkpoints, store segments, the store manifest): fsync'd temp file,
``os.replace``, then an fsync of the containing directory so the rename
itself survives a crash on ext4/xfs.
"""

from __future__ import annotations

import hashlib
import ipaddress
import json
import os
import random
import tempfile
from typing import Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")

__all__ = [
    "derive_seed",
    "derive_rng",
    "ipv4_to_int",
    "int_to_ipv4",
    "ipv6_to_int",
    "int_to_ipv6",
    "ip_version",
    "zipf_weights",
    "weighted_choice",
    "stable_hash",
    "chunk_payload",
    "clamp",
    "fsync_directory",
    "atomic_write_json",
]


def fsync_directory(directory: str) -> None:
    """fsync a directory so renames inside it are durable.

    ``os.replace`` makes a swap *atomic* but not *durable*: on ext4/xfs
    the new directory entry lives in the page cache until the directory
    inode itself is flushed.  Platforms whose directory handles cannot be
    fsync'd (or opened) are silently tolerated -- durability there is
    best-effort, exactly as it was before the call.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX fallback
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. directories on some FS
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str, payload: object, *, indent: int = None) -> int:
    """Durably replace ``path`` with ``payload`` as JSON; returns bytes written.

    The sequence is: write to an fsync'd temp file in the same directory,
    chmod it to honour the process umask (``mkstemp`` creates 0600, which
    would make artifacts written by one user unreadable by group
    tooling), ``os.replace`` over the target, then fsync the directory so
    the rename is durable.  A crash at any point leaves either the old
    file or the new file, never a torn mix.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            if indent is None:
                json.dump(payload, fh, separators=(",", ":"))
            else:
                json.dump(payload, fh, indent=indent)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        size = os.path.getsize(tmp_path)
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_path, 0o666 & ~umask)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    fsync_directory(directory)
    return size


def stable_hash(*parts: object) -> int:
    """Return a 64-bit hash of ``parts`` that is stable across processes.

    Python's builtin :func:`hash` is randomised per process for strings,
    which would break cross-run determinism, so we hash through SHA-256.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest()[:8], "big")


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a child seed from ``parent_seed`` and a component ``label``."""
    return stable_hash(parent_seed, label)


def derive_rng(parent_seed: int, label: str) -> random.Random:
    """Return an independent :class:`random.Random` for one component."""
    return random.Random(derive_seed(parent_seed, label))


def ipv4_to_int(address: str) -> int:
    """Convert dotted-quad IPv4 text to its 32-bit integer value."""
    return int(ipaddress.IPv4Address(address))


def int_to_ipv4(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad IPv4 text."""
    return str(ipaddress.IPv4Address(value))


def ipv6_to_int(address: str) -> int:
    """Convert IPv6 text to its 128-bit integer value."""
    return int(ipaddress.IPv6Address(address))


def int_to_ipv6(value: int) -> str:
    """Convert a 128-bit integer to compressed IPv6 text."""
    return str(ipaddress.IPv6Address(value))


def ip_version(address: str) -> int:
    """Return 4 or 6 for the given textual IP address."""
    return ipaddress.ip_address(address).version


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Return ``n`` Zipf-distributed weights summing to 1.

    Rank 1 is the heaviest.  Used for domain popularity so that a small
    set of domains dominates traffic, as on the real web.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    raw = [1.0 / ((rank + 1) ** exponent) for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item according to ``weights`` using ``rng``.

    Thin wrapper that validates lengths; ``random.choices`` silently
    mis-pairs mismatched sequences.
    """
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    return rng.choices(items, weights=weights, k=1)[0]


def chunk_payload(payload: bytes, mss: int) -> List[bytes]:
    """Split an application payload into MSS-sized TCP segments."""
    if mss <= 0:
        raise ValueError("mss must be positive")
    if not payload:
        return []
    return [payload[i : i + mss] for i in range(0, len(payload), mss)]


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the inclusive range [low, high]."""
    return max(low, min(high, value))


def cumulative(values: Iterable[float]) -> List[float]:
    """Running sum of ``values`` (used by CDF helpers in reports)."""
    out: List[float] = []
    total = 0.0
    for v in values:
        total += v
        out.append(total)
    return out


def pairwise(seq: Sequence[T]) -> Iterable[Tuple[T, T]]:
    """Yield consecutive pairs of ``seq`` (like itertools.pairwise)."""
    for i in range(len(seq) - 1):
        yield seq[i], seq[i + 1]
