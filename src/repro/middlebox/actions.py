"""Middlebox verdicts: what a device decides to do with one packet.

The path simulator hands every transiting packet to each middlebox on the
path and obeys the returned :class:`Verdict`: forward or drop the original
packet, transmit any forged packets the device produced (toward either
endpoint), and install a flow blackhole for subsequent packets.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Tuple

from repro.netstack.packet import Packet

__all__ = ["BlackholeMode", "Verdict"]


class BlackholeMode(enum.Flag):
    """Which direction(s) of a flow a device silently discards.

    ``CLIENT_TO_SERVER`` models in-path censors that stop forwarding the
    client's packets (the server observes silence -- the paper's ``∅``
    outcomes); ``SERVER_TO_CLIENT`` models response suppression; ``BOTH``
    is a full bidirectional blackhole.
    """

    NONE = 0
    CLIENT_TO_SERVER = enum.auto()
    SERVER_TO_CLIENT = enum.auto()
    BOTH = CLIENT_TO_SERVER | SERVER_TO_CLIENT


@dataclasses.dataclass
class Verdict:
    """Outcome of a middlebox inspecting one packet.

    ``forward`` -- whether the original packet continues along the path.
    ``to_server`` / ``to_client`` -- forged packets to transmit from the
    middlebox's position on the path (they traverse only the remaining
    path legs, so their TTLs arrive *less* decremented than end-to-end
    packets -- exactly the artefact Figure 3 measures).
    ``blackhole`` -- directions to discard for the rest of the flow.
    """

    forward: bool = True
    to_server: List[Packet] = dataclasses.field(default_factory=list)
    to_client: List[Packet] = dataclasses.field(default_factory=list)
    blackhole: BlackholeMode = BlackholeMode.NONE

    @classmethod
    def allow(cls) -> "Verdict":
        """Pass the packet through untouched."""
        return cls()

    @classmethod
    def drop(cls, blackhole: BlackholeMode = BlackholeMode.NONE) -> "Verdict":
        """Silently discard the packet (optionally blackhole the flow)."""
        return cls(forward=False, blackhole=blackhole)

    @property
    def injects(self) -> bool:
        """True if the verdict carries forged packets."""
        return bool(self.to_server or self.to_client)

    def summary(self) -> Tuple[bool, int, int, str]:
        """Compact tuple used in debug logs and tests."""
        return (self.forward, len(self.to_server), len(self.to_client), self.blackhole.name or "NONE")
