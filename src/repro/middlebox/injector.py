"""Forged-packet factories: how an injector builds its RSTs.

Every RST-injection censor studied by prior work has a recognisable
"header personality": how many tear-down packets it sends and with which
flags (the GFW's RST / RST+ACK bursts), how it picks acknowledgment
numbers (correct, zero, or guessed -- producing the paper's
``RST=RST`` / ``RST≠RST`` / ``RST;RST₀`` distinctions), and how it fills
the IP-ID and TTL fields of the forged IP headers (the side channels
Figures 2 and 3 exploit).

:class:`InjectionSpec` captures a personality declaratively;
:func:`forge_packets` renders it into concrete :class:`Packet` objects
spoofed from the appropriate endpoint.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import List, Optional, Sequence, Tuple

from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet, PacketDirection

__all__ = [
    "AckStrategy",
    "SeqStrategy",
    "IpIdStrategy",
    "TtlStrategy",
    "RstBurst",
    "ForgedHeaderProfile",
    "InjectionSpec",
    "FlowSnapshot",
    "forge_packets",
]


class AckStrategy(enum.Enum):
    """How the injector fills the ACK number of forged tear-downs."""

    CORRECT = "correct"  # the true next expected sequence number
    ZERO = "zero"  # hard-coded zero (seen from some devices)
    GUESS = "guess"  # sweep of guesses around the true value
    SAME_WRONG = "same_wrong"  # one wrong value repeated on every packet
    MIX_ZERO = "mix_zero"  # first packet correct, a later one zero


class SeqStrategy(enum.Enum):
    """How the injector fills the SEQ number of forged tear-downs."""

    CORRECT = "correct"  # the victim's next in-window sequence number
    OFFSET = "offset"  # slightly off (still accepted by lenient stacks)


class IpIdStrategy(enum.Enum):
    """How the injector fills the IPv4 Identification field."""

    ZERO = "zero"
    COPY = "copy"  # copy from the triggering packet (stealthy censors)
    RANDOM = "random"
    COUNTER = "counter"  # injector's own global counter


class TtlStrategy(enum.Enum):
    """How the injector initialises the TTL of forged packets."""

    CONSTANT = "constant"  # a fixed initial TTL (64 / 128 / 255 / other)
    MATCH_CLIENT = "match_client"  # mimic the victim's initial TTL
    RANDOM = "random"  # fresh random TTL per packet (observed in KR)


@dataclasses.dataclass(frozen=True)
class RstBurst:
    """One group of identical-flag forged packets within an injection."""

    flags: TCPFlags
    count: int = 1

    def __post_init__(self) -> None:
        if not self.flags.is_rst:
            raise ValueError("injection bursts must carry the RST bit")
        if self.count < 1:
            raise ValueError("burst count must be >= 1")


@dataclasses.dataclass(frozen=True)
class ForgedHeaderProfile:
    """IP-header personality of forged packets."""

    ip_id: IpIdStrategy = IpIdStrategy.RANDOM
    ttl: TtlStrategy = TtlStrategy.CONSTANT
    ttl_value: int = 255
    window: int = 0


@dataclasses.dataclass(frozen=True)
class InjectionSpec:
    """A complete injector personality.

    ``bursts`` lists the forged packets in transmission order;
    ``ack``/``seq`` pick the strategies for sequence spaces; ``headers``
    the IP-header personality; ``jitter`` an optional per-packet spacing
    in seconds (forged packets of one event arrive within the same
    1-second capture bucket in practice).
    """

    bursts: Tuple[RstBurst, ...]
    ack: AckStrategy = AckStrategy.CORRECT
    seq: SeqStrategy = SeqStrategy.CORRECT
    headers: ForgedHeaderProfile = ForgedHeaderProfile()
    jitter: float = 0.002

    def __post_init__(self) -> None:
        if not self.bursts:
            raise ValueError("InjectionSpec needs at least one burst")

    @property
    def total_packets(self) -> int:
        return sum(b.count for b in self.bursts)

    @classmethod
    def single(cls, flags: TCPFlags = TCPFlags.RST, **kwargs: object) -> "InjectionSpec":
        """Convenience: one forged packet."""
        return cls(bursts=(RstBurst(flags, 1),), **kwargs)  # type: ignore[arg-type]


@dataclasses.dataclass
class FlowSnapshot:
    """What the middlebox knows about a flow when it decides to inject.

    Captured from the device's passive observation of both directions:
    the endpoints' addresses and the next sequence numbers each side
    would use.  ``client_initial_ttl`` feeds TTL mimicry.
    """

    client_ip: str
    client_port: int
    server_ip: str
    server_port: int
    client_next_seq: int
    server_next_seq: int
    client_ip_id: int = 0
    client_initial_ttl: int = 64
    ip_version: int = 4


class _IpIdCounter:
    """Process-wide injector IP-ID counters, keyed per device."""

    def __init__(self, start: int) -> None:
        self.value = start & 0xFFFF

    def next(self) -> int:
        v = self.value
        self.value = (self.value + 1) & 0xFFFF
        return v


def _pick_ip_id(strategy: IpIdStrategy, flow: FlowSnapshot, counter: _IpIdCounter, rng: random.Random) -> int:
    if strategy == IpIdStrategy.ZERO:
        return 0
    if strategy == IpIdStrategy.COPY:
        return flow.client_ip_id
    if strategy == IpIdStrategy.RANDOM:
        return rng.randrange(0, 0x10000)
    return counter.next()


def _pick_ttl(profile: ForgedHeaderProfile, flow: FlowSnapshot, rng: random.Random) -> int:
    if profile.ttl == TtlStrategy.CONSTANT:
        return profile.ttl_value
    if profile.ttl == TtlStrategy.MATCH_CLIENT:
        return flow.client_initial_ttl
    return rng.randrange(32, 256)


def forge_packets(
    spec: InjectionSpec,
    flow: FlowSnapshot,
    now: float,
    rng: random.Random,
    counter: Optional[_IpIdCounter] = None,
    toward: PacketDirection = PacketDirection.TO_SERVER,
) -> List[Packet]:
    """Render an :class:`InjectionSpec` into concrete forged packets.

    ``toward=TO_SERVER`` spoofs the client (tearing down the server's
    connection state); ``toward=TO_CLIENT`` spoofs the server.  The ACK
    strategy applies to the *receiving* endpoint's sequence space.
    """
    if counter is None:
        counter = _IpIdCounter(rng.randrange(0, 0x10000))

    if toward == PacketDirection.TO_SERVER:
        src, sport = flow.client_ip, flow.client_port
        dst, dport = flow.server_ip, flow.server_port
        base_seq = flow.client_next_seq
        correct_ack = flow.server_next_seq
    else:
        src, sport = flow.server_ip, flow.server_port
        dst, dport = flow.client_ip, flow.client_port
        base_seq = flow.server_next_seq
        correct_ack = flow.client_next_seq

    if spec.seq == SeqStrategy.OFFSET:
        base_seq = (base_seq + 1460) % (1 << 32)

    same_wrong_ack = (correct_ack + rng.randrange(1, 4) * 1460) % (1 << 32)

    packets: List[Packet] = []
    index = 0
    ts = now
    for burst in spec.bursts:
        for _ in range(burst.count):
            if spec.ack == AckStrategy.CORRECT:
                ack = correct_ack if burst.flags.is_ack else 0
            elif spec.ack == AckStrategy.ZERO:
                ack = 0
            elif spec.ack == AckStrategy.SAME_WRONG:
                ack = same_wrong_ack
            elif spec.ack == AckStrategy.MIX_ZERO:
                ack = 0 if index == spec.total_packets - 1 else correct_ack
            else:  # GUESS: sweep around the correct value
                ack = (correct_ack + index * 1460) % (1 << 32)
            packets.append(
                Packet(
                    ts=ts,
                    src=src,
                    dst=dst,
                    sport=sport,
                    dport=dport,
                    ttl=_pick_ttl(spec.headers, flow, rng),
                    ip_id=_pick_ip_id(spec.headers.ip_id, flow, counter, rng) if flow.ip_version == 4 else 0,
                    ip_version=flow.ip_version,
                    seq=base_seq,
                    ack=ack,
                    flags=burst.flags,
                    window=spec.headers.window,
                    payload=b"",
                    direction=toward,
                    injected=True,
                )
            )
            index += 1
            ts += spec.jitter
    return packets
