"""Vendor presets: middlebox personalities matching published fingerprints.

Each factory builds a :class:`~repro.middlebox.device.TamperingMiddlebox`
whose observable effect at the *server* matches one of the paper's
tampering signatures (Table 1).  The mapping below is the ground truth
used by integration tests: simulate a censored connection through the
preset and assert the classifier reports the expected signature.

==========================  =========================================
Preset                      Expected server-side signature
==========================  =========================================
syn_blackhole               ⟨SYN → ∅⟩
syn_rst_injector            ⟨SYN → RST⟩
syn_rstack_injector         ⟨SYN → RST+ACK⟩
gfw_syn                     ⟨SYN → RST; RST+ACK⟩
iran_drop                   ⟨SYN; ACK → ∅⟩
tm_http                     ⟨SYN; ACK → RST⟩ (port 80 only)
iran_double_rst             ⟨SYN; ACK → RST; RST⟩
iran_rstack                 ⟨SYN; ACK → RST+ACK⟩
iran_double_rstack          ⟨SYN; ACK → RST+ACK; RST+ACK⟩
psh_blackhole               ⟨PSH+ACK → ∅⟩
single_rst                  ⟨PSH+ACK → RST⟩
single_rstack               ⟨PSH+ACK → RST+ACK⟩
gfw                         ⟨PSH+ACK → RST; RST+ACK⟩
gfw_double_rstack           ⟨PSH+ACK → RST+ACK; RST+ACK⟩
same_ack_injector           ⟨PSH+ACK → RST = RST⟩
korea_guesser               ⟨PSH+ACK → RST ≠ RST⟩
zero_ack_injector           ⟨PSH+ACK → RST; RST₀⟩
enterprise_rst              ⟨PSH+ACK; Data → RST⟩
enterprise_firewall         ⟨PSH+ACK; Data → RST+ACK⟩
==========================  =========================================
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional

from repro.middlebox.actions import BlackholeMode
from repro.middlebox.device import TamperBehavior, TamperingMiddlebox, TriggerStage
from repro.middlebox.injector import (
    AckStrategy,
    ForgedHeaderProfile,
    InjectionSpec,
    IpIdStrategy,
    RstBurst,
    TtlStrategy,
)
from repro.middlebox.actions import Verdict
from repro.middlebox.policy import BlockPolicy
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet, PacketDirection

__all__ = ["VENDOR_PRESETS", "make_preset", "preset_names"]

Categorizer = Optional[Callable[[str], FrozenSet[str]]]


def _device(
    name: str,
    policy: BlockPolicy,
    behavior: TamperBehavior,
    seed: int,
    categorizer: Categorizer,
) -> TamperingMiddlebox:
    return TamperingMiddlebox(policy, behavior, name=name, seed=seed, categorizer=categorizer)


# ---------------------------------------------------------------------------
# Post-SYN personalities (IP/port-based blocking, no application data yet)
# ---------------------------------------------------------------------------

def syn_blackhole(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Let the SYN reach the server, then blackhole the flow → ⟨SYN → ∅⟩."""
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_SYN,
        drop_trigger=False,
        blackhole=BlackholeMode.BOTH,
    )
    return _device("syn-blackhole", policy, behavior, seed, categorizer)


def syn_rst_injector(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Answer blocked SYNs with a forged RST to each side → ⟨SYN → RST⟩."""
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RST, 1),),
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.COUNTER, ttl=TtlStrategy.CONSTANT, ttl_value=255),
    )
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_SYN,
        inject_to_server=spec,
        inject_to_client=spec,
        blackhole=BlackholeMode.BOTH,
    )
    return _device("syn-rst-injector", policy, behavior, seed, categorizer)


def syn_rstack_injector(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Forged RST+ACKs after the SYN → ⟨SYN → RST+ACK⟩."""
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RSTACK, 1),),
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.RANDOM, ttl=TtlStrategy.CONSTANT, ttl_value=128),
    )
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_SYN,
        inject_to_server=spec,
        inject_to_client=spec,
        blackhole=BlackholeMode.BOTH,
    )
    return _device("syn-rstack-injector", policy, behavior, seed, categorizer)


def gfw_syn(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """GFW-style mid-handshake blocking → ⟨SYN → RST; RST+ACK⟩."""
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RST, 1), RstBurst(TCPFlags.RSTACK, 1)),
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.RANDOM, ttl=TtlStrategy.CONSTANT, ttl_value=110),
    )
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_SYN,
        inject_to_server=spec,
        inject_to_client=spec,
        blackhole=BlackholeMode.BOTH,
    )
    return _device("gfw-syn", policy, behavior, seed, categorizer)


# ---------------------------------------------------------------------------
# Post-ACK personalities (first data packet suppressed in-path)
# ---------------------------------------------------------------------------

def iran_drop(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Drop the offending ClientHello and everything after → ⟨SYN; ACK → ∅⟩.

    Matches the behaviour Basso observed in Iran in 2020: the client's
    first data packet never reaches the server, which saw only the
    handshake.
    """
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_FIRST_DATA,
        drop_trigger=True,
        blackhole=BlackholeMode.CLIENT_TO_SERVER,
        residual_seconds=30.0,
    )
    return _device("iran-drop", policy, behavior, seed, categorizer)


def _post_ack_injector(
    name: str,
    flags: TCPFlags,
    count: int,
    ttl_value: int,
    policy: BlockPolicy,
    seed: int,
    categorizer: Categorizer,
) -> TamperingMiddlebox:
    spec = InjectionSpec(
        bursts=(RstBurst(flags, count),),
        ack=AckStrategy.CORRECT,
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.COUNTER, ttl=TtlStrategy.CONSTANT, ttl_value=ttl_value),
    )
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_FIRST_DATA,
        drop_trigger=True,  # the offending request never reaches the server
        inject_to_server=spec,
        inject_to_client=spec,
        blackhole=BlackholeMode.CLIENT_TO_SERVER,
        residual_seconds=30.0,
    )
    return _device(name, policy, behavior, seed, categorizer)


def tm_http(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Turkmenistan-style HTTP blocking → ⟨SYN; ACK → RST⟩.

    The policy passed in should be port-scoped to 80 (see
    :class:`~repro.middlebox.policy.PortRule`); TLS flows pass untouched.
    """
    return _post_ack_injector("tm-http", TCPFlags.RST, 1, 64, policy, seed, categorizer)


#: The forged response an Iranian-style block-page injector serves.
BLOCKPAGE_BODY: bytes = (
    b"HTTP/1.1 403 Forbidden\r\n"
    b"Content-Type: text/html\r\n"
    b"Content-Length: 62\r\n\r\n"
    b"<html><body><h1>Access to this site is denied</h1></body></html>"[:62]
)


def iran_blockpage(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Drop the request, serve a block page, RST the server → ⟨SYN; ACK → RST⟩.

    Models the behaviour Aryan et al. observed in Iran in 2013: the
    offending request is dropped, the *client* receives a forged block
    page, and the *server* receives injected tear-down packets.  The
    block page itself is invisible to the server-side methodology
    (paper footnote 2) -- only the RST arrives at the edge.
    """
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RST, 1),),
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.COUNTER, ttl=TtlStrategy.CONSTANT, ttl_value=255),
    )
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_FIRST_DATA,
        drop_trigger=True,
        inject_to_server=spec,
        blackhole=BlackholeMode.CLIENT_TO_SERVER,
        residual_seconds=30.0,
        blockpage=BLOCKPAGE_BODY,
    )
    return _device("iran-blockpage", policy, behavior, seed, categorizer)


def iran_double_rst(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Drop the request, inject two RSTs → ⟨SYN; ACK → RST; RST⟩."""
    return _post_ack_injector("iran-double-rst", TCPFlags.RST, 2, 200, policy, seed, categorizer)


def iran_rstack(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Drop the request, inject one RST+ACK → ⟨SYN; ACK → RST+ACK⟩."""
    return _post_ack_injector("iran-rstack", TCPFlags.RSTACK, 1, 255, policy, seed, categorizer)


def iran_double_rstack(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Drop the request, inject RST+ACKs → ⟨SYN; ACK → RST+ACK; RST+ACK⟩."""
    return _post_ack_injector("iran-double-rstack", TCPFlags.RSTACK, 2, 255, policy, seed, categorizer)


# ---------------------------------------------------------------------------
# Post-PSH personalities (trigger reaches the server; off-path injection)
# ---------------------------------------------------------------------------

def psh_blackhole(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Blackhole the flow after the first data packet → ⟨PSH+ACK → ∅⟩."""
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_FIRST_DATA,
        drop_trigger=False,
        blackhole=BlackholeMode.BOTH,
        residual_seconds=30.0,
    )
    return _device("psh-blackhole", policy, behavior, seed, categorizer)


def _post_psh_injector(
    name: str,
    spec: InjectionSpec,
    policy: BlockPolicy,
    seed: int,
    categorizer: Categorizer,
    residual: float = 60.0,
) -> TamperingMiddlebox:
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_FIRST_DATA,
        drop_trigger=False,
        inject_to_server=spec,
        inject_to_client=spec,
        blackhole=BlackholeMode.NONE,
        residual_seconds=residual,
    )
    return _device(name, policy, behavior, seed, categorizer)


def single_rst(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """One forged RST after the request → ⟨PSH+ACK → RST⟩."""
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RST, 1),),
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.RANDOM, ttl=TtlStrategy.CONSTANT, ttl_value=128),
    )
    return _post_psh_injector("single-rst", spec, policy, seed, categorizer)


def single_rstack(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """One forged RST+ACK after the request → ⟨PSH+ACK → RST+ACK⟩."""
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RSTACK, 1),),
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.COPY, ttl=TtlStrategy.MATCH_CLIENT),
    )
    return _post_psh_injector("single-rstack", spec, policy, seed, categorizer)


def gfw(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """The Great Firewall's classic burst → ⟨PSH+ACK → RST; RST+ACK⟩.

    One RST plus RST+ACKs, random IP-IDs, distinctive initial TTL, and
    ~90 s of residual censorship for the (client, domain) pair.
    """
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RST, 1), RstBurst(TCPFlags.RSTACK, 2)),
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.RANDOM, ttl=TtlStrategy.CONSTANT, ttl_value=110),
    )
    return _post_psh_injector("gfw", spec, policy, seed, categorizer, residual=90.0)


def gfw_double_rstack(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """China's secondary HTTPS middlebox → ⟨PSH+ACK → RST+ACK; RST+ACK⟩."""
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RSTACK, 3),),
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.RANDOM, ttl=TtlStrategy.CONSTANT, ttl_value=99),
    )
    return _post_psh_injector("gfw-double-rstack", spec, policy, seed, categorizer, residual=90.0)


def same_ack_injector(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Repeated identical RSTs → ⟨PSH+ACK → RST = RST⟩."""
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RST, 2),),
        ack=AckStrategy.SAME_WRONG,
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.COUNTER, ttl=TtlStrategy.CONSTANT, ttl_value=64),
    )
    return _post_psh_injector("same-ack-injector", spec, policy, seed, categorizer)


def korea_guesser(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """ACK-guessing injector with random TTLs → ⟨PSH+ACK → RST ≠ RST⟩.

    Reproduces the South Korean ISP behaviour the paper highlights:
    multiple RSTs whose acknowledgment numbers sweep forward and whose
    TTLs look random.
    """
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RST, 3),),
        ack=AckStrategy.GUESS,
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.RANDOM, ttl=TtlStrategy.RANDOM),
    )
    return _post_psh_injector("korea-guesser", spec, policy, seed, categorizer)


def zero_ack_injector(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """RST pair where one ACK number is zero → ⟨PSH+ACK → RST; RST₀⟩."""
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RST, 2),),
        ack=AckStrategy.MIX_ZERO,
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.RANDOM, ttl=TtlStrategy.CONSTANT, ttl_value=44),
    )
    return _post_psh_injector("zero-ack-injector", spec, policy, seed, categorizer)


def gfw_ech(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """China's wholesale encrypted-SNI blocking → ⟨PSH+ACK → RST; RST+ACK⟩.

    Ignores the supplied policy's domain rules entirely: *any* TLS
    handshake carrying an ESNI/ECH extension is torn down with the GFW
    burst, because the censor cannot read the name it would otherwise
    match (paper footnote 1, reference [19]).
    """
    from repro.middlebox.policy import EncryptedSniRule

    ech_policy = BlockPolicy([EncryptedSniRule()], name="gfw-ech")
    spec = InjectionSpec(
        bursts=(RstBurst(TCPFlags.RST, 1), RstBurst(TCPFlags.RSTACK, 2)),
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.RANDOM, ttl=TtlStrategy.CONSTANT, ttl_value=110),
    )
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_FIRST_DATA,
        drop_trigger=False,
        inject_to_server=spec,
        inject_to_client=spec,
        residual_seconds=90.0,
    )
    return _device("gfw-ech", ech_policy, behavior, seed, categorizer)


# ---------------------------------------------------------------------------
# Post-multiple-data personalities (keyword scanning, enterprise devices)
# ---------------------------------------------------------------------------

def _post_data_injector(
    name: str,
    flags: TCPFlags,
    policy: BlockPolicy,
    seed: int,
    categorizer: Categorizer,
) -> TamperingMiddlebox:
    spec = InjectionSpec(
        bursts=(RstBurst(flags, 1),),
        headers=ForgedHeaderProfile(ip_id=IpIdStrategy.COPY, ttl=TtlStrategy.MATCH_CLIENT),
    )
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_ANY_DATA,
        drop_trigger=False,
        inject_to_server=spec,
        inject_to_client=spec,
        blackhole=BlackholeMode.NONE,
    )
    return _device(name, policy, behavior, seed, categorizer)


def enterprise_rst(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Keyword-scanning firewall, RST teardown → ⟨PSH+ACK; Data → RST⟩."""
    return _post_data_injector("enterprise-rst", TCPFlags.RST, policy, seed, categorizer)


def enterprise_firewall(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """Commercial firewall, RST+ACK teardown → ⟨PSH+ACK; Data → RST+ACK⟩."""
    return _post_data_injector("enterprise-firewall", TCPFlags.RSTACK, policy, seed, categorizer)


# ---------------------------------------------------------------------------
# The paper's §6 evasion thought experiment
# ---------------------------------------------------------------------------

class _EvasiveCensor(TamperingMiddlebox):
    """The paper's "ideal tampering strategy" (§6, concluding remarks).

    Blocks content from the server to the client (so the client gets
    nothing objectionable) while *continuing the connection to the
    server as if it were the client*: it ACKs the server's response data
    and completes a graceful FIN handshake, all spoofed from the client.
    The server-side capture is indistinguishable from a healthy
    connection, so the passive methodology detects nothing.

    The paper notes this requires an in-path (packet-dropping) censor,
    which is uncommon in practice -- this class exists to demonstrate the
    methodology's stated blind spot, and is deliberately not part of any
    country profile.
    """

    def process(self, pkt: Packet, now: float) -> Verdict:  # type: ignore[override]
        from repro.middlebox.actions import Verdict as _V

        state = self._flow_state(pkt)
        if state.triggered:
            if pkt.direction == PacketDirection.TO_SERVER:
                # Drop the real client's packets; we speak for it now.
                return _V.drop()
            # Server-to-client traffic: suppress it, and impersonate the
            # client back toward the server.
            forged: list = []
            advance = len(pkt.payload) + (1 if (pkt.flags.is_syn or pkt.flags.is_fin) else 0)
            if advance:
                ack = (pkt.seq + advance) % (1 << 32)
                flags = TCPFlags.FINACK if pkt.flags.is_fin else TCPFlags.ACK
                seq = state.client_next_seq
                if pkt.flags.is_fin:
                    state.client_next_seq = (state.client_next_seq + 1) % (1 << 32)
                forged.append(
                    Packet(
                        ts=now,
                        src=state.client_ip,
                        dst=state.server_ip,
                        sport=state.client_port,
                        dport=state.server_port,
                        ttl=64,
                        ip_id=self._ip_id_counter.next() if state.ip_version == 4 else 0,
                        ip_version=state.ip_version,
                        seq=seq,
                        ack=ack,
                        flags=flags,
                        direction=PacketDirection.TO_SERVER,
                        injected=True,
                    )
                )
            return _V(forward=False, to_server=forged)
        return super().process(pkt, now)


def evasive_censor(policy: BlockPolicy, seed: int = 0, categorizer: Categorizer = None) -> TamperingMiddlebox:
    """§6's passive-detection-proof censor (drop-capable, in-path)."""
    behavior = TamperBehavior(
        trigger_stage=TriggerStage.ON_FIRST_DATA,
        drop_trigger=False,  # the trigger must reach the server to elicit a response
        residual_seconds=30.0,
    )
    device = _EvasiveCensor(policy, behavior, name="evasive-censor", seed=seed,
                            categorizer=categorizer)
    return device


#: Registry used by world-model configuration files.
VENDOR_PRESETS: Dict[str, Callable[..., TamperingMiddlebox]] = {
    "syn_blackhole": syn_blackhole,
    "syn_rst_injector": syn_rst_injector,
    "syn_rstack_injector": syn_rstack_injector,
    "gfw_syn": gfw_syn,
    "iran_drop": iran_drop,
    "iran_blockpage": iran_blockpage,
    "tm_http": tm_http,
    "iran_double_rst": iran_double_rst,
    "iran_rstack": iran_rstack,
    "iran_double_rstack": iran_double_rstack,
    "psh_blackhole": psh_blackhole,
    "single_rst": single_rst,
    "single_rstack": single_rstack,
    "gfw": gfw,
    "gfw_ech": gfw_ech,
    "gfw_double_rstack": gfw_double_rstack,
    "same_ack_injector": same_ack_injector,
    "korea_guesser": korea_guesser,
    "zero_ack_injector": zero_ack_injector,
    "enterprise_rst": enterprise_rst,
    "enterprise_firewall": enterprise_firewall,
    "evasive_censor": evasive_censor,
}


def preset_names() -> list:
    """Sorted names of all vendor presets."""
    return sorted(VENDOR_PRESETS)


def make_preset(
    name: str,
    policy: BlockPolicy,
    seed: int = 0,
    categorizer: Categorizer = None,
) -> TamperingMiddlebox:
    """Instantiate a vendor preset by name."""
    try:
        factory = VENDOR_PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown vendor preset {name!r}; choose from {preset_names()}") from None
    return factory(policy, seed=seed, categorizer=categorizer)
