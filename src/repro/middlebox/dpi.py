"""Deep-packet inspection: per-flow reassembly and domain extraction.

A real DPI box keeps a small amount of per-flow state: the client payload
bytes seen so far (bounded), and whether a domain has been extracted yet.
:class:`DpiEngine` implements exactly that, delegating protocol parsing to
:func:`repro.netstack.tls.extract_sni` and
:func:`repro.netstack.http.extract_host`.

Inspection is *inbound-biased by design*: the engine only accumulates
client-to-server payload, because that is where the SNI / Host / GET
keywords live (paper §2.1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.netstack.http import extract_host, is_http_request
from repro.netstack.packet import Packet, PacketDirection
from repro.netstack.tls import extract_sni, is_tls_client_hello

__all__ = ["FlowInspection", "DpiEngine"]

#: Bound on reassembled bytes per flow -- real DPI engines inspect a prefix.
_MAX_INSPECT_BYTES = 8192


@dataclasses.dataclass
class FlowInspection:
    """Accumulated DPI knowledge about one flow.

    Client payload is reassembled *by sequence number*, not arrival
    order: real DPI engines do the same, and it makes the inspection
    robust to retransmissions (same seq twice contributes once) and to
    segments arriving out of order.
    """

    segments: Dict[int, bytes] = dataclasses.field(default_factory=dict)
    _payload_bytes: int = 0
    domain: Optional[str] = None
    protocol: Optional[str] = None  # "tls" | "http" | None
    client_data_packets: int = 0
    saw_syn: bool = False
    saw_client_ack: bool = False

    @property
    def has_domain(self) -> bool:
        return self.domain is not None

    @property
    def payload(self) -> bytes:
        """The reassembled client payload prefix, in sequence order."""
        return b"".join(self.segments[seq] for seq in sorted(self.segments))

    def add_segment(self, seq: int, data: bytes, budget: int) -> bool:
        """Record one data segment; returns True if it was new."""
        if seq in self.segments:
            return False  # retransmission: already inspected
        if self._payload_bytes >= budget:
            return False  # inspection prefix full
        room = budget - self._payload_bytes
        self.segments[seq] = data[:room]
        self._payload_bytes += min(len(data), room)
        return True


class DpiEngine:
    """Stateful inspection over many concurrent flows.

    ``observe`` ingests one packet and returns the (possibly updated)
    :class:`FlowInspection` for its flow.  Flows are keyed by the
    direction-independent connection tuple, so the engine also sees
    server packets (it needs them only to know handshake progress).
    """

    def __init__(self, max_inspect_bytes: int = _MAX_INSPECT_BYTES) -> None:
        self._flows: Dict[Tuple[str, int, str, int], FlowInspection] = {}
        self._max_bytes = max_inspect_bytes

    def __len__(self) -> int:
        return len(self._flows)

    def flow(self, pkt: Packet) -> FlowInspection:
        """Return (creating if needed) the inspection state for ``pkt``."""
        return self._flows.setdefault(pkt.conn_key, FlowInspection())

    def forget(self, pkt: Packet) -> None:
        """Drop per-flow state (device observed flow teardown)."""
        self._flows.pop(pkt.conn_key, None)

    def forget_key(self, conn_key: Tuple[str, int, str, int]) -> None:
        """Drop per-flow state by connection key."""
        self._flows.pop(conn_key, None)

    def observe(self, pkt: Packet) -> FlowInspection:
        """Ingest one packet; returns the flow's updated inspection state."""
        state = self.flow(pkt)
        if pkt.direction != PacketDirection.TO_SERVER:
            return state

        if pkt.flags.is_syn:
            state.saw_syn = True
            # TCP Fast-Open-style SYNs can carry data; fall through.
        elif pkt.flags.is_ack and not pkt.has_payload:
            state.saw_client_ack = True

        if pkt.has_payload:
            if pkt.seq not in state.segments:
                state.client_data_packets += 1
            state.add_segment(pkt.seq, bytes(pkt.payload), self._max_bytes)
            if not state.has_domain:
                self._try_extract(state)
        return state

    def _try_extract(self, state: FlowInspection) -> None:
        """Attempt domain extraction from the reassembled prefix."""
        data = bytes(state.payload)
        if is_tls_client_hello(data):
            state.protocol = "tls"
            sni = extract_sni(data)
            if sni:
                state.domain = sni
        elif is_http_request(data):
            state.protocol = "http"
            host = extract_host(data)
            if host:
                state.domain = host
