"""Tampering middlebox models.

This subpackage simulates the in-network devices the paper detects:
deep-packet-inspection engines that extract SNI / Host / keywords from
client traffic (:mod:`repro.middlebox.dpi`), blocking policies over
domains, keywords, IPs and categories (:mod:`repro.middlebox.policy`),
forged-packet factories with configurable header personalities
(:mod:`repro.middlebox.injector`), the stateful device itself
(:mod:`repro.middlebox.device`), and presets reproducing published censor
fingerprints -- the GFW, Iran's DPI, Turkmenistan, Russia's TSPU, a South
Korean ISP, enterprise firewalls, and more (:mod:`repro.middlebox.vendors`).
"""

from repro.middlebox.actions import BlackholeMode, Verdict
from repro.middlebox.policy import (
    BlockPolicy,
    CategoryRule,
    DomainRule,
    ExactIpRule,
    IpRule,
    KeywordRule,
    PortRule,
    SubstringRule,
)
from repro.middlebox.dpi import DpiEngine, FlowInspection
from repro.middlebox.injector import (
    AckStrategy,
    ForgedHeaderProfile,
    InjectionSpec,
    IpIdStrategy,
    RstBurst,
    SeqStrategy,
    TtlStrategy,
)
from repro.middlebox.device import Middlebox, TamperBehavior, TamperingMiddlebox, TriggerStage
from repro.middlebox import vendors

__all__ = [
    "BlackholeMode",
    "Verdict",
    "BlockPolicy",
    "DomainRule",
    "SubstringRule",
    "KeywordRule",
    "IpRule",
    "ExactIpRule",
    "PortRule",
    "CategoryRule",
    "DpiEngine",
    "FlowInspection",
    "InjectionSpec",
    "RstBurst",
    "AckStrategy",
    "SeqStrategy",
    "IpIdStrategy",
    "TtlStrategy",
    "ForgedHeaderProfile",
    "Middlebox",
    "TamperingMiddlebox",
    "TamperBehavior",
    "TriggerStage",
    "vendors",
]
