"""The stateful tampering middlebox.

:class:`TamperingMiddlebox` combines a :class:`~repro.middlebox.policy.BlockPolicy`
(*what* to block) with a :class:`TamperBehavior` (*how* to block) and
tracks per-flow state: DPI reassembly, sequence numbers of both
endpoints, installed blackholes, and residual-censorship timers.

The path simulator calls :meth:`process` for every packet crossing the
device, in either direction, and obeys the returned
:class:`~repro.middlebox.actions.Verdict`.
"""

from __future__ import annotations

import dataclasses
import enum
import random
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.middlebox.actions import BlackholeMode, Verdict
from repro.middlebox.dpi import DpiEngine, FlowInspection
from repro.middlebox.injector import FlowSnapshot, InjectionSpec, forge_packets, _IpIdCounter
from repro.middlebox.policy import BlockPolicy, FlowContext
from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet, PacketDirection

__all__ = ["TriggerStage", "TamperBehavior", "Middlebox", "TamperingMiddlebox"]


class TriggerStage(enum.Enum):
    """When in the connection lifetime a device evaluates its policy."""

    ON_SYN = "on_syn"  # IP/port blocking before any data
    ON_FIRST_DATA = "on_first_data"  # the usual SNI / Host / GET trigger
    ON_ANY_DATA = "on_any_data"  # late classification: fires on data packets after the first


@dataclasses.dataclass
class TamperBehavior:
    """*How* a device tampers once its policy matches.

    ``drop_trigger`` -- discard the offending packet itself (in-path
    devices); when False the trigger reaches the server (off-path
    injectors), which is what lets the paper observe trigger domains.

    ``inject_to_server`` / ``inject_to_client`` -- forged tear-down
    personalities for each direction (None = no injection that way).

    ``blackhole`` -- directions to silently discard after triggering.

    ``residual_seconds`` -- how long the (client IP, server IP) pair
    stays blocked after a trigger, *regardless of content*: the residual
    censorship documented for the GFW, where even innocent requests from
    the same client to the same server die for tens of seconds after one
    forbidden one.
    """

    trigger_stage: TriggerStage = TriggerStage.ON_FIRST_DATA
    drop_trigger: bool = False
    inject_to_server: Optional[InjectionSpec] = None
    inject_to_client: Optional[InjectionSpec] = None
    blackhole: BlackholeMode = BlackholeMode.NONE
    residual_seconds: float = 0.0
    #: Forged response content (e.g. an HTTP block page) injected toward
    #: the client, spoofed from the server, before any tear-down packets.
    #: The paper notes such devices exist but are invisible to the
    #: server-side methodology (footnote 2); modelling them lets tests
    #: confirm that invisibility.
    blockpage: Optional[bytes] = None

    @property
    def is_pure_drop(self) -> bool:
        """True when the behaviour injects nothing (drop-only censor)."""
        return self.inject_to_server is None and self.inject_to_client is None


@dataclasses.dataclass
class _FlowState:
    """Device-side bookkeeping for one flow."""

    blackhole: BlackholeMode = BlackholeMode.NONE
    triggered: bool = False
    client_next_seq: int = 0
    server_next_seq: int = 0
    client_ip: str = ""
    client_port: int = 0
    server_ip: str = ""
    server_port: int = 0
    client_last_ip_id: int = 0
    client_ttl_at_device: int = 64
    ip_version: int = 4


class Middlebox:
    """Base class: a transparent device that forwards everything."""

    name = "transparent"

    def process(self, pkt: Packet, now: float) -> Verdict:
        """Inspect one transiting packet and decide its fate."""
        return Verdict.allow()

    def reset(self) -> None:
        """Clear all per-flow state (new simulation epoch)."""

    def forget_flow(self, conn_key) -> None:
        """Release per-flow state for one finished connection.

        Long-lived devices are reused across millions of simulated
        connections; the driver calls this after each one so memory does
        not grow.  Residual-censorship state (keyed by client and domain,
        not by flow) deliberately survives.
        """


class TamperingMiddlebox(Middlebox):
    """A policy-driven tampering device.

    ``categorizer`` optionally maps a domain to its content categories so
    that :class:`~repro.middlebox.policy.CategoryRule` rules can fire.
    ``seed`` fixes the device's private randomness (forged IP-IDs, TTLs).
    """

    def __init__(
        self,
        policy: BlockPolicy,
        behavior: TamperBehavior,
        name: str = "tampering-device",
        seed: int = 0,
        categorizer: Optional[Callable[[str], FrozenSet[str]]] = None,
    ) -> None:
        self.policy = policy
        self.behavior = behavior
        self.name = name
        self._rng = random.Random(seed)
        self._dpi = DpiEngine()
        self._flows: Dict[Tuple[str, int, str, int], _FlowState] = {}
        self._residual: Dict[Tuple[str, Optional[str]], float] = {}
        self._ip_id_counter = _IpIdCounter(self._rng.randrange(0, 0x10000))
        self._categorizer = categorizer
        self.triggers = 0

    def reset(self) -> None:
        self._dpi = DpiEngine()
        self._flows.clear()
        self._residual.clear()

    def forget_flow(self, conn_key) -> None:
        self._flows.pop(conn_key, None)
        self._dpi.forget_key(conn_key)

    # ------------------------------------------------------------------
    def _flow_state(self, pkt: Packet) -> _FlowState:
        state = self._flows.get(pkt.conn_key)
        if state is None:
            state = _FlowState(ip_version=pkt.ip_version)
            self._flows[pkt.conn_key] = state
        return state

    def _update_seq_tracking(self, pkt: Packet, state: _FlowState) -> None:
        """Track both endpoints' next sequence numbers from observation."""
        advance = len(pkt.payload) + (1 if (pkt.flags.is_syn or pkt.flags.is_fin) else 0)
        nxt = (pkt.seq + advance) % (1 << 32)
        if pkt.direction == PacketDirection.TO_SERVER:
            state.client_ip, state.client_port = pkt.src, pkt.sport
            state.server_ip, state.server_port = pkt.dst, pkt.dport
            state.client_next_seq = nxt
            state.client_last_ip_id = pkt.ip_id
            state.client_ttl_at_device = pkt.ttl
        else:
            state.server_next_seq = nxt

    def _context(self, pkt: Packet, state: _FlowState, inspection: FlowInspection) -> FlowContext:
        categories: FrozenSet[str] = frozenset()
        if inspection.domain and self._categorizer is not None:
            categories = self._categorizer(inspection.domain)
        return FlowContext(
            server_ip=state.server_ip or pkt.dst,
            server_port=state.server_port or pkt.dport,
            client_ip=state.client_ip or pkt.src,
            domain=inspection.domain,
            payload=bytes(inspection.payload),
            categories=categories,
        )

    def _should_trigger(self, pkt: Packet, state: _FlowState, inspection: FlowInspection) -> bool:
        if state.triggered:
            return False
        if pkt.direction != PacketDirection.TO_SERVER:
            return False
        stage = self.behavior.trigger_stage
        if stage == TriggerStage.ON_SYN:
            if not pkt.flags.is_syn:
                return False
        elif stage == TriggerStage.ON_FIRST_DATA:
            if not pkt.has_payload or inspection.client_data_packets != 1:
                return False
        else:  # ON_ANY_DATA: commercial devices that classify late -- the
            # verdict lands on a data packet after the first, so the
            # server has already seen multiple data segments (Post-Data).
            if not pkt.has_payload or inspection.client_data_packets < 2:
                return False
        ctx = self._context(pkt, state, inspection)
        if stage == TriggerStage.ON_SYN:
            return self.policy.matches_pre_data(ctx)
        return self.policy.matches(ctx)

    def _residual_key(self, state: _FlowState) -> Tuple[str, str]:
        return (state.client_ip, state.server_ip)

    def _fire(self, pkt: Packet, state: _FlowState, now: float) -> Verdict:
        """Apply the tampering behaviour to a triggering packet."""
        self.triggers += 1
        state.triggered = True
        behavior = self.behavior
        snapshot = FlowSnapshot(
            client_ip=state.client_ip or pkt.src,
            client_port=state.client_port or pkt.sport,
            server_ip=state.server_ip or pkt.dst,
            server_port=state.server_port or pkt.dport,
            # If the trigger is dropped, the forged seq must match what the
            # server actually expects (the trigger never advanced it).
            client_next_seq=(pkt.seq if behavior.drop_trigger and pkt.has_payload else state.client_next_seq),
            server_next_seq=state.server_next_seq,
            client_ip_id=state.client_last_ip_id,
            client_initial_ttl=state.client_ttl_at_device,
            ip_version=state.ip_version,
        )
        verdict = Verdict(forward=not behavior.drop_trigger)
        if behavior.blockpage is not None:
            # A forged data packet spoofed from the server, carrying the
            # block page; the client ACKs it like genuine content.
            verdict.to_client.append(
                Packet(
                    ts=now,
                    src=state.server_ip or pkt.dst,
                    dst=state.client_ip or pkt.src,
                    sport=state.server_port or pkt.dport,
                    dport=state.client_port or pkt.sport,
                    ttl=64,
                    ip_id=self._ip_id_counter.next() if state.ip_version == 4 else 0,
                    ip_version=state.ip_version,
                    seq=state.server_next_seq,
                    ack=snapshot.client_next_seq,
                    flags=TCPFlags.PSHACK,
                    payload=behavior.blockpage,
                    direction=PacketDirection.TO_CLIENT,
                    injected=True,
                )
            )
        if behavior.inject_to_server is not None:
            verdict.to_server = forge_packets(
                behavior.inject_to_server,
                snapshot,
                now,
                self._rng,
                counter=self._ip_id_counter,
                toward=PacketDirection.TO_SERVER,
            )
        if behavior.inject_to_client is not None:
            verdict.to_client = forge_packets(
                behavior.inject_to_client,
                snapshot,
                now,
                self._rng,
                counter=self._ip_id_counter,
                toward=PacketDirection.TO_CLIENT,
            )
        if behavior.blackhole != BlackholeMode.NONE:
            state.blackhole = behavior.blackhole
            verdict.blackhole = behavior.blackhole
        return verdict

    # ------------------------------------------------------------------
    def process(self, pkt: Packet, now: float) -> Verdict:
        state = self._flow_state(pkt)

        # Installed blackhole: discard matching-direction packets.
        if state.blackhole != BlackholeMode.NONE:
            inbound = pkt.direction == PacketDirection.TO_SERVER
            if inbound and state.blackhole & BlackholeMode.CLIENT_TO_SERVER:
                return Verdict.drop()
            if not inbound and state.blackhole & BlackholeMode.SERVER_TO_CLIENT:
                return Verdict.drop()

        inspection = self._dpi.observe(pkt)
        self._update_seq_tracking(pkt, state)

        # Residual censorship: an earlier trigger for this (client,
        # server) pair still applies -- repeat the behaviour without
        # re-matching, whatever the new request asks for.
        if (
            not state.triggered
            and self.behavior.residual_seconds > 0
            and pkt.direction == PacketDirection.TO_SERVER
            and pkt.has_payload
        ):
            key = self._residual_key(state)
            expiry = self._residual.get(key)
            if expiry is not None and now <= expiry:
                # The window is fixed from the triggering event (it does
                # not refresh on residually-blocked traffic), which is
                # what makes it measurable by timed probing.
                return self._fire(pkt, state, now)

        if self._should_trigger(pkt, state, inspection):
            if self.behavior.residual_seconds > 0:
                self._residual[self._residual_key(state)] = now + self.behavior.residual_seconds
            return self._fire(pkt, state, now)

        return Verdict.allow()
