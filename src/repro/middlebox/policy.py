"""Blocking policies: the rules that decide *what* gets tampered with.

A :class:`BlockPolicy` is an ordered rule list evaluated against a
:class:`FlowContext` -- the facts a DPI engine has established about a
flow (destination address/port, extracted domain, raw client payload).
Rule types mirror the trigger classes documented in censorship
measurement literature and the paper:

* exact domain lists (block-list entries),
* substring rules (the over-blocking the paper cites, e.g. Turkmenistan
  blocking every domain containing ``wn.com``),
* raw payload keywords (HTTP GET keyword censorship),
* destination IP prefixes (mid-handshake blocking, where no
  application-layer data exists yet),
* destination ports, and
* content categories (policy expressed against a category database).
"""

from __future__ import annotations

import dataclasses
import ipaddress
from typing import Callable, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "FlowContext",
    "Rule",
    "DomainRule",
    "SubstringRule",
    "KeywordRule",
    "EncryptedSniRule",
    "IpRule",
    "ExactIpRule",
    "PortRule",
    "CategoryRule",
    "BlockPolicy",
]


@dataclasses.dataclass
class FlowContext:
    """Everything a policy may inspect about one flow.

    ``domain`` is the SNI or Host name once DPI has extracted it (None
    before any data packet, or when extraction failed).  ``categories``
    are filled in by deployments that subscribe to a category database.
    """

    server_ip: str
    server_port: int
    client_ip: str = ""
    domain: Optional[str] = None
    payload: bytes = b""
    categories: FrozenSet[str] = frozenset()

    @property
    def is_tls(self) -> bool:
        """Heuristic protocol split used by port-scoped rules."""
        return self.server_port == 443


class Rule:
    """Base class: a predicate over :class:`FlowContext`."""

    #: True if the rule can fire before any client payload is seen.
    pre_data: bool = False

    def matches(self, ctx: FlowContext) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclasses.dataclass(init=False)
class DomainRule(Rule):
    """Exact-match block-list over eTLD+1-or-full domain names.

    Matching is suffix-aware: blocking ``example.com`` also blocks
    ``www.example.com`` (censors block registered domains, and users
    request subdomains).
    """

    domains: FrozenSet[str]

    def __init__(self, domains: Iterable[str]) -> None:
        self.domains = frozenset(d.lower().strip(".") for d in domains)

    def matches(self, ctx: FlowContext) -> bool:
        if not ctx.domain:
            return False
        name = ctx.domain.lower().strip(".")
        while name:
            if name in self.domains:
                return True
            _, _, name = name.partition(".")
        return False

    def describe(self) -> str:
        return f"DomainRule({len(self.domains)} domains)"


@dataclasses.dataclass(init=False)
class SubstringRule(Rule):
    """Block any domain *containing* one of the fragments.

    Models the over-blocking behaviour of sloppy regex-based censors.
    """

    fragments: Tuple[str, ...]

    def __init__(self, fragments: Iterable[str]) -> None:
        self.fragments = tuple(f.lower() for f in fragments)

    def matches(self, ctx: FlowContext) -> bool:
        if not ctx.domain:
            return False
        name = ctx.domain.lower()
        return any(frag in name for frag in self.fragments)

    def describe(self) -> str:
        return f"SubstringRule({len(self.fragments)} fragments)"


@dataclasses.dataclass(init=False)
class KeywordRule(Rule):
    """Block flows whose raw client payload contains a byte keyword."""

    keywords: Tuple[bytes, ...]

    def __init__(self, keywords: Iterable[bytes]) -> None:
        self.keywords = tuple(bytes(k) for k in keywords)

    def matches(self, ctx: FlowContext) -> bool:
        if not ctx.payload:
            return False
        return any(kw in ctx.payload for kw in self.keywords)

    def describe(self) -> str:
        return f"KeywordRule({len(self.keywords)} keywords)"


class EncryptedSniRule(Rule):
    """Block TLS handshakes that hide their SNI (ESNI/ECH).

    Models China's wholesale blocking of encrypted-SNI handshakes (paper
    footnote 1): the censor cannot read the name, so it blocks the
    mechanism itself, regardless of destination.
    """

    def matches(self, ctx: FlowContext) -> bool:
        if not ctx.payload:
            return False
        from repro.netstack.tls import has_encrypted_sni

        return has_encrypted_sni(bytes(ctx.payload))

    def describe(self) -> str:
        return "EncryptedSniRule()"


@dataclasses.dataclass(init=False)
class IpRule(Rule):
    """Block destination IP prefixes (fires at SYN time)."""

    networks: Tuple[object, ...]
    pre_data = True

    def __init__(self, prefixes: Iterable[str]) -> None:
        self.networks = tuple(ipaddress.ip_network(p, strict=False) for p in prefixes)

    def matches(self, ctx: FlowContext) -> bool:
        try:
            addr = ipaddress.ip_address(ctx.server_ip)
        except ValueError:
            return False
        return any(addr.version == net.version and addr in net for net in self.networks)  # type: ignore[attr-defined]

    def describe(self) -> str:
        return f"IpRule({len(self.networks)} prefixes)"


@dataclasses.dataclass(init=False)
class ExactIpRule(Rule):
    """Block an exact set of destination addresses (O(1) lookup).

    The scalable variant of :class:`IpRule` for censors that block the
    known addresses of specific services -- at a CDN this produces
    collateral blocking of every domain sharing the address.
    """

    addresses: FrozenSet[str]
    pre_data = True

    def __init__(self, addresses: Iterable[str]) -> None:
        self.addresses = frozenset(addresses)

    def matches(self, ctx: FlowContext) -> bool:
        return ctx.server_ip in self.addresses

    def describe(self) -> str:
        return f"ExactIpRule({len(self.addresses)} addresses)"


@dataclasses.dataclass(frozen=True)
class PortRule(Rule):
    """Restrict another rule to specific destination ports.

    Used e.g. for Turkmenistan-style HTTP-only tampering (port 80 yes,
    port 443 no).
    """

    inner: Rule
    ports: FrozenSet[int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "ports", frozenset(self.ports))

    @property
    def pre_data(self) -> bool:  # type: ignore[override]
        return self.inner.pre_data

    def matches(self, ctx: FlowContext) -> bool:
        return ctx.server_port in self.ports and self.inner.matches(ctx)

    def describe(self) -> str:
        return f"PortRule(ports={sorted(self.ports)}, inner={self.inner.describe()})"


@dataclasses.dataclass(init=False)
class CategoryRule(Rule):
    """Block flows whose domain belongs to one of the given categories.

    The deployment must populate ``FlowContext.categories`` (the world
    model wires this to the synthetic category database).
    """

    categories: FrozenSet[str]

    def __init__(self, categories: Iterable[str]) -> None:
        self.categories = frozenset(categories)

    def matches(self, ctx: FlowContext) -> bool:
        return bool(self.categories & ctx.categories)

    def describe(self) -> str:
        return f"CategoryRule({sorted(self.categories)})"


class BlockPolicy:
    """An ordered list of rules; the policy matches if any rule matches."""

    def __init__(self, rules: Sequence[Rule] = (), name: str = "policy") -> None:
        self.rules: List[Rule] = list(rules)
        self.name = name

    def add(self, rule: Rule) -> "BlockPolicy":
        """Append a rule; returns self for chaining."""
        self.rules.append(rule)
        return self

    def matches(self, ctx: FlowContext) -> bool:
        """True if any rule matches the flow context."""
        return any(rule.matches(ctx) for rule in self.rules)

    def matches_pre_data(self, ctx: FlowContext) -> bool:
        """True if any *pre-data* rule (IP-based) matches -- SYN-time check."""
        return any(rule.matches(ctx) for rule in self.rules if rule.pre_data)

    @property
    def has_pre_data_rules(self) -> bool:
        return any(rule.pre_data for rule in self.rules)

    def describe(self) -> str:
        inner = ", ".join(rule.describe() for rule in self.rules)
        return f"BlockPolicy({self.name}: [{inner}])"

    @classmethod
    def nothing(cls) -> "BlockPolicy":
        """A policy that never matches (transparent device)."""
        return cls((), name="nothing")

    @classmethod
    def everything(cls) -> "BlockPolicy":
        """A policy that matches every flow with a known domain or SYN."""

        class _All(Rule):
            pre_data = True

            def matches(self, ctx: FlowContext) -> bool:
                return True

        return cls((_All(),), name="everything")
