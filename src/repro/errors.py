"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subclasses are
organised by subsystem (packet parsing, simulation, classification,
workload construction) to allow targeted handling in tests and tools.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PacketError",
    "PacketDecodeError",
    "PacketEncodeError",
    "ChecksumError",
    "OptionDecodeError",
    "ProtocolError",
    "TlsParseError",
    "HttpParseError",
    "PcapError",
    "SimulationError",
    "StateMachineError",
    "ClassificationError",
    "WorldError",
    "GeoError",
    "ConfigError",
    "StreamError",
    "TransientSourceError",
    "CheckpointError",
    "StoreError",
    "ServeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PacketError(ReproError):
    """Base class for packet-layer problems."""


class PacketDecodeError(PacketError):
    """Raised when raw bytes cannot be decoded into a :class:`Packet`."""


class PacketEncodeError(PacketError):
    """Raised when a :class:`Packet` cannot be serialised to bytes."""


class ChecksumError(PacketDecodeError):
    """Raised when a strict decode encounters a bad checksum."""


class OptionDecodeError(PacketDecodeError):
    """Raised when the TCP options area is malformed."""


class ProtocolError(ReproError):
    """Base class for application-layer (TLS/HTTP) parse errors."""


class TlsParseError(ProtocolError):
    """Raised when bytes do not contain a parseable TLS ClientHello."""


class HttpParseError(ProtocolError):
    """Raised when bytes do not contain a parseable HTTP/1.x request."""


class PcapError(ReproError):
    """Raised on malformed pcap files or unsupported link types."""


class SimulationError(ReproError):
    """Base class for errors inside the path simulator."""


class StateMachineError(SimulationError):
    """Raised when a TCP endpoint receives an event invalid for its state."""


class ClassificationError(ReproError):
    """Raised when a connection sample cannot be classified at all.

    Note that *unmatched* samples are not errors -- they classify as
    ``SignatureId.OTHER`` -- this exception marks malformed inputs such as
    empty samples or samples containing outbound packets.
    """


class WorldError(ReproError):
    """Raised for inconsistent world-model configuration."""


class GeoError(WorldError):
    """Raised when an address cannot be attributed to a (country, ASN)."""


class ConfigError(ReproError):
    """Raised for invalid user-facing configuration values."""


class StreamError(ReproError):
    """Raised for streaming-pipeline failures (dead workers, bad sources)."""


class TransientSourceError(StreamError):
    """A source read failed in a way that a retry may fix.

    Raised for conditions that resolve on their own -- an I/O hiccup, a
    JSONL file whose last line is still being written, an injected fault
    from :mod:`repro.stream.faults`.  The stream engine retries these
    with backoff (re-seeking the source to its own cursor) before giving
    up; every other :class:`StreamError` propagates immediately.
    """


class CheckpointError(StreamError):
    """Raised when a stream checkpoint cannot be read or is inconsistent."""


class StoreError(StreamError):
    """Raised for rollup-store failures (bad segments, manifest conflicts).

    The on-disk store (:mod:`repro.store`) treats any internal
    inconsistency -- a segment referenced by the manifest but missing, a
    bucket sealed twice, a WAL entry that cannot be decoded mid-file --
    as a :class:`StoreError` rather than silently producing wrong
    aggregates.
    """


class ServeError(ReproError):
    """Raised for service-tier failures (:mod:`repro.serve`).

    Covers configuration problems (bad ports, zero queue depths),
    protocol violations the HTTP layer cannot map to a 4xx response,
    and lifecycle misuse (pushing into a draining service).  Client-side
    request failures raised by :mod:`repro.serve.client` also derive
    from this class.
    """
