"""A small stdlib client for the serve tier.

Used by the tests, the closed-loop latency bench, and the tutorial; it
is also the reference for how to talk to the server from anything that
can speak HTTP.  Saturation is a first-class outcome: a ``429`` raises
:class:`RetryLater` carrying the server's ``Retry-After`` hint, so
load generators can implement honest backoff instead of hammering.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ServeError
from repro.obs import (
    REQUEST_ID_HEADER,
    TRACEPARENT_HEADER,
    HeadSampler,
    TraceContext,
    mint_request_id,
    mint_span_id,
    mint_trace_id,
)

__all__ = ["ServeClient", "RetryLater"]


class RetryLater(ServeError):
    """The server answered 429; retry after ``retry_after`` seconds."""

    def __init__(self, detail: str, retry_after: float) -> None:
        super().__init__(detail)
        self.retry_after = retry_after


class ServeClient:
    """One keep-alive connection to a :class:`ServeService`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        timeout: float = 30.0,
        client_id: Optional[str] = None,
        trace_sample_n: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id
        #: Head sampling: mint a W3C ``traceparent`` for 1 in N sample
        #: POSTs (0 disables).  The minted context is kept on
        #: ``last_trace`` so callers can find their span tree in the
        #: server's capture / export afterwards.
        self._trace_sampler = HeadSampler(trace_sample_n)
        self.last_trace: Optional[TraceContext] = None
        #: The request id sent with the most recent POST, and whatever
        #: id the server echoed on the most recent response.
        self.last_request_id: Optional[str] = None
        self.last_response_request_id: Optional[str] = None
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing -------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        send = dict(headers or {})
        if self.client_id is not None:
            send.setdefault("X-Client-Id", self.client_id)
        conn = self._connection()
        try:
            conn.request(method, path, body=body, headers=send)
            response = conn.getresponse()
            payload = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self.close()  # a broken keep-alive connection is not reusable
            raise ServeError(
                f"request to {self.host}:{self.port}{path} failed: {exc}"
            ) from exc
        response_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        echoed = response_headers.get(REQUEST_ID_HEADER)
        if echoed is not None:
            self.last_response_request_id = echoed
        if response_headers.get("connection", "").lower() == "close":
            self.close()
        return response.status, response_headers, payload

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        status, response_headers, payload = self._request(
            method, path, body=body, headers=headers
        )
        if status == 429:
            try:
                retry_after = float(response_headers.get("retry-after", "1"))
            except ValueError:
                retry_after = 1.0
            raise RetryLater(
                f"{path} rejected with 429", retry_after=retry_after
            )
        try:
            decoded = json.loads(payload) if payload else {}
        except json.JSONDecodeError as exc:
            raise ServeError(
                f"{path} returned undecodable JSON ({status})"
            ) from exc
        if status >= 400:
            detail = decoded.get("error", payload.decode("utf-8", "replace"))
            raise ServeError(f"{path} failed with {status}: {detail}")
        return decoded

    # -- ingest ---------------------------------------------------------
    def post_samples(
        self,
        samples: Iterable[object],
        timestamps: Optional[Dict[int, float]] = None,
    ) -> dict:
        """POST a batch of :class:`ConnectionSample` objects.

        ``timestamps`` optionally maps ``conn_id`` to connection start
        time (the shape ``StudyRun.timestamps`` provides); entries with
        a known start time are sent ``ts``-wrapped.
        """
        entries: List[object] = []
        for sample in samples:
            payload = sample.to_dict() if hasattr(sample, "to_dict") else sample
            ts = None
            if timestamps is not None:
                conn_id = payload.get("conn_id")
                ts = timestamps.get(conn_id)
            if ts is not None:
                entries.append({"ts": ts, "sample": payload})
            else:
                entries.append(payload)
        body = json.dumps(entries, separators=(",", ":")).encode("utf-8")
        request_id = mint_request_id()
        headers = {
            "Content-Type": "application/json",
            REQUEST_ID_HEADER: request_id,
        }
        if self._trace_sampler.decide():
            ctx = TraceContext(mint_trace_id(), mint_span_id(), sampled=True)
            headers[TRACEPARENT_HEADER] = ctx.to_traceparent()
            self.last_trace = ctx
        else:
            self.last_trace = None
        self.last_request_id = request_id
        return self._json("POST", "/v1/samples", body=body, headers=headers)

    # -- queries --------------------------------------------------------
    def query(
        self,
        family: str = "country_tampering_rate",
        start: Optional[float] = None,
        end: Optional[float] = None,
        country: Optional[str] = None,
        countries: Optional[Iterable[str]] = None,
    ) -> dict:
        params = [f"family={family}"]
        if start is not None:
            params.append(f"start={start}")
        if end is not None:
            params.append(f"end={end}")
        if country is not None:
            params.append(f"country={country}")
        if countries:
            params.append("countries=" + ",".join(countries))
        return self._json("GET", "/v1/query?" + "&".join(params))

    def anomalies(self) -> dict:
        return self._json("GET", "/v1/anomalies")

    # -- operational surface --------------------------------------------
    def metrics_text(self) -> str:
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"/metrics failed with {status}")
        return payload.decode("utf-8")

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def ready(self) -> bool:
        status, _, _ = self._request("GET", "/readyz")
        return status == 200
