"""The bounded micro-batching queue between HTTP ingest and the fold.

Request handlers (event-loop thread) call :meth:`MicroBatcher.offer`;
the single ingest worker thread calls :meth:`MicroBatcher.next_batch`,
which blocks until a batch is worth folding: ``batch_max_records``
items are pending, or the oldest pending item has waited
``batch_max_delay_seconds``, or the batcher is closing.  The queue is
bounded by total records -- when full, ``offer`` refuses instead of
buffering, and the service surfaces that as ``429``.

Everything is a plain ``threading.Condition`` around a deque: the
handlers only append and the worker only drains, so there is no
fairness subtlety -- FIFO order is preserved end to end, which is what
makes serve-side ingest byte-identical to an offline run over the same
sequence.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from repro.errors import ServeError

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Bounded FIFO of records with size-or-deadline flush semantics."""

    def __init__(
        self,
        batch_max_records: int,
        batch_max_delay_seconds: float,
        queue_max_records: int,
        clock: Callable[[], float] = time.monotonic,
        obs=None,
    ) -> None:
        if batch_max_records <= 0:
            raise ServeError("batch_max_records must be positive")
        if queue_max_records < batch_max_records:
            raise ServeError("queue_max_records must be >= batch_max_records")
        if batch_max_delay_seconds < 0:
            raise ServeError("batch_max_delay_seconds must be >= 0")
        self.batch_max_records = batch_max_records
        self.batch_max_delay_seconds = batch_max_delay_seconds
        self.queue_max_records = queue_max_records
        self._clock = clock
        self._cond = threading.Condition()
        #: (enqueue time, record, trace enqueue perf_counter); one entry
        #: per record keeps counting trivial and lets a flush cut
        #: anywhere, not only on the boundaries the producers happened
        #: to POST.  The third slot is 0.0 for untraced records; traced
        #: ones carry a real ``perf_counter`` stamp, separate from the
        #: injectable ``clock`` (tests drive that one with fake time).
        self._pending: Deque[Tuple[float, object, float]] = deque()
        self._closed = False
        self.offered = 0
        self.refused = 0
        self.batches = 0
        if obs is not None:
            self._g_depth = obs.gauge("serve.queue_depth")
            self._c_refused = obs.counter("serve.queue_refused")
            self._h_batch = obs.histogram(
                "serve.batch_size",
                bounds=(1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0),
            )
            self._rec = getattr(obs, "trace_recorder", None)
        else:
            self._g_depth = self._c_refused = self._h_batch = None
            self._rec = None

    # -- producer side (event-loop thread) -----------------------------
    def offer(self, records: Sequence[object]) -> bool:
        """Enqueue all of ``records`` or none of them.

        All-or-nothing keeps a POST body contiguous in the fold order;
        admitting half a request would make the client's retry
        double-ingest the admitted half.
        """
        if not records:
            return True
        with self._cond:
            if self._closed:
                return False
            if len(self._pending) + len(records) > self.queue_max_records:
                self.refused += len(records)
                if self._c_refused is not None:
                    self._c_refused.inc(len(records))
                return False
            now = self._clock()
            if self._rec is None:
                for record in records:
                    self._pending.append((now, record, 0.0))
            else:
                # Records carrying a sampled trace context get a real
                # perf_counter stamp so queue wait shows up as a span.
                tperf = 0.0
                for record in records:
                    trace = getattr(record, "trace", None)
                    if trace is not None and trace.sampled:
                        if not tperf:
                            tperf = time.perf_counter()
                        self._pending.append((now, record, tperf))
                    else:
                        self._pending.append((now, record, 0.0))
            self.offered += len(records)
            if self._g_depth is not None:
                self._g_depth.set(len(self._pending))
            self._cond.notify_all()
        return True

    def would_ever_fit(self, n: int) -> bool:
        """Whether a request of ``n`` records can ever be admitted."""
        return n <= self.queue_max_records

    def depth(self) -> int:
        with self._cond:
            return len(self._pending)

    # -- consumer side (ingest worker thread) --------------------------
    def next_batch(self) -> Optional[List[object]]:
        """Block until a batch is due; ``None`` means closed and empty.

        A batch is due when ``batch_max_records`` are pending, the
        oldest pending record is past the flush deadline, or the
        batcher is closing (drain: flush whatever remains).
        """
        with self._cond:
            while True:
                if len(self._pending) >= self.batch_max_records:
                    return self._take()
                if self._pending:
                    deadline = self._pending[0][0] + self.batch_max_delay_seconds
                    remaining = deadline - self._clock()
                    if remaining <= 0 or self._closed:
                        return self._take()
                    self._cond.wait(timeout=remaining)
                elif self._closed:
                    return None
                else:
                    self._cond.wait()

    def _take(self) -> List[object]:
        n = min(len(self._pending), self.batch_max_records)
        batch: List[object] = []
        taken = time.perf_counter()
        spanned = None
        for _ in range(n):
            _, record, tperf = self._pending.popleft()
            batch.append(record)
            if tperf:
                # One queue-wait span per traced request in this batch
                # (a POST's records share one context and one stamp).
                ctx = record.trace
                if spanned is None:
                    spanned = set()
                if ctx.span_id not in spanned:
                    spanned.add(ctx.span_id)
                    self._rec.record_span(
                        "batcher.queue_wait", tperf, taken - tperf, ctx=ctx,
                        attrs={"batch_records": n},
                    )
        self.batches += 1
        if self._g_depth is not None:
            self._g_depth.set(len(self._pending))
        if self._h_batch is not None:
            self._h_batch.observe(float(n))
        self._cond.notify_all()
        return batch

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Stop admitting; wake the worker to flush the remainder."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait until the queue is empty (drain); True on success."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while self._pending:
                remaining = None
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining)
            return True
