"""Tunables for the serve tier, all in one validated dataclass."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import ServeError

__all__ = ["ServeConfig", "SERVE_CHECKPOINT_NAME"]

#: The push-mode checkpoint lives inside the store directory, so one
#: ``--store DIR`` names the complete durable state of a server.
SERVE_CHECKPOINT_NAME = "serve-checkpoint.json"


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Knobs for admission control, batching, and the listener.

    The defaults favour latency over throughput: small batches with a
    short flush deadline.  Saturation behaviour is explicit -- once
    ``queue_max_records`` classified-but-unfolded records are pending,
    ingest answers ``429 Retry-After`` instead of growing the queue.
    """

    host: str = "127.0.0.1"
    port: int = 8321

    #: Micro-batch flush triggers: whichever comes first.
    batch_max_records: int = 256
    batch_max_delay_seconds: float = 0.05

    #: Admission control: total records allowed to sit in the queue.
    queue_max_records: int = 8192
    #: Per-client token bucket; 0 disables rate limiting.
    rate_records_per_second: float = 0.0
    rate_burst_records: Optional[int] = None
    #: Distinct clients tracked before the oldest bucket is evicted.
    rate_max_clients: int = 1024

    #: Request-size ceilings (bytes).
    max_body_bytes: int = 8 * 1024 * 1024
    max_header_bytes: int = 64 * 1024

    #: Seal trailing open buckets on graceful drain.  True is the
    #: "stream is over" shutdown readers want; False is a pause that a
    #: restarted server resumes without sealed-bucket record drops.
    drain_seal: bool = True

    #: Server-side head sampling for request tracing: when a POST
    #: carries no ``traceparent`` header, 1 in N ingest requests gets a
    #: minted trace context (0 disables server-side minting; clients
    #: can still send their own).  413/429/503 rejections and
    #: anomaly-firing requests are always captured regardless.
    trace_sample_n: int = 64
    #: Bound on captured span trees (top-K by recorded duration).
    trace_capture_traces: int = 64

    def validate(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ServeError(f"port must be in [0, 65535], got {self.port}")
        if self.batch_max_records <= 0:
            raise ServeError("batch_max_records must be positive")
        if self.batch_max_delay_seconds < 0:
            raise ServeError("batch_max_delay_seconds must be >= 0")
        if self.queue_max_records < self.batch_max_records:
            raise ServeError(
                "queue_max_records must be >= batch_max_records "
                f"({self.queue_max_records} < {self.batch_max_records})"
            )
        if self.rate_records_per_second < 0:
            raise ServeError("rate_records_per_second must be >= 0")
        if self.rate_burst_records is not None and self.rate_burst_records <= 0:
            raise ServeError("rate_burst_records must be positive")
        if self.rate_max_clients <= 0:
            raise ServeError("rate_max_clients must be positive")
        if self.max_body_bytes <= 0 or self.max_header_bytes <= 0:
            raise ServeError("size ceilings must be positive")
        if self.trace_sample_n < 0:
            raise ServeError("trace_sample_n must be >= 0")
        if self.trace_capture_traces <= 0:
            raise ServeError("trace_capture_traces must be positive")
