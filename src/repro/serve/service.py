"""ServeService: HTTP ingest/query wired onto the push-mode engine.

Threading model, deliberately minimal::

    event-loop thread          ingest worker thread
    -----------------          --------------------
    HTTP parse/route           MicroBatcher.next_batch()
    admission control     -->  engine.push_items(batch)
    MicroBatcher.offer()       (classify + geolocate + fold +
    read-only store queries     seal + checkpoint)

The event loop never folds and the worker never parses HTTP.  The two
meet at the :class:`~repro.serve.batcher.MicroBatcher` (bounded,
thread-safe) and at ``_engine_lock``, which the loop takes only for
cheap snapshots (the anomaly log) and for the final drain.  Queries
run against a **read-only** :class:`~repro.store.store.RollupStore`
snapshot that re-snapshots when the writer's manifest generation
advances -- readers never block the writer.

Because ingest is admitted in FIFO order into a single fold thread,
the records a server applies are exactly the concatenation of admitted
POST bodies -- which is what makes the end-to-end parity gate (serve
ingest vs. offline ``repro stream`` over the same samples) byte-exact.

Graceful drain (SIGTERM/SIGINT or :meth:`ServeService.request_shutdown`):
stop accepting connections -> close the batcher -> worker folds the
remaining micro-batches -> checkpoint -> seal -> export obs -> exit 0.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import threading
import time
from typing import Dict, List, Optional

from repro.cdn.collector import ConnectionSample
from repro.errors import ReproError, ServeError, StoreError
from repro.obs import (
    NULL_OBS,
    REQUEST_ID_HEADER,
    TRACEPARENT_HEADER,
    HeadSampler,
    Observability,
    TraceContext,
    mint_request_id,
    mint_span_id,
    mint_trace_id,
    parse_traceparent,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.config import SERVE_CHECKPOINT_NAME, ServeConfig
from repro.serve.httpd import HttpRequest, HttpResponse, HttpServer
from repro.serve.ratelimit import ClientRateLimiter
from repro.store import RollupStore, StoreQuery
from repro.stream import StreamEngine, StreamItem
from repro.stream.rollup import DEFAULT_BUCKET_SECONDS

__all__ = ["ServeService"]

_ENDPOINTS = ("samples", "query", "anomalies", "metrics", "healthz", "readyz")


def _jsonable(value):
    """Make query values JSON-safe (enum keys become their values)."""
    if isinstance(value, dict):
        return {
            (k.value if hasattr(k, "value") else str(k)): _jsonable(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _parse_sample_entries(
    body: bytes, trace: Optional[TraceContext] = None
) -> List[StreamItem]:
    """Decode a POST body: JSON array or JSONL, raw or ``ts``-wrapped.

    Each entry is either a plain :class:`ConnectionSample` dict or
    ``{"ts": <float>, "sample": {...}}``; the wrapper carries the
    connection start time when the producer knows it (the simulator
    tap does), mirroring :class:`~repro.stream.source.StreamItem`.

    ``trace`` (the request's server-side trace context, when sampled)
    rides on every item so the batcher and engine can attach their
    spans to the request's tree.
    """
    text = body.decode("utf-8").strip()
    if not text:
        return []
    if text.startswith("["):
        entries = json.loads(text)
        if not isinstance(entries, list):
            raise ValueError("expected a JSON array")
    else:
        entries = [
            json.loads(line)
            for line in text.splitlines()
            if line.strip()
        ]
    items: List[StreamItem] = []
    for entry in entries:
        if not isinstance(entry, dict):
            raise ValueError("each entry must be a JSON object")
        if "sample" in entry:
            ts = entry.get("ts")
            if ts is not None:
                ts = float(ts)
            payload = entry["sample"]
        else:
            ts = None
            payload = entry
        items.append(StreamItem(
            sample=ConnectionSample.from_dict(payload), ts=ts, trace=trace,
        ))
    return items


class ServeService:
    """The serve tier: one store directory, one listener, one fold."""

    def __init__(
        self,
        store_dir: str,
        config: Optional[ServeConfig] = None,
        obs_dir: Optional[str] = None,
        obs: Optional[Observability] = None,
        geodb=None,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        grace_seconds: float = 0.0,
        anomaly_config=None,
        checkpoint_interval: int = 5000,
    ) -> None:
        self.config = config or ServeConfig()
        self.config.validate()
        self.store_dir = store_dir
        self.obs_dir = obs_dir
        self.obs = obs if obs is not None else Observability(
            trace_capture=self.config.trace_capture_traces
        )
        self.engine = StreamEngine(
            None,
            geodb=geodb,
            n_workers=0,
            bucket_seconds=bucket_seconds,
            grace_seconds=grace_seconds,
            anomaly_config=anomaly_config,
            checkpoint_path=os.path.join(store_dir, SERVE_CHECKPOINT_NAME),
            checkpoint_interval=checkpoint_interval,
            store_dir=store_dir,
            obs=self.obs,
        )
        self.batcher = MicroBatcher(
            self.config.batch_max_records,
            self.config.batch_max_delay_seconds,
            self.config.queue_max_records,
            obs=self.obs,
        )
        self.limiter = ClientRateLimiter(
            self.config.rate_records_per_second,
            burst=self.config.rate_burst_records,
            max_clients=self.config.rate_max_clients,
        )
        self.httpd = HttpServer(
            self._handle,
            host=self.config.host,
            port=self.config.port,
            max_header_bytes=self.config.max_header_bytes,
            max_body_bytes=self.config.max_body_bytes,
        )
        #: The query tier's snapshot; never writes, never blocks ingest.
        self.reader: Optional[RollupStore] = None

        self._engine_lock = threading.Lock()
        self._worker: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._draining = False
        self.report = None
        #: Set once the engine is folded past its first checkpoint --
        #: the /readyz contract.  A threading.Event so test harnesses
        #: can await startup from another thread.
        self.ready = threading.Event()
        self.port: Optional[int] = None
        self.ingest_errors = 0

        reg = self.obs
        self._h_endpoint = {
            name: reg.histogram(f"serve.http.{name}") for name in _ENDPOINTS
        }
        self._g_inflight = {
            name: reg.gauge(f"serve.http.{name}.inflight")
            for name in _ENDPOINTS
        }
        #: serve.http.<endpoint>.2xx/4xx/5xx -- rejection rates (413,
        #: 429, 503) are scrapeable without log parsing.
        self._c_status = {
            name: {
                2: reg.counter(f"serve.http.{name}.2xx"),
                4: reg.counter(f"serve.http.{name}.4xx"),
                5: reg.counter(f"serve.http.{name}.5xx"),
            }
            for name in _ENDPOINTS
        }
        #: Server-side head sampling for requests with no traceparent;
        #: loop-thread only.  The recorder collects each sampled
        #: request's span tree (see repro.obs.spantree).
        self._trace_sampler = HeadSampler(self.config.trace_sample_n)
        self._rec = getattr(self.obs, "trace_recorder", None)
        self._c_requests = reg.counter("serve.http.requests")
        self._c_rejected_rate = reg.counter("serve.rejected.ratelimit")
        self._c_rejected_queue = reg.counter("serve.rejected.queue_full")
        self._c_rejected_oversize = reg.counter("serve.rejected.oversize")
        self._c_bad_request = reg.counter("serve.bad_request")
        self._c_accepted = reg.counter("serve.records_accepted")
        self._c_ingest_errors = reg.counter("serve.ingest_errors")
        self._g_draining = reg.gauge("serve.draining")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until a signal or :meth:`request_shutdown`; exit 0."""
        asyncio.run(self._amain())
        return 0

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()

        resume = os.path.exists(
            os.path.join(self.store_dir, SERVE_CHECKPOINT_NAME)
        )
        self.engine.open_push(resume=resume)
        # readyz = "folded past its first checkpoint": write one
        # immediately so a crash before the first due-interval still
        # resumes cleanly, and readiness certifies durable state.
        self.engine.checkpoint_now()
        self.reader = RollupStore.open_read_only(self.store_dir, obs=NULL_OBS)

        self._worker = threading.Thread(
            target=self._ingest_worker, name="serve-ingest", daemon=True
        )
        self._worker.start()
        await self.httpd.start()
        self.port = self.httpd.port

        try:
            for sig in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(sig, self.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-unix loops; tests drive request_shutdown directly

        self.ready.set()
        self.obs.event("serve.ready", port=self.port, resumed=resume)
        try:
            await self._shutdown_event.wait()
        finally:
            await self._drain()

    async def _drain(self) -> None:
        """stop accepting -> flush micro-batches -> checkpoint -> seal."""
        self._draining = True
        self._g_draining.set(1)
        self.ready.clear()
        await self.httpd.stop()
        self.batcher.close()
        if self._worker is not None:
            await self._loop.run_in_executor(None, self._worker.join)
        with self._engine_lock:
            self.report = self.engine.drain(seal=self.config.drain_seal)
            self.engine.store.close()
        if self.reader is not None:
            self.reader.close()
        self.obs.event(
            "serve.drained",
            records=self.report.samples_processed,
            sealed=self.config.drain_seal,
        )
        if self.obs_dir:
            self.obs.export(
                self.obs_dir, extra={"stream_metrics": self.report.metrics}
            )

    def request_shutdown(self) -> None:
        """Begin a graceful drain; callable only from the loop thread."""
        if self._shutdown_event is not None:
            self._draining = True
            self._shutdown_event.set()

    def request_shutdown_threadsafe(self) -> None:
        """Thread-safe shutdown trigger for harnesses and tests."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_shutdown)

    # ------------------------------------------------------------------
    # Ingest worker
    # ------------------------------------------------------------------
    def _ingest_worker(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            try:
                with self._engine_lock:
                    self.engine.push_items(batch)
            except ReproError as exc:
                # A batch the classifier cannot digest must not kill
                # the fold loop; it was validated at POST time, so this
                # is exceptional enough to count and log loudly.
                self.ingest_errors += 1
                self._c_ingest_errors.inc()
                self.obs.event(
                    "serve.ingest_error", error=str(exc), records=len(batch)
                )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _handle(self, request: HttpRequest) -> HttpResponse:
        # Every response -- errors included -- echoes a request id for
        # client-side correlation: the client's own if it sent one,
        # a minted one otherwise.
        request_id = request.headers.get(REQUEST_ID_HEADER) or mint_request_id()
        path = request.path.rstrip("/") or "/"
        if path == "/v1/samples":
            name, method = "samples", "POST"
        elif path == "/v1/query":
            name, method = "query", "GET"
        elif path == "/v1/anomalies":
            name, method = "anomalies", "GET"
        elif path == "/metrics":
            name, method = "metrics", "GET"
        elif path == "/healthz":
            name, method = "healthz", "GET"
        elif path == "/readyz":
            name, method = "readyz", "GET"
        else:
            return self._finalize(
                request, None, request_id, None, None,
                HttpResponse.error(404, f"no route for {request.path!r}"),
            )
        client_ctx = parse_traceparent(request.headers.get(TRACEPARENT_HEADER))
        if request.method != method:
            return self._finalize(
                request, name, request_id, None, client_ctx,
                HttpResponse.error(
                    405,
                    f"{request.method} not allowed on {path}",
                    headers=(("Allow", method),),
                ),
            )

        # The request's server-side context: same trace id as the
        # client's (when it sent a sampled traceparent), parented onto
        # a freshly minted request span id that all ingest-side spans
        # (batcher wait, fold, WAL) will hang under.  Without a client
        # header, 1 in trace_sample_n ingest requests is head-sampled.
        ctx: Optional[TraceContext] = None
        if client_ctx is not None:
            if client_ctx.sampled:
                ctx = TraceContext(client_ctx.trace_id, mint_span_id(), True)
        elif name == "samples" and self._trace_sampler.decide():
            ctx = TraceContext(mint_trace_id(), mint_span_id(), True)
        request.trace = ctx
        request.request_id = request_id

        self._c_requests.inc()
        gauge = self._g_inflight[name]
        gauge.inc()
        start = time.perf_counter()
        try:
            response = getattr(self, f"_endpoint_{name}")(request)
        finally:
            gauge.dec()
            self._h_endpoint[name].observe(time.perf_counter() - start)
        return self._finalize(
            request, name, request_id, ctx, client_ctx, response
        )

    def _finalize(
        self,
        request: HttpRequest,
        name: Optional[str],
        request_id: str,
        ctx: Optional[TraceContext],
        client_ctx: Optional[TraceContext],
        response: HttpResponse,
    ) -> HttpResponse:
        """Status-class counters, request span, id echo -- every exit."""
        status = response.status
        if name is not None:
            bucket = self._c_status[name].get(status // 100)
            if bucket is not None:
                bucket.inc()
        rejection = status in (413, 429, 503) and name == "samples"
        rec = self._rec
        if rec is not None:
            if rejection and ctx is None:
                # Rejections are always captured, sampled or not: the
                # 429 burst is exactly the tail worth inspecting later.
                trace_id = (
                    client_ctx.trace_id if client_ctx is not None
                    else mint_trace_id()
                )
                ctx = TraceContext(trace_id, mint_span_id(), True)
            if ctx is not None:
                now = time.perf_counter()
                start = request.received or now
                rec.record_span(
                    f"serve.http.{name}" if name else "serve.http.unknown",
                    start,
                    now - start,
                    ctx=ctx,
                    span_id=ctx.span_id,
                    parent_id=(
                        client_ctx.span_id if client_ctx is not None else ""
                    ),
                    attrs={"status": status, "request_id": request_id},
                )
                if rejection:
                    rec.pin(ctx.trace_id, f"http.{status}")
        if rejection:
            self.obs.event(
                "serve.rejected",
                endpoint=name,
                status=status,
                request_id=request_id,
            )
        extra = ((REQUEST_ID_HEADER, request_id),)
        if ctx is not None:
            extra += ((TRACEPARENT_HEADER, ctx.to_traceparent()),)
        elif client_ctx is not None:
            # Unsampled contexts are echoed untouched: the sampling
            # decision belongs to the caller's head, not to us.
            extra += ((TRACEPARENT_HEADER, client_ctx.to_traceparent()),)
        response.headers = response.headers + extra
        if status >= 400 and response.content_type == "application/json":
            try:
                payload = json.loads(response.body)
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = None
            if isinstance(payload, dict) and "request_id" not in payload:
                payload["request_id"] = request_id
                response.body = json.dumps(
                    payload, separators=(",", ":")
                ).encode("utf-8")
        return response

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _endpoint_samples(self, request: HttpRequest) -> HttpResponse:
        if self._draining:
            return HttpResponse.error(
                503, "draining; not accepting new samples"
            )
        trace = getattr(request, "trace", None)
        try:
            items = _parse_sample_entries(request.body, trace=trace)
        except (ValueError, KeyError, TypeError) as exc:
            self._c_bad_request.inc()
            return HttpResponse.error(400, f"bad samples payload: {exc}")
        if not items:
            return HttpResponse.json({"accepted": 0, "queued": 0}, status=202)
        if not self.batcher.would_ever_fit(len(items)):
            self._c_rejected_oversize.inc()
            return HttpResponse.error(
                413,
                f"batch of {len(items)} records exceeds queue capacity "
                f"{self.batcher.queue_max_records}; split the request",
            )

        client = request.headers.get("x-client-id", request.peer)
        allowed, wait = self.limiter.try_acquire(client, len(items))
        if not allowed:
            self._c_rejected_rate.inc()
            return HttpResponse.error(
                429,
                f"rate limit exceeded for client {client!r}",
                headers=(("Retry-After", str(max(1, math.ceil(wait)))),),
            )
        if trace is not None and self._rec is not None:
            enq_start = time.perf_counter()
            offered = self.batcher.offer(items)
            self._rec.record_span(
                "batcher.enqueue",
                enq_start,
                time.perf_counter() - enq_start,
                ctx=trace,
                attrs={"records": len(items)},
            )
        else:
            offered = self.batcher.offer(items)
        if not offered:
            self._c_rejected_queue.inc()
            # One flush deadline is the soonest the queue can move.
            retry = max(1, math.ceil(self.config.batch_max_delay_seconds))
            return HttpResponse.error(
                429,
                "ingest queue is full",
                headers=(("Retry-After", str(retry)),),
            )
        self._c_accepted.inc(len(items))
        return HttpResponse.json(
            {"accepted": len(items), "queued": self.batcher.depth()},
            status=202,
        )

    def _endpoint_query(self, request: HttpRequest) -> HttpResponse:
        family = request.query_str("family", "country_tampering_rate")
        try:
            start = request.query_str("start")
            end = request.query_str("end")
            start = float(start) if start is not None else None
            end = float(end) if end is not None else None
        except ValueError:
            self._c_bad_request.inc()
            return HttpResponse.error(400, "start/end must be numbers")
        countries = None
        raw = request.query_str("countries")
        if raw:
            countries = tuple(c.strip() for c in raw.split(",") if c.strip())
        try:
            query = StoreQuery(
                family,
                start=start,
                end=end,
                countries=countries,
                country=request.query_str("country"),
            )
            self.reader.maybe_refresh()
            result = self._query_with_retry(query)
        except StoreError as exc:
            self._c_bad_request.inc()
            return HttpResponse.error(400, str(exc))
        return HttpResponse.json({
            "family": family,
            "value": _jsonable(result.value),
            "generation": self.reader.manifest.generation,
            "segments_scanned": result.segments_scanned,
            "segments_skipped": result.segments_skipped,
            "buckets_scanned": result.buckets_scanned,
            "open_buckets_scanned": result.open_buckets_scanned,
        })

    def _query_with_retry(self, query: StoreQuery):
        try:
            return self.reader.query(query)
        except StoreError as exc:
            # A compaction swapped the manifest under our snapshot and
            # deleted its inputs; re-snapshot once and retry.
            if "refresh and retry" not in str(exc):
                raise
            self.reader.maybe_refresh(force=True)
            return self.reader.query(query)

    def _endpoint_anomalies(self, request: HttpRequest) -> HttpResponse:
        with self._engine_lock:
            events = [event.to_dict() for event in self.engine.detector.events]
        return HttpResponse.json({"count": len(events), "events": events})

    def _endpoint_metrics(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.text(self.obs.render_prometheus())

    def _endpoint_healthz(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json({"status": "ok"})

    def _endpoint_readyz(self, request: HttpRequest) -> HttpResponse:
        if self._draining or not self.ready.is_set():
            return HttpResponse.error(503, "not ready")
        return HttpResponse.json({
            "status": "ready",
            "folded": self.engine._n_folded,
            "queued": self.batcher.depth(),
        })
