"""repro.serve: the always-on ingest/query tier over the stream engine.

The paper's detection pipeline runs as a service inside a CDN -- samples
arrive continuously and aggregates are queried live.  This package is
that tier for the reproduction, built entirely on the standard library
(``asyncio`` + ``http.client``):

* :class:`ServeService` -- the server.  ``POST /v1/samples`` feeds a
  bounded micro-batching queue in front of the classifier and the
  :class:`~repro.stream.engine.StreamEngine` push-mode fold; admission
  control (queue depth + per-client token buckets) answers ``429`` with
  ``Retry-After`` instead of buffering without bound.  ``GET /v1/query``
  serves :class:`~repro.store.query.StoreQuery` from a **read-only**
  store snapshot, so readers never block the writer; ``/metrics``,
  ``/healthz`` and ``/readyz`` make it operable.  SIGTERM drains:
  stop accepting, flush micro-batches, checkpoint, seal, exit 0.
* :class:`ServeClient` -- a small stdlib client used by the tests, the
  latency bench, and the tutorial.

Wired as ``repro serve --store DIR --obs DIR --port N``.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import RetryLater, ServeClient
from repro.serve.config import ServeConfig
from repro.serve.ratelimit import ClientRateLimiter, TokenBucket
from repro.serve.service import ServeService

__all__ = [
    "ClientRateLimiter",
    "MicroBatcher",
    "RetryLater",
    "ServeClient",
    "ServeConfig",
    "ServeService",
    "TokenBucket",
]
