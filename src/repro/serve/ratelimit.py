"""Per-client token buckets for ingest admission control.

A classic token bucket: capacity ``burst``, refilled at ``rate`` tokens
per second, one token per ingested record.  ``try_acquire`` never
sleeps -- on shortfall it reports how long the caller should wait, which
the service turns into ``429`` + ``Retry-After``.  The clock is
injectable so tests are exact rather than sleep-based.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Optional, Tuple

from repro.errors import ServeError

__all__ = ["TokenBucket", "ClientRateLimiter"]


class TokenBucket:
    """One client's allowance: ``burst`` tokens refilled at ``rate``/s."""

    __slots__ = ("rate", "burst", "tokens", "_clock", "_last")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ServeError("token bucket rate must be positive")
        if burst <= 0:
            raise ServeError("token bucket burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)

    def try_acquire(self, n: float = 1.0) -> Tuple[bool, float]:
        """Take ``n`` tokens if available.

        Returns ``(True, 0.0)`` on success, else ``(False, wait)`` where
        ``wait`` is the seconds until ``n`` tokens will have refilled.
        Requests larger than the burst can never succeed outright; they
        are still granted a finite wait (time to fill the whole burst)
        so a polite client eventually gets through in burst-sized gulps.
        """
        self._refill()
        if self.tokens >= n:
            self.tokens -= n
            return True, 0.0
        shortfall = min(n, self.burst) - self.tokens
        return False, shortfall / self.rate


class ClientRateLimiter:
    """A bounded table of per-client :class:`TokenBucket` instances.

    Eviction is LRU on acquire, so an attacker cycling client ids can
    only evict buckets that are mostly full anyway; a bucket evicted
    and re-created starts full, which is the same allowance a brand-new
    client gets.  ``rate <= 0`` disables limiting entirely.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_clients <= 0:
            raise ServeError("max_clients must be positive")
        self.enabled = rate > 0
        self.rate = rate
        self.burst = burst if burst is not None else max(rate, 1.0)
        self.max_clients = max_clients
        self._clock = clock
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    def try_acquire(self, client: str, n: float = 1.0) -> Tuple[bool, float]:
        if not self.enabled:
            return True, 0.0
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        return bucket.try_acquire(n)
