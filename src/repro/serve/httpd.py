"""A minimal HTTP/1.1 server on ``asyncio`` streams.

Just enough protocol for the serve tier: request-line + headers +
``Content-Length`` bodies, keep-alive, bounded header and body sizes.
No chunked encoding, no TLS, no pipelining guarantees beyond serial
request handling per connection -- operators front real traffic with a
real proxy; this listener exists so the reproduction is runnable with
zero dependencies.

The server is transport only.  Routing and endpoint semantics live in
:mod:`repro.serve.service`, which supplies ``handler(request) ->
HttpResponse``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from typing import Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = ["HttpRequest", "HttpResponse", "HttpProtocolError", "HttpServer"]

_MAX_REQUEST_LINE = 8 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpProtocolError(Exception):
    """A malformed request; carries the status to answer with."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclasses.dataclass
class HttpRequest:
    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    peer: str
    #: ``perf_counter`` at the moment the request line arrived -- the
    #: "socket accept" end of a traced request's span tree.  Stamped
    #: after the first line is read so keep-alive idle time between
    #: requests is not billed to the next request.
    received: float = 0.0

    def query_str(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.query.get(name, default)


@dataclasses.dataclass
class HttpResponse:
    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def json(
        cls,
        payload: object,
        status: int = 200,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> "HttpResponse":
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        return cls(status=status, body=body, headers=headers)

    @classmethod
    def text(cls, payload: str, status: int = 200) -> "HttpResponse":
        return cls(
            status=status,
            body=payload.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @classmethod
    def error(
        cls,
        status: int,
        detail: str,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> "HttpResponse":
        return cls.json({"error": detail}, status=status, headers=headers)


async def _read_request(
    reader: asyncio.StreamReader,
    peer: str,
    max_header_bytes: int,
    max_body_bytes: int,
) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on clean EOF between requests."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpProtocolError(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise HttpProtocolError(400, "request line too long")
    if len(line) > _MAX_REQUEST_LINE:
        raise HttpProtocolError(400, "request line too long")
    received = time.perf_counter()
    parts = line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3:
        raise HttpProtocolError(400, "malformed request line")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise HttpProtocolError(400, f"unsupported version {version!r}")

    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpProtocolError(400, "truncated headers")
        if line == b"\r\n":
            break
        total += len(line)
        if total > max_header_bytes:
            raise HttpProtocolError(400, "headers too large")
        text = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep or not name.strip():
            raise HttpProtocolError(400, f"malformed header {text!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpProtocolError(400, "chunked bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpProtocolError(400, "bad content-length")
        if length < 0:
            raise HttpProtocolError(400, "bad content-length")
        if length > max_body_bytes:
            raise HttpProtocolError(
                413, f"body of {length} bytes exceeds {max_body_bytes}"
            )
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpProtocolError(400, "truncated body")

    split = urlsplit(target)
    query = {
        name: values[-1]
        for name, values in parse_qs(
            split.query, keep_blank_values=True
        ).items()
    }
    return HttpRequest(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
        peer=peer,
        received=received,
    )


def _render_response(response: HttpResponse, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in response.headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + response.body


class HttpServer:
    """Serial keep-alive request loop over ``asyncio.start_server``."""

    def __init__(
        self,
        handler: Callable[[HttpRequest], Awaitable[HttpResponse]],
        host: str,
        port: int,
        max_header_bytes: int = 64 * 1024,
        max_body_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.max_header_bytes = max_header_bytes
        self.max_body_bytes = max_body_bytes
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        # The StreamReader limit must exceed the longest single line we
        # are willing to parse, with room for the body reads too.
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=max(self.max_header_bytes, _MAX_REQUEST_LINE) * 2,
        )
        # Rebind to the real port so port=0 (tests) is discoverable.
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting new connections; in-flight requests finish."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else "unknown"
        try:
            while True:
                try:
                    request = await _read_request(
                        reader, peer, self.max_header_bytes, self.max_body_bytes
                    )
                except HttpProtocolError as exc:
                    writer.write(_render_response(
                        HttpResponse.error(exc.status, exc.detail),
                        keep_alive=False,
                    ))
                    await writer.drain()
                    return
                if request is None:
                    return
                try:
                    response = await self.handler(request)
                except Exception as exc:  # the handler is the boundary
                    response = HttpResponse.error(500, f"internal error: {exc}")
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                    and response.status < 500
                )
                writer.write(_render_response(response, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
