"""Periodic JSON checkpoints of stream state.

A checkpoint captures everything needed to resume a killed stream with
no lost and no duplicated connections: the **source cursor** (what has
been consumed), the **rollup** (what has been aggregated), the
**detector state** (baselines and open incidents), and the engine's
open window cells (buckets that have not closed yet and so have not
been fed to the detector).

Checkpoints are written atomically (temp file + ``os.replace``) so a
kill mid-write leaves the previous checkpoint intact, and carry a
schema version so stale files fail loudly instead of resuming garbage.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from repro.errors import CheckpointError

__all__ = ["CHECKPOINT_VERSION", "CheckpointManager"]

CHECKPOINT_VERSION = 1


class CheckpointManager:
    """Owns one checkpoint file; saves every ``interval`` samples."""

    def __init__(self, path: str, interval: int = 5000) -> None:
        if interval < 1:
            raise CheckpointError("checkpoint interval must be >= 1")
        self.path = path
        self.interval = interval
        self._last_saved_at = 0  # samples_done at last save

    # ------------------------------------------------------------------
    def due(self, samples_done: int) -> bool:
        return samples_done - self._last_saved_at >= self.interval

    def save(self, state: dict, samples_done: int) -> None:
        """Atomically write ``state`` (adds the schema envelope)."""
        payload = {"version": CHECKPOINT_VERSION, "samples_done": samples_done}
        payload.update(state)
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp_path = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, separators=(",", ":"))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self._last_saved_at = samples_done

    def load(self) -> Optional[dict]:
        """Read the checkpoint; None when absent, raises when corrupt."""
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "r") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint {self.path!r}: {exc}") from exc
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path!r} has schema version {version!r}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        self._last_saved_at = payload.get("samples_done", 0)
        return payload

    def clear(self) -> None:
        """Remove the checkpoint file (a completed stream needs none)."""
        if os.path.exists(self.path):
            os.unlink(self.path)
        self._last_saved_at = 0
