"""Periodic JSON checkpoints of stream state.

A checkpoint captures everything needed to resume a killed stream with
no lost and no duplicated connections: the **source cursor** (what has
been consumed), the **rollup** (what has been aggregated), the
**detector state** (baselines and open incidents), and the engine's
open window cells (buckets that have not closed yet and so have not
been fed to the detector).

Checkpoints are written atomically and durably (fsync'd temp file +
``os.replace`` + an fsync of the containing directory, via
:func:`repro._util.atomic_write_json` -- the same discipline the store
manifest uses) so a kill mid-write leaves the previous checkpoint
intact, and carry a schema version so stale files fail loudly instead
of resuming garbage.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro._util import atomic_write_json
from repro.errors import CheckpointError

__all__ = ["CHECKPOINT_VERSION", "CheckpointManager"]

CHECKPOINT_VERSION = 1


class CheckpointManager:
    """Owns one checkpoint file; saves every ``interval`` samples."""

    def __init__(self, path: str, interval: int = 5000) -> None:
        if interval < 1:
            raise CheckpointError("checkpoint interval must be >= 1")
        self.path = path
        self.interval = interval
        self._last_saved_at = 0  # samples_done at last save

    # ------------------------------------------------------------------
    def due(self, samples_done: int) -> bool:
        return samples_done - self._last_saved_at >= self.interval

    def save(self, state: dict, samples_done: int) -> None:
        """Atomically and durably write ``state`` (adds the schema envelope)."""
        payload = {"version": CHECKPOINT_VERSION, "samples_done": samples_done}
        payload.update(state)
        atomic_write_json(self.path, payload)
        self._last_saved_at = samples_done

    def load(self) -> Optional[dict]:
        """Read the checkpoint; None when absent, raises when corrupt."""
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "r") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint {self.path!r}: {exc}") from exc
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path!r} has schema version {version!r}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        self._last_saved_at = payload.get("samples_done", 0)
        return payload

    def clear(self) -> None:
        """Remove the checkpoint file (a completed stream needs none).

        Tolerates the file vanishing between the existence check and the
        unlink -- the kill9 drill's resumed engine and its supervisor can
        race to clean up the same checkpoint.
        """
        if os.path.exists(self.path):
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass
        self._last_saved_at = 0
