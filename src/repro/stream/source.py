"""Pull-based sample sources for the streaming pipeline.

A :class:`SampleSource` hands out :class:`StreamItem` records one at a
time and knows how to report a **cursor** -- an opaque, JSON-safe value
that identifies how far the stream has been consumed -- and how to
``seek`` back to a previously reported cursor.  That pair is what makes
checkpoint/resume possible without re-reading or re-simulating work that
already flowed downstream.

Three source families cover the deployment shapes the paper implies:

* :class:`IterableSource` -- an in-memory sequence of samples (tests,
  replays of a :class:`~repro.workloads.scenarios.StudyRun`).
* :class:`JsonlSource` / :class:`JsonlDirectorySource` -- samples
  persisted by ``repro simulate`` (one connection per line); a directory
  is treated as a time-ordered series of rotated capture files.
* :class:`SimulatorSource` -- a live tap on the synthetic
  :class:`~repro.workloads.world.World`: connection specs are drawn and
  simulated on demand, so the stream engine sees samples "as they
  happen" exactly like the CDN edge does.

:class:`BoundedBuffer` is the small backpressure primitive sources and
the engine share: a FIFO that refuses to grow past ``capacity``, so a
fast producer cannot outrun a slow consumer without the overflow being
an explicit, observable event.
"""

from __future__ import annotations

import dataclasses
import os
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import json

from repro.cdn.collector import ConnectionSample, iter_samples_jsonl
from repro.errors import StreamError, TransientSourceError

__all__ = [
    "StreamItem",
    "SampleSource",
    "IterableSource",
    "JsonlSource",
    "JsonlDirectorySource",
    "SimulatorSource",
    "BoundedBuffer",
]


@dataclasses.dataclass(frozen=True)
class StreamItem:
    """One unit of stream input: a sample plus its arrival time.

    ``ts`` is the connection start time when the source knows it (the
    simulator tap does); ``None`` lets downstream fall back to the
    earliest packet timestamp, mirroring
    :func:`repro.core.aggregate.analyze_results`.

    ``trace`` optionally carries a
    :class:`~repro.obs.context.TraceContext` for head-sampled request
    tracing; it rides the item through batching into the engine and is
    excluded from equality/repr so traced and untraced items with the
    same payload still compare equal (store parity is about payloads).
    """

    sample: ConnectionSample
    ts: Optional[float] = None
    trace: Optional[object] = dataclasses.field(
        default=None, compare=False, repr=False
    )

    @property
    def effective_ts(self) -> float:
        if self.ts is not None:
            return self.ts
        return min((p.ts for p in self.sample.packets), default=0.0)


class SampleSource:
    """Base class: an iterator of :class:`StreamItem` with a cursor."""

    def __iter__(self) -> Iterator[StreamItem]:
        raise NotImplementedError

    def cursor(self) -> object:
        """Opaque JSON-safe progress marker (valid between items)."""
        raise NotImplementedError

    def seek(self, cursor: object) -> None:
        """Position the source just after ``cursor``; next iteration
        resumes from there.  Must be called before iteration starts."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        """Release any underlying resources."""


class IterableSource(SampleSource):
    """Samples from an in-memory sequence; cursor = items consumed.

    ``timestamps`` optionally maps ``conn_id`` to connection start time
    (the shape :class:`~repro.workloads.scenarios.StudyRun` provides).
    """

    def __init__(
        self,
        samples: Sequence[ConnectionSample],
        timestamps: Optional[Dict[int, float]] = None,
    ) -> None:
        self._samples = list(samples)
        self._timestamps = timestamps or {}
        self._position = 0

    def __iter__(self) -> Iterator[StreamItem]:
        while self._position < len(self._samples):
            sample = self._samples[self._position]
            self._position += 1
            yield StreamItem(sample=sample, ts=self._timestamps.get(sample.conn_id))

    def cursor(self) -> int:
        return self._position

    def seek(self, cursor: object) -> None:
        position = int(cursor)  # type: ignore[arg-type]
        if not 0 <= position <= len(self._samples):
            raise StreamError(f"cursor {position} outside [0, {len(self._samples)}]")
        self._position = position


class JsonlSource(SampleSource):
    """Samples from one JSONL file; cursor = samples read so far."""

    def __init__(self, path: str) -> None:
        if not os.path.isfile(path):
            raise StreamError(f"no such sample file: {path!r}")
        self.path = path
        self._skip = 0
        self._read = 0

    def __iter__(self) -> Iterator[StreamItem]:
        self._read = 0
        iterator = iter_samples_jsonl(self.path)
        while True:
            try:
                sample = next(iterator)
            except StopIteration:
                break
            except json.JSONDecodeError as exc:
                # A half-written tail line (concurrent writer, torn
                # capture rotation) decodes again once the writer
                # finishes it; let the engine's retry loop re-seek.
                raise TransientSourceError(
                    f"undecodable JSONL line in {self.path!r} after "
                    f"{self._read} samples: {exc}"
                ) from exc
            self._read += 1
            if self._read <= self._skip:
                continue
            yield StreamItem(sample=sample)
        if self._read < self._skip:
            raise StreamError(
                f"resume cursor {self._skip} is past the end of "
                f"{self.path!r}: only {self._read} samples present "
                f"(file truncated or rotated since the checkpoint?)"
            )

    def cursor(self) -> int:
        return max(self._read, self._skip)

    def seek(self, cursor: object) -> None:
        skip = int(cursor)  # type: ignore[arg-type]
        if skip < 0:
            raise StreamError("cursor must be non-negative")
        self._skip = skip
        self._read = 0


class JsonlDirectorySource(SampleSource):
    """Samples from every ``*.jsonl`` file in a directory, sorted by name.

    Rotated capture files sort lexicographically by convention
    (``capture-000.jsonl``, ``capture-001.jsonl``, ...).  The cursor is
    ``[file_name, samples_read_in_file]``; files before the named one are
    skipped wholesale on resume.
    """

    def __init__(self, directory: str) -> None:
        if not os.path.isdir(directory):
            raise StreamError(f"no such sample directory: {directory!r}")
        self.directory = directory
        self.files = sorted(
            name for name in os.listdir(directory) if name.endswith(".jsonl")
        )
        if not self.files:
            raise StreamError(f"no .jsonl files in {directory!r}")
        self._file_index = 0
        self._skip_in_file = 0
        self._position: Tuple[str, int] = (self.files[0], 0)

    def __iter__(self) -> Iterator[StreamItem]:
        for index in range(self._file_index, len(self.files)):
            name = self.files[index]
            read = 0
            for sample in iter_samples_jsonl(os.path.join(self.directory, name)):
                read += 1
                if index == self._file_index and read <= self._skip_in_file:
                    continue
                self._position = (name, read)
                yield StreamItem(sample=sample)
            if index == self._file_index and read < self._skip_in_file:
                raise StreamError(
                    f"resume cursor [{name!r}, {self._skip_in_file}] is past "
                    f"the end of that file: only {read} samples present "
                    f"(file truncated since the checkpoint?)"
                )
            # A finished file pins the cursor at its end until the next
            # file yields; resume then skips it entirely.
            self._position = (name, read)

    def cursor(self) -> List[object]:
        return [self._position[0], self._position[1]]

    def seek(self, cursor: object) -> None:
        name, skip = cursor  # type: ignore[misc]
        if name not in self.files:
            raise StreamError(f"cursor file {name!r} not present in {self.directory!r}")
        self._file_index = self.files.index(name)
        self._skip_in_file = int(skip)
        self._position = (name, self._skip_in_file)


class SimulatorSource(SampleSource):
    """A live tap on the synthetic world: simulate connections on demand.

    Draws the same arrival sequence as
    :meth:`repro.workloads.traffic.TrafficGenerator.run` but lazily, one
    connection at a time, so the stream engine observes samples in
    arrival order with their true start times.  The cursor is the number
    of *specs* consumed (unobservable connections still advance it), so
    a resumed source re-draws neither arrivals nor connection specs.
    """

    def __init__(
        self,
        generator,
        n_connections: int,
        start_ts: float,
        duration: float,
    ) -> None:
        from repro.workloads.traffic import TrafficGenerator

        if not isinstance(generator, TrafficGenerator):
            raise StreamError("SimulatorSource needs a TrafficGenerator")
        self.generator = generator
        self.n_connections = n_connections
        self.start_ts = start_ts
        self.duration = duration
        self._times: Optional[List[float]] = None
        self._position = 0

    @property
    def world(self):
        return self.generator.world

    def _arrival_times(self) -> List[float]:
        if self._times is None:
            from repro._util import derive_rng

            rng = derive_rng(self.generator.seed, "arrivals")
            self._times = sorted(
                self.start_ts + rng.random() * self.duration
                for _ in range(self.n_connections)
            )
        return self._times

    def __iter__(self) -> Iterator[StreamItem]:
        times = self._arrival_times()
        # Spec identity is (conn-counter, arrival time); fast-forward the
        # generator's counter so a resumed stream mints identical specs.
        self.generator._next_id = self._position
        while self._position < len(times):
            ts = times[self._position]
            spec = self.generator.spec(ts)
            self._position += 1
            sample = self.world.simulate_connection(spec)
            if sample is not None:
                yield StreamItem(sample=sample, ts=spec.ts)

    def cursor(self) -> int:
        return self._position

    def seek(self, cursor: object) -> None:
        position = int(cursor)  # type: ignore[arg-type]
        if not 0 <= position <= self.n_connections:
            raise StreamError(
                f"cursor {position} outside [0, {self.n_connections}]"
            )
        self._position = position


class BoundedBuffer:
    """A FIFO with a hard capacity -- the backpressure primitive.

    ``push`` returns False (and counts a rejection) instead of growing
    past ``capacity``; callers decide whether to retry, drop, or block.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise StreamError("buffer capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[object] = deque()
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: object) -> bool:
        if self.full:
            self.rejected += 1
            return False
        self._items.append(item)
        return True

    def pop(self) -> object:
        if not self._items:
            raise StreamError("pop from empty buffer")
        return self._items.popleft()

    def drain(self) -> List[object]:
        items = list(self._items)
        self._items.clear()
        return items
