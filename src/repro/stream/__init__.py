"""repro.stream -- online ingestion, rollups, and live anomaly detection.

The batch pipeline (``classify_all`` + ``AnalysisDataset``) re-scans the
whole study per question; this package is its production-shaped
counterpart: samples flow through a sharded classifier pool into
incremental windowed rollups, windows feed an online anomaly detector as
they close, and periodic checkpoints make the whole thing kill-safe.

Quickstart::

    from repro import StreamEngine, SimulatorSource, TrafficGenerator, World

    world = World(seed=7)
    source = SimulatorSource(TrafficGenerator(world, seed=7),
                             n_connections=2000,
                             start_ts=0.0, duration=86400.0)
    report = StreamEngine(source, geodb=world.geo, n_workers=2).run()
    print(report.render())

Module map:

* :mod:`repro.stream.source` -- pull-based sample sources + backpressure.
* :mod:`repro.stream.shard` -- the multiprocessing classifier pool, with
  supervised worker restart and a deterministic chaos hook.
* :mod:`repro.stream.faults` -- seeded fault injection (flaky sources,
  planned worker/engine deaths) and the ``--drill`` fire drills.
* :mod:`repro.stream.rollup` -- mergeable country × signature × hour counters.
* :mod:`repro.stream.checkpoint` -- atomic JSON checkpoints.
* :mod:`repro.stream.anomaly` -- EWMA/z-score spike detection with hysteresis.
* :mod:`repro.stream.metrics` -- samples/s, queue depth, worker utilization.
* :mod:`repro.stream.engine` -- the service loop tying it all together.

The durable tier lives in :mod:`repro.store`: pass ``store_dir`` to
:class:`StreamEngine` (CLI: ``repro stream --store DIR``) to seal closed
hour-buckets into partitioned on-disk segments and answer the
batch-parity query families with ``repro query``.
"""

from repro.stream.anomaly import AnomalyConfig, AnomalyEvent, EwmaDetector
from repro.stream.checkpoint import CheckpointManager
from repro.stream.engine import StreamEngine, StreamReport
from repro.stream.faults import (
    DRILL_MODES,
    DrillResult,
    FaultPlan,
    FaultSpec,
    FaultySource,
    run_drill,
)
from repro.stream.metrics import StreamMetrics
from repro.stream.rollup import StreamRollup
from repro.stream.shard import (
    ShardConfig,
    ShardedClassifierPool,
    StreamRecord,
    WorkerChaos,
    serial_records,
    shard_of,
)
from repro.stream.source import (
    BoundedBuffer,
    IterableSource,
    JsonlDirectorySource,
    JsonlSource,
    SampleSource,
    SimulatorSource,
    StreamItem,
)

__all__ = [
    "AnomalyConfig",
    "AnomalyEvent",
    "EwmaDetector",
    "CheckpointManager",
    "DRILL_MODES",
    "DrillResult",
    "FaultPlan",
    "FaultSpec",
    "FaultySource",
    "run_drill",
    "StreamEngine",
    "StreamReport",
    "StreamMetrics",
    "StreamRollup",
    "ShardConfig",
    "ShardedClassifierPool",
    "StreamRecord",
    "WorkerChaos",
    "serial_records",
    "shard_of",
    "BoundedBuffer",
    "IterableSource",
    "JsonlDirectorySource",
    "JsonlSource",
    "SampleSource",
    "SimulatorSource",
    "StreamItem",
]
