"""Sharded classification: a multiprocessing pool with ordered merge.

The classifier is stateless and CPU-bound, so it parallelises by
partitioning samples across N worker processes -- each running its own
:class:`~repro.core.classifier.TamperingClassifier` -- by a hash of
``conn_id``.  Three properties the stream engine depends on:

* **Ordered merge.**  Every sample gets a global sequence number on
  intake; completed records are re-merged through a heap so the output
  order equals the input order regardless of which shard ran first.
  Downstream rollups therefore see the exact arrival order, which keeps
  incremental aggregation bit-identical with the batch path.
* **Bounded in-flight work.**  The coordinator never lets more than
  ``max_inflight`` samples sit between submission and merge, so memory
  stays flat no matter how large the stream is (backpressure reaches
  all the way back to the source).
* **Worker-death detection.**  If a worker process dies (OOM-killed,
  segfault, bug), the coordinator notices within a poll interval,
  shuts the pool down, and raises :class:`~repro.errors.StreamError`
  instead of hanging on a queue forever.

Workers return slim :class:`StreamRecord` values, not full
:class:`~repro.core.classifier.ClassificationResult` objects: shipping
the packets back across the process boundary would roughly double IPC
for fields the rollup never reads.
"""

from __future__ import annotations

import dataclasses
import heapq
import multiprocessing
import queue as queue_module
import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.cdn.collector import ConnectionSample
from repro.core.classifier import ClassificationResult, ClassifierConfig, TamperingClassifier
from repro.core.model import SignatureId, Stage
from repro.errors import StreamError
from repro.stream.source import StreamItem

__all__ = [
    "StreamRecord",
    "ShardConfig",
    "ShardedClassifierPool",
    "shard_of",
    "serial_records",
]

#: Knuth multiplicative hash constant (32-bit golden ratio).
_HASH_MULT = 0x9E3779B1


def shard_of(conn_id: int, n_shards: int) -> int:
    """Stable shard assignment for a connection id."""
    return ((conn_id * _HASH_MULT) & 0xFFFFFFFF) % n_shards


@dataclasses.dataclass(frozen=True)
class StreamRecord:
    """A classified connection, reduced to what aggregation reads.

    This is the unit that crosses the worker/coordinator boundary and
    feeds :class:`~repro.stream.rollup.StreamRollup`; ``country``/``asn``
    are filled in by the engine (geolocation stays in the coordinator so
    workers never need the world model).
    """

    seq: int
    conn_id: int
    signature: SignatureId
    stage: Stage
    possibly_tampered: bool
    protocol: Optional[str]
    domain: Optional[str]
    client_ip: str
    ip_version: int
    server_port: int
    ts: float
    country: str = "??"
    asn: int = -1

    @classmethod
    def from_result(
        cls,
        result: ClassificationResult,
        seq: int,
        ts: Optional[float] = None,
        country: str = "??",
        asn: int = -1,
    ) -> "StreamRecord":
        sample = result.sample
        if ts is None:
            ts = min((p.ts for p in sample.packets), default=0.0)
        return cls(
            seq=seq,
            conn_id=sample.conn_id,
            signature=result.signature,
            stage=result.stage,
            possibly_tampered=result.possibly_tampered,
            protocol=result.protocol,
            domain=result.domain,
            client_ip=sample.client_ip,
            ip_version=sample.ip_version,
            server_port=sample.server_port,
            ts=ts,
            country=country,
            asn=asn,
        )

    def located(self, country: str, asn: int) -> "StreamRecord":
        return dataclasses.replace(self, country=country, asn=asn)

    @property
    def is_tampering(self) -> bool:
        return self.signature.is_tampering


@dataclasses.dataclass(frozen=True)
class ShardConfig:
    """Pool tunables."""

    n_workers: int = 2
    batch_size: int = 64
    max_inflight: int = 4096
    queue_depth: int = 8  # batches buffered per worker input queue
    poll_seconds: float = 0.2  # worker-liveness poll while waiting
    join_seconds: float = 5.0  # graceful-shutdown patience

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise StreamError("n_workers must be >= 1")
        if self.batch_size < 1:
            raise StreamError("batch_size must be >= 1")
        if self.max_inflight < self.batch_size:
            raise StreamError("max_inflight must be >= batch_size")


def _worker_main(worker_id, config_blob, in_queue, out_queue):
    """Worker process body: classify batches until the None sentinel."""
    classifier = TamperingClassifier(config_blob)
    while True:
        task = in_queue.get()
        if task is None:
            break
        try:
            began = time.monotonic()
            records = []
            for seq, ts, sample in task:
                result = classifier.classify(sample)
                records.append(StreamRecord.from_result(result, seq=seq, ts=ts))
            out_queue.put(("ok", worker_id, records, time.monotonic() - began))
        except BaseException as exc:  # surface, don't hang the merge
            out_queue.put(("error", worker_id, repr(exc), 0.0))
            break


class ShardedClassifierPool:
    """Partition samples across worker processes; merge results in order.

    Usage::

        with ShardedClassifierPool(ShardConfig(n_workers=4)) as pool:
            for record in pool.process(items):
                ...

    ``process`` is a generator: it submits upstream items lazily (pulling
    from the source only when in-flight room exists) and yields
    :class:`StreamRecord` values in global sequence order.
    """

    def __init__(
        self,
        config: Optional[ShardConfig] = None,
        classifier_config: Optional[ClassifierConfig] = None,
    ) -> None:
        self.config = config or ShardConfig()
        self.classifier_config = classifier_config or ClassifierConfig()
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context("spawn")
        self._workers: List[multiprocessing.Process] = []
        self._in_queues: List[multiprocessing.Queue] = []
        self._out_queue: Optional[multiprocessing.Queue] = None
        self._started = False
        self._closed = False
        #: Busy seconds and record counts per worker (metrics reads these).
        self.worker_busy: Dict[int, float] = {}
        self.worker_records: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._out_queue = self._ctx.Queue()
        for worker_id in range(self.config.n_workers):
            in_queue = self._ctx.Queue(maxsize=self.config.queue_depth)
            process = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, self.classifier_config, in_queue, self._out_queue),
                daemon=True,
                name=f"repro-shard-{worker_id}",
            )
            process.start()
            self._in_queues.append(in_queue)
            self._workers.append(process)
            self.worker_busy[worker_id] = 0.0
            self.worker_records[worker_id] = 0
        self._started = True

    def close(self) -> None:
        """Graceful shutdown: sentinel every worker, join, then escalate."""
        if self._closed:
            return
        self._closed = True
        for in_queue in self._in_queues:
            try:
                in_queue.put_nowait(None)
            except queue_module.Full:
                pass
        deadline = time.monotonic() + self.config.join_seconds
        for process in self._workers:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in self._workers:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for in_queue in self._in_queues:
            in_queue.close()
            in_queue.cancel_join_thread()
        if self._out_queue is not None:
            self._out_queue.close()
            self._out_queue.cancel_join_thread()

    def __enter__(self) -> "ShardedClassifierPool":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_workers(self) -> None:
        for process in self._workers:
            if not process.is_alive() and process.exitcode not in (0, None):
                raise StreamError(
                    f"worker {process.name} died with exit code {process.exitcode}"
                )

    def _submit(self, worker_id: int, batch) -> None:
        """Blocking put with liveness checks (bounded queue = backpressure)."""
        while True:
            try:
                self._in_queues[worker_id].put(batch, timeout=self.config.poll_seconds)
                return
            except queue_module.Full:
                self._check_workers()

    def _collect_one(self, block: bool) -> Optional[Tuple[int, List[StreamRecord]]]:
        """Pull one completed batch off the output queue."""
        assert self._out_queue is not None
        while True:
            try:
                message = self._out_queue.get(
                    timeout=self.config.poll_seconds if block else 0.001
                )
            except queue_module.Empty:
                if not block:
                    return None
                self._check_workers()
                continue
            kind, worker_id, payload, busy = message
            if kind == "error":
                raise StreamError(f"worker {worker_id} failed: {payload}")
            self.worker_busy[worker_id] += busy
            self.worker_records[worker_id] += len(payload)
            return worker_id, payload

    # ------------------------------------------------------------------
    # The pipeline
    # ------------------------------------------------------------------
    def process(self, items: Iterable[StreamItem]) -> Iterator[StreamRecord]:
        """Classify a stream of items; yield records in input order."""
        if not self._started:
            self.start()
        if self._closed:
            raise StreamError("pool is closed")

        config = self.config
        pending: List[List] = [[] for _ in range(config.n_workers)]
        heap: List[Tuple[int, StreamRecord]] = []
        next_seq = 0  # next sequence number to hand out
        emit_seq = 0  # next sequence number to yield
        iterator = iter(items)
        exhausted = False

        def flush_shard(worker_id: int) -> None:
            if pending[worker_id]:
                self._submit(worker_id, pending[worker_id])
                pending[worker_id] = []

        def absorb(batch: List[StreamRecord]) -> None:
            for record in batch:
                heapq.heappush(heap, (record.seq, record))

        while True:
            inflight = next_seq - emit_seq
            # Pull input while there is room for a whole batch.
            if not exhausted and inflight < config.max_inflight:
                try:
                    item = next(iterator)
                except StopIteration:
                    exhausted = True
                    for worker_id in range(config.n_workers):
                        flush_shard(worker_id)
                else:
                    worker_id = shard_of(item.sample.conn_id, config.n_workers)
                    pending[worker_id].append(
                        (next_seq, item.ts, item.sample)
                    )
                    next_seq += 1
                    if len(pending[worker_id]) >= config.batch_size:
                        flush_shard(worker_id)
                    continue

            if exhausted and emit_seq == next_seq:
                break

            # Saturated (or drained input): everything still pending must
            # be on a worker queue before blocking, or the merge could
            # wait on a sequence number no worker has ever seen.
            for worker_id in range(config.n_workers):
                flush_shard(worker_id)
            collected = self._collect_one(block=True)
            if collected is not None:
                absorb(collected[1])
            # Opportunistically drain whatever else is ready.
            while True:
                more = self._collect_one(block=False)
                if more is None:
                    break
                absorb(more[1])
            while heap and heap[0][0] == emit_seq:
                _, record = heapq.heappop(heap)
                emit_seq += 1
                yield record

    def map_samples(
        self,
        samples: Iterable[ConnectionSample],
        timestamps: Optional[Dict[int, float]] = None,
    ) -> List[StreamRecord]:
        """Classify a batch of bare samples; records in input order."""
        timestamps = timestamps or {}
        items = (
            StreamItem(sample=s, ts=timestamps.get(s.conn_id)) for s in samples
        )
        return list(self.process(items))


def serial_records(
    samples: Iterable[ConnectionSample],
    timestamps: Optional[Dict[int, float]] = None,
    classifier: Optional[TamperingClassifier] = None,
) -> List[StreamRecord]:
    """The single-process reference path: classify in order, no pool.

    Exists so parity tests and the engine's ``n_workers=0`` mode share
    one code path with identical record construction.
    """
    classifier = classifier or TamperingClassifier()
    timestamps = timestamps or {}
    out: List[StreamRecord] = []
    for seq, sample in enumerate(samples):
        result = classifier.classify(sample)
        out.append(
            StreamRecord.from_result(
                result, seq=seq, ts=timestamps.get(sample.conn_id)
            )
        )
    return out
