"""Sharded classification: a multiprocessing pool with ordered merge.

The classifier is stateless and CPU-bound, so it parallelises by
partitioning samples across N worker processes -- each running its own
:class:`~repro.core.classifier.TamperingClassifier` -- by a hash of
``conn_id``.  Three properties the stream engine depends on:

* **Ordered merge.**  Every sample gets a global sequence number on
  intake; completed records are re-merged through a heap so the output
  order equals the input order regardless of which shard ran first.
  Downstream rollups therefore see the exact arrival order, which keeps
  incremental aggregation bit-identical with the batch path.
* **Bounded in-flight work.**  The coordinator never lets more than
  ``max_inflight`` samples sit between submission and merge, so memory
  stays flat no matter how large the stream is (backpressure reaches
  all the way back to the source).
* **Worker supervision.**  If a worker process dies (OOM-killed,
  segfault, bug -- exit code 0 included: a cleanly-exited worker whose
  work is still in flight is just as fatal to the merge), the
  coordinator notices within a poll interval.  With a restart budget
  (``ShardConfig.max_restarts``) it respawns the worker and re-dispatches
  every batch that was never acknowledged -- safe because classification
  is stateless and the ordered merge dedupes by sequence number --
  otherwise it raises :class:`~repro.errors.StreamError` instead of
  hanging on a queue forever.

:class:`WorkerChaos` is the deterministic fault hook for all of the
above: it arranges for one chosen worker to die (SIGKILL or clean exit)
after a chosen number of batches, so the supervision and shutdown paths
can be exercised in tests and ``repro stream --drill`` runs instead of
being discovered in production.

Workers return slim :class:`StreamRecord` values, not full
:class:`~repro.core.classifier.ClassificationResult` objects: shipping
the packets back across the process boundary would roughly double IPC
for fields the rollup never reads.
"""

from __future__ import annotations

import dataclasses
import heapq
import multiprocessing
import os
import queue as queue_module
import signal
import time
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.cdn.collector import ConnectionSample
from repro.core.classifier import ClassificationResult, ClassifierConfig, TamperingClassifier
from repro.core.model import SignatureId, Stage
from repro.errors import StreamError
from repro.obs import NULL_OBS
from repro.stream.source import StreamItem

__all__ = [
    "StreamRecord",
    "ShardConfig",
    "ShardedClassifierPool",
    "WorkerChaos",
    "shard_of",
    "serial_records",
]

#: Knuth multiplicative hash constant (32-bit golden ratio).
_HASH_MULT = 0x9E3779B1


def shard_of(conn_id: int, n_shards: int) -> int:
    """Stable shard assignment for a connection id."""
    return ((conn_id * _HASH_MULT) & 0xFFFFFFFF) % n_shards


@dataclasses.dataclass(frozen=True)
class StreamRecord:
    """A classified connection, reduced to what aggregation reads.

    This is the unit that crosses the worker/coordinator boundary and
    feeds :class:`~repro.stream.rollup.StreamRollup`; ``country``/``asn``
    are filled in by the engine (geolocation stays in the coordinator so
    workers never need the world model).
    """

    seq: int
    conn_id: int
    signature: SignatureId
    stage: Stage
    possibly_tampered: bool
    protocol: Optional[str]
    domain: Optional[str]
    client_ip: str
    ip_version: int
    server_port: int
    ts: float
    country: str = "??"
    asn: int = -1
    #: Decision detail carried for batch-parity consumers
    #: (:meth:`~repro.core.classifier.TamperingClassifier.classify_batch`);
    #: the rollup never reads these, and they are two scalars, so the IPC
    #: cost is negligible.
    silence_gap: float = 0.0
    n_data_segments: int = 0

    @classmethod
    def from_result(
        cls,
        result: ClassificationResult,
        seq: int,
        ts: Optional[float] = None,
        country: str = "??",
        asn: int = -1,
    ) -> "StreamRecord":
        sample = result.sample
        if ts is None:
            ts = min((p.ts for p in sample.packets), default=0.0)
        return cls(
            seq=seq,
            conn_id=sample.conn_id,
            signature=result.signature,
            stage=result.stage,
            possibly_tampered=result.possibly_tampered,
            protocol=result.protocol,
            domain=result.domain,
            client_ip=sample.client_ip,
            ip_version=sample.ip_version,
            server_port=sample.server_port,
            ts=ts,
            country=country,
            asn=asn,
            silence_gap=result.silence_gap,
            n_data_segments=result.n_data_segments,
        )

    def located(self, country: str, asn: int) -> "StreamRecord":
        return dataclasses.replace(self, country=country, asn=asn)

    @property
    def is_tampering(self) -> bool:
        return self.signature.is_tampering


@dataclasses.dataclass(frozen=True)
class ShardConfig:
    """Pool tunables."""

    n_workers: int = 2
    batch_size: int = 64
    max_inflight: int = 4096
    queue_depth: int = 8  # batches buffered per worker input queue
    poll_seconds: float = 0.2  # worker-liveness poll while waiting
    join_seconds: float = 5.0  # graceful-shutdown patience
    max_restarts: int = 0  # dead workers respawned before giving up

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise StreamError("n_workers must be >= 1")
        if self.batch_size < 1:
            raise StreamError("batch_size must be >= 1")
        if self.max_inflight < self.batch_size:
            raise StreamError("max_inflight must be >= batch_size")
        if self.max_restarts < 0:
            raise StreamError("max_restarts must be >= 0")


@dataclasses.dataclass(frozen=True)
class WorkerChaos:
    """Planned death of one worker: the pool's fault-injection hook.

    The chosen worker completes ``after_batches`` batches, then dies
    while holding its next batch -- either abruptly (``kill9``, as an
    OOM kill would) or by exiting cleanly with code 0 (``exit0``, the
    sneaky variant: nothing looks wrong except that work the merge is
    waiting for died with it).  Fires at most once; a respawned
    replacement is healthy.
    """

    worker_id: int = 0
    after_batches: int = 1
    mode: str = "kill9"

    def __post_init__(self) -> None:
        if self.mode not in ("kill9", "exit0"):
            raise StreamError(f"unknown chaos mode {self.mode!r}")
        if self.worker_id < 0:
            raise StreamError("chaos worker_id must be >= 0")
        if self.after_batches < 0:
            raise StreamError("chaos after_batches must be >= 0")


def _worker_main(worker_id, config_blob, in_queue, out_queue, chaos=None):
    """Worker process body: classify batches until the None sentinel."""
    classifier = TamperingClassifier(config_blob)
    batches_done = 0
    while True:
        task = in_queue.get()
        if task is None:
            break
        if chaos is not None and batches_done >= chaos.after_batches:
            # The planned accident: die holding an unfinished batch, so
            # the coordinator must notice and re-dispatch it.
            if chaos.mode == "kill9":
                os.kill(os.getpid(), signal.SIGKILL)
            return  # exit0: clean-but-early death
        batch_id, rows = task
        try:
            began = time.monotonic()
            hits_before = classifier.cache_hits
            misses_before = classifier.cache_misses
            records = []
            for seq, ts, sample in rows:
                result = classifier.classify(sample)
                records.append(StreamRecord.from_result(result, seq=seq, ts=ts))
            # The trailing hit/miss deltas let the coordinator aggregate
            # cache behaviour across processes without extra IPC.
            out_queue.put(
                (
                    "ok",
                    worker_id,
                    batch_id,
                    records,
                    time.monotonic() - began,
                    classifier.cache_hits - hits_before,
                    classifier.cache_misses - misses_before,
                )
            )
            batches_done += 1
        except BaseException as exc:  # surface, don't hang the merge
            out_queue.put(("error", worker_id, batch_id, repr(exc), 0.0))
            break


class ShardedClassifierPool:
    """Partition samples across worker processes; merge results in order.

    Usage::

        with ShardedClassifierPool(ShardConfig(n_workers=4)) as pool:
            for record in pool.process(items):
                ...

    ``process`` is a generator: it submits upstream items lazily (pulling
    from the source only when in-flight room exists) and yields
    :class:`StreamRecord` values in global sequence order.
    """

    def __init__(
        self,
        config: Optional[ShardConfig] = None,
        classifier_config: Optional[ClassifierConfig] = None,
        chaos: Optional[WorkerChaos] = None,
        obs=NULL_OBS,
    ) -> None:
        self.config = config or ShardConfig()
        self.classifier_config = classifier_config or ClassifierConfig()
        self.chaos = chaos
        self.obs = obs if obs is not None else NULL_OBS
        self._t_dispatch = self.obs.timer("shard.dispatch")
        self._t_collect = self.obs.timer("shard.collect")
        self._h_batch = self.obs.histogram("classify.batch")
        self._c_cache_hits = self.obs.counter("classify.cache_hits")
        self._c_cache_misses = self.obs.counter("classify.cache_misses")
        self._c_restarts = self.obs.counter("worker.restarts")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context("spawn")
        self._workers: List[multiprocessing.Process] = []
        self._in_queues: List[multiprocessing.Queue] = []
        self._out_queue: Optional[multiprocessing.Queue] = None
        self._started = False
        self._closed = False
        #: Per worker: batch_id -> rows submitted but not yet acknowledged
        #: by an "ok" message.  This is the re-dispatch ledger: everything
        #: a dead worker owes the merge is here.
        self._unacked: List[Dict[int, list]] = []
        self._next_batch_id = 0
        #: Busy seconds and record counts per worker (metrics reads these).
        self.worker_busy: Dict[int, float] = {}
        self.worker_records: Dict[int, int] = {}
        #: Supervision and shutdown outcomes (metrics/drills read these).
        self.restarts = 0
        self.worker_restarts: Dict[int, int] = {}
        self.forced_terminations = 0
        self.drained_on_close = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int, chaos: Optional[WorkerChaos]):
        in_queue = self._ctx.Queue(maxsize=self.config.queue_depth)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.classifier_config, in_queue, self._out_queue, chaos),
            daemon=True,
            name=f"repro-shard-{worker_id}",
        )
        process.start()
        return process, in_queue

    def start(self) -> None:
        if self._started:
            return
        self._out_queue = self._ctx.Queue()
        for worker_id in range(self.config.n_workers):
            chaos = (
                self.chaos
                if self.chaos is not None and self.chaos.worker_id == worker_id
                else None
            )
            process, in_queue = self._spawn(worker_id, chaos)
            self._in_queues.append(in_queue)
            self._workers.append(process)
            self._unacked.append({})
            self.worker_busy[worker_id] = 0.0
            self.worker_records[worker_id] = 0
        self._started = True

    def close(self) -> None:
        """Graceful drain: sentinel every live worker, join, then escalate.

        A busy worker's input queue can be full, so the shutdown
        sentinel is retried until it fits (the worker is draining that
        queue) instead of being dropped on the floor -- dropping it
        meant every busy shutdown stalled ``join_seconds`` and ended in
        ``terminate()``.  While retrying, the output queue is drained
        and discarded so worker feeder threads can always make progress.
        """
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + self.config.join_seconds
        pending = [
            worker_id
            for worker_id in range(len(self._workers))
            if self._workers[worker_id].is_alive()
        ]
        while pending:
            still_pending = []
            for worker_id in pending:
                if not self._workers[worker_id].is_alive():
                    continue  # dead workers need no sentinel
                try:
                    self._in_queues[worker_id].put_nowait(None)
                except queue_module.Full:
                    still_pending.append(worker_id)
            pending = still_pending
            if not pending or time.monotonic() >= deadline:
                break
            self._discard_output()
            time.sleep(min(0.01, self.config.poll_seconds))
        while any(process.is_alive() for process in self._workers):
            if time.monotonic() >= deadline:
                break
            # Keep the output pipe moving while workers flush and exit,
            # or their feeder threads could hang the exit itself.
            self._discard_output()
            time.sleep(min(0.01, self.config.poll_seconds))
        for process in self._workers:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in self._workers:
            if process.is_alive():
                self.forced_terminations += 1
                process.terminate()
                process.join(timeout=1.0)
        for in_queue in self._in_queues:
            in_queue.close()
            in_queue.cancel_join_thread()
        if self._out_queue is not None:
            self._out_queue.close()
            self._out_queue.cancel_join_thread()

    def _discard_output(self) -> None:
        """Throw away completed batches nobody will merge (closing)."""
        if self._out_queue is None:
            return
        while True:
            try:
                self._out_queue.get_nowait()
            except (queue_module.Empty, OSError, ValueError):
                return
            self.drained_on_close += 1

    def __enter__(self) -> "ShardedClassifierPool":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_workers(self) -> None:
        """Supervise: restart dead workers, or fail loudly.

        Only the waiting loops (submit backpressure, merge collection)
        call this, so whenever it runs the pool still owes records
        downstream -- a dead worker here is fatal *regardless of exit
        code*: a worker that exited 0 early took in-flight work to the
        grave just as surely as a segfault.  Within the restart budget
        the worker is respawned and its unacknowledged batches are
        re-dispatched; classification is stateless and the ordered merge
        dedupes by sequence number, so redone work is invisible
        downstream.
        """
        for worker_id, process in enumerate(self._workers):
            if process.is_alive():
                continue
            if self.restarts < self.config.max_restarts:
                self._restart_worker(worker_id)
            else:
                raise StreamError(
                    f"worker {process.name} died with exit code "
                    f"{process.exitcode} while {len(self._unacked[worker_id])} "
                    f"batch(es) were unacknowledged"
                )

    def _restart_worker(self, worker_id: int) -> None:
        dead = self._workers[worker_id]
        dead.join(timeout=1.0)
        old_queue = self._in_queues[worker_id]
        old_queue.close()
        old_queue.cancel_join_thread()
        self.restarts += 1
        self.worker_restarts[worker_id] = self.worker_restarts.get(worker_id, 0) + 1
        self._c_restarts.inc()
        self.obs.event(
            "worker.restart",
            worker_id=worker_id,
            exitcode=dead.exitcode,
            unacked_batches=len(self._unacked[worker_id]),
        )
        # The replacement never inherits chaos, or a planned death would
        # loop until the restart budget burned out.
        process, in_queue = self._spawn(worker_id, chaos=None)
        self._workers[worker_id] = process
        self._in_queues[worker_id] = in_queue
        for batch_id in sorted(self._unacked[worker_id]):
            task = (batch_id, self._unacked[worker_id][batch_id])
            while True:
                try:
                    in_queue.put(task, timeout=self.config.poll_seconds)
                    break
                except queue_module.Full:
                    if not process.is_alive():
                        raise StreamError(
                            f"worker {process.name} died again immediately "
                            f"after a restart; giving up on re-dispatch"
                        )

    def _submit(self, worker_id: int, rows: list) -> None:
        """Blocking put with liveness checks (bounded queue = backpressure)."""
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        task = (batch_id, rows)
        # The span covers backpressure waits too: a full input queue is
        # dispatch latency the operator should see.
        with self._t_dispatch:
            while True:
                try:
                    self._in_queues[worker_id].put(
                        task, timeout=self.config.poll_seconds
                    )
                    self._unacked[worker_id][batch_id] = rows
                    return
                except queue_module.Full:
                    self._check_workers()

    def _collect_one(self, block: bool) -> Optional[Tuple[int, List[StreamRecord]]]:
        """Pull one completed batch off the output queue."""
        assert self._out_queue is not None
        start = time.perf_counter()
        while True:
            try:
                message = self._out_queue.get(
                    timeout=self.config.poll_seconds if block else 0.001
                )
            except queue_module.Empty:
                if not block:
                    return None
                self._check_workers()
                continue
            # "ok" messages grew trailing cache-delta fields; slicing
            # keeps "error" messages (and any old 5-tuples) working.
            kind, worker_id, batch_id, payload, busy = message[:5]
            if kind == "error":
                raise StreamError(f"worker {worker_id} failed: {payload}")
            # Only a delivered batch is a collection; empty non-blocking
            # polls are not latency anyone waited on.
            self._t_collect.record(time.perf_counter() - start, start)
            self._h_batch.observe(busy)
            if len(message) > 6:
                self._c_cache_hits.inc(message[5])
                self._c_cache_misses.inc(message[6])
            self._unacked[worker_id].pop(batch_id, None)
            self.worker_busy[worker_id] += busy
            self.worker_records[worker_id] += len(payload)
            return worker_id, payload

    # ------------------------------------------------------------------
    # The pipeline
    # ------------------------------------------------------------------
    def process(self, items: Iterable[StreamItem]) -> Iterator[StreamRecord]:
        """Classify a stream of items; yield records in input order."""
        if not self._started:
            self.start()
        if self._closed:
            raise StreamError("pool is closed")

        config = self.config
        pending: List[List] = [[] for _ in range(config.n_workers)]
        heap: List[Tuple[int, StreamRecord]] = []
        heaped: Set[int] = set()  # seqs currently in the heap
        next_seq = 0  # next sequence number to hand out
        emit_seq = 0  # next sequence number to yield
        iterator = iter(items)
        exhausted = False

        def flush_shard(worker_id: int) -> None:
            if pending[worker_id]:
                self._submit(worker_id, pending[worker_id])
                pending[worker_id] = []

        def absorb(batch: List[StreamRecord]) -> None:
            for record in batch:
                if record.seq < emit_seq or record.seq in heaped:
                    # Re-dispatched batch whose original "ok" also
                    # arrived (worker died after sending it): the merge
                    # dedupes by seq, so restarts stay exactly-once.
                    continue
                heaped.add(record.seq)
                heapq.heappush(heap, (record.seq, record))

        while True:
            inflight = next_seq - emit_seq
            # Pull input while there is room for a whole batch.
            if not exhausted and inflight < config.max_inflight:
                try:
                    item = next(iterator)
                except StopIteration:
                    exhausted = True
                    for worker_id in range(config.n_workers):
                        flush_shard(worker_id)
                else:
                    worker_id = shard_of(item.sample.conn_id, config.n_workers)
                    pending[worker_id].append(
                        (next_seq, item.ts, item.sample)
                    )
                    next_seq += 1
                    if len(pending[worker_id]) >= config.batch_size:
                        flush_shard(worker_id)
                    continue

            if exhausted and emit_seq == next_seq:
                break

            # Saturated (or drained input): everything still pending must
            # be on a worker queue before blocking, or the merge could
            # wait on a sequence number no worker has ever seen.
            for worker_id in range(config.n_workers):
                flush_shard(worker_id)
            collected = self._collect_one(block=True)
            if collected is not None:
                absorb(collected[1])
            # Opportunistically drain whatever else is ready.
            while True:
                more = self._collect_one(block=False)
                if more is None:
                    break
                absorb(more[1])
            while heap and heap[0][0] == emit_seq:
                _, record = heapq.heappop(heap)
                heaped.discard(record.seq)
                emit_seq += 1
                yield record

    def map_samples(
        self,
        samples: Iterable[ConnectionSample],
        timestamps: Optional[Dict[int, float]] = None,
    ) -> List[StreamRecord]:
        """Classify a batch of bare samples; records in input order."""
        timestamps = timestamps or {}
        items = (
            StreamItem(sample=s, ts=timestamps.get(s.conn_id)) for s in samples
        )
        return list(self.process(items))


def serial_records(
    samples: Iterable[ConnectionSample],
    timestamps: Optional[Dict[int, float]] = None,
    classifier: Optional[TamperingClassifier] = None,
) -> List[StreamRecord]:
    """The single-process reference path: classify in order, no pool.

    Exists so parity tests and the engine's ``n_workers=0`` mode share
    one code path with identical record construction.
    """
    classifier = classifier or TamperingClassifier()
    timestamps = timestamps or {}
    out: List[StreamRecord] = []
    for seq, sample in enumerate(samples):
        result = classifier.classify(sample)
        out.append(
            StreamRecord.from_result(
                result, seq=seq, ts=timestamps.get(sample.conn_id)
            )
        )
    return out
