"""Online anomaly detection over per-country tampering rates.

The paper's Figure 8 shows the September 2022 escalation in Iran as a
step change in the country's tampering-rate timeseries; a *live*
pipeline wants that flagged as the windows close, not replotted later.
:class:`EwmaDetector` does the carrier-grade thing (cf. Scheitle et
al.'s TTL-based carrier anomaly detection):

* an **EWMA baseline** (mean + variance) of each country's per-window
  tampering rate, so the detector adapts to each country's own normal;
* a per-window **z-score** whose denominator is floored by the binomial
  standard error of the window's rate (a 10-connection hour simply
  cannot witness a precise rate) and by an absolute ``sigma_floor``;
* **CUSUM accumulation** of those z-scores: persistent small elevations
  accumulate while one noisy hour decays, which is what separates a
  real escalation from sampling noise at 1/10,000 rates;
* **hysteresis**: an incident opens when the CUSUM statistic crosses
  ``cusum_enter`` and closes only when it falls back below
  ``cusum_exit``; the baseline is frozen while an incident is active so
  a long spike cannot absorb itself into "normal".

Windows with fewer than ``min_window_total`` connections carry no rate
information: they are not scored and do not touch the baseline, but the
CUSUM statistic still decays by the ``drift`` allowance so that an
active incident can close during a sparse-traffic lull instead of
latching open forever.  The detector's state is a few floats per
country and serialises into checkpoints.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from repro.errors import StreamError

__all__ = ["AnomalyConfig", "AnomalyEvent", "EwmaDetector"]


@dataclasses.dataclass(frozen=True)
class AnomalyConfig:
    """Detector tunables (defaults validated on the Iran scenario).

    ``alpha`` is the EWMA weight of the newest window (smaller = longer
    memory); ``drift`` is the CUSUM allowance subtracted from each
    z-score before accumulating (z-scores below it decay the statistic);
    ``min_windows`` suppresses alerts until a baseline exists.
    """

    alpha: float = 0.05
    drift: float = 0.5
    cusum_enter: float = 8.0
    cusum_exit: float = 1.0
    cusum_cap: float = 10.0
    min_windows: int = 12
    sigma_floor: float = 0.5  # percentage points
    min_window_total: int = 5  # connections; thinner windows are skipped

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise StreamError("alpha must be in (0, 1]")
        if self.cusum_exit > self.cusum_enter:
            raise StreamError("cusum_exit must not exceed cusum_enter")
        if self.cusum_cap < self.cusum_enter:
            raise StreamError("cusum_cap must be >= cusum_enter")
        if self.min_window_total < 1:
            raise StreamError("min_window_total must be >= 1")
        if self.drift < 0.0:
            raise StreamError("drift must be >= 0")
        if self.sigma_floor <= 0.0:
            raise StreamError("sigma_floor must be positive")


@dataclasses.dataclass(frozen=True)
class AnomalyEvent:
    """One alert transition."""

    country: str
    kind: str  # "start" | "end"
    window_start: float
    rate: float
    baseline: float
    zscore: float
    cusum: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class _CountryState:
    mean: float = 0.0
    var: float = 0.0
    n_windows: int = 0
    cusum: float = 0.0
    active: bool = False


class EwmaDetector:
    """Per-country EWMA baseline + CUSUM-of-z spike detector."""

    def __init__(self, config: Optional[AnomalyConfig] = None) -> None:
        self.config = config or AnomalyConfig()
        self._states: Dict[str, _CountryState] = {}
        self.events: List[AnomalyEvent] = []

    # ------------------------------------------------------------------
    def observe(
        self, country: str, window_start: float, rate: float, total: int
    ) -> List[AnomalyEvent]:
        """Feed one closed (country, window): its rate (%) and population.

        Returns the events this window triggered (usually none).
        """
        config = self.config
        if total < config.min_window_total:
            return self._observe_thin(country, window_start, rate)
        state = self._states.setdefault(country, _CountryState())
        emitted: List[AnomalyEvent] = []

        if state.n_windows == 0:
            # First usable window seeds the baseline; nothing to score.
            state.mean = rate
            state.var = 0.0
            state.n_windows = 1
            return []

        p0 = min(max(state.mean / 100.0, 0.01), 0.99)
        binom_se = 100.0 * math.sqrt(p0 * (1.0 - p0) / total)
        sigma = max(math.sqrt(state.var), binom_se, config.sigma_floor)
        zscore = (rate - state.mean) / sigma

        if state.n_windows >= config.min_windows:
            # The cap bounds how far the statistic can run above the
            # enter threshold, which in turn bounds how many quiet
            # windows it takes to declare an incident over.
            state.cusum = min(
                config.cusum_cap,
                max(0.0, state.cusum + zscore - config.drift),
            )

        if not state.active and state.cusum >= config.cusum_enter:
            state.active = True
            emitted.append(
                AnomalyEvent(
                    country=country,
                    kind="start",
                    window_start=window_start,
                    rate=rate,
                    baseline=state.mean,
                    zscore=zscore,
                    cusum=state.cusum,
                )
            )
        elif state.active and state.cusum <= config.cusum_exit:
            state.active = False
            emitted.append(
                AnomalyEvent(
                    country=country,
                    kind="end",
                    window_start=window_start,
                    rate=rate,
                    baseline=state.mean,
                    zscore=zscore,
                    cusum=state.cusum,
                )
            )

        # Update the baseline *after* scoring, and freeze it while an
        # incident is active so the spike does not absorb into "normal".
        if not state.active:
            delta = rate - state.mean
            state.mean += config.alpha * delta
            state.var = (1.0 - config.alpha) * (state.var + config.alpha * delta * delta)
        state.n_windows += 1

        self.events.extend(emitted)
        return emitted

    def _observe_thin(
        self, country: str, window_start: float, rate: float
    ) -> List[AnomalyEvent]:
        """A window below ``min_window_total``: no rate information.

        The rate is not scored and the baseline is untouched, but the
        CUSUM statistic still decays by the per-window ``drift``
        allowance -- exactly what a perfectly-on-baseline (z = 0)
        window would subtract.  Without this, an active incident can
        never fall below ``cusum_exit`` while traffic is sparse and the
        alert latches open forever (the post-blackout lull shape).
        """
        state = self._states.get(country)
        if state is None or state.cusum <= 0.0:
            return []
        config = self.config
        state.cusum = max(0.0, state.cusum - config.drift)
        if state.active and state.cusum <= config.cusum_exit:
            state.active = False
            event = AnomalyEvent(
                country=country,
                kind="end",
                window_start=window_start,
                rate=rate,
                baseline=state.mean,
                zscore=0.0,
                cusum=state.cusum,
            )
            self.events.append(event)
            return [event]
        return []

    # ------------------------------------------------------------------
    def is_active(self, country: str) -> bool:
        state = self._states.get(country)
        return bool(state and state.active)

    @property
    def active_countries(self) -> List[str]:
        return sorted(c for c, s in self._states.items() if s.active)

    def baseline(self, country: str) -> Optional[float]:
        state = self._states.get(country)
        return state.mean if state else None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "config": dataclasses.asdict(self.config),
            "states": {
                country: dataclasses.asdict(state)
                for country, state in self._states.items()
            },
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EwmaDetector":
        detector = cls(AnomalyConfig(**data["config"]))
        detector._states = {
            country: _CountryState(**state) for country, state in data["states"].items()
        }
        detector.events = [AnomalyEvent(**event) for event in data["events"]]
        return detector
