"""Incremental windowed aggregation over the classified stream.

:class:`StreamRollup` consumes :class:`~repro.stream.shard.StreamRecord`
values one at a time and maintains per-country × signature × hour
counters -- everything the headline batch analyses read -- without
retaining a single sample.  Its query methods reproduce the
corresponding :class:`~repro.core.aggregate.AnalysisDataset` results
*bit for bit* on the same stream: counters are integers, and the
percentage arithmetic follows the batch implementation exactly,
including accumulation order (per-country signature tallies are kept in
first-seen order, the order a batch ``Counter`` would iterate).

Rollups are **mergeable** (partial rollups from stream slices combine
associatively as long as slices are concatenated in stream order) and
**serialisable** (plain-JSON state for checkpoints).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.core.model import SignatureId, Stage
from repro.errors import StreamError
from repro.stream.shard import StreamRecord

__all__ = ["StreamRollup", "DEFAULT_BUCKET_SECONDS"]

#: One hour -- the granularity of the paper's Radar-style aggregates.
DEFAULT_BUCKET_SECONDS = 3600.0


class StreamRollup:
    """Mergeable per-country × signature × hour counters."""

    def __init__(self, bucket_seconds: float = DEFAULT_BUCKET_SECONDS) -> None:
        if bucket_seconds <= 0:
            raise StreamError("bucket_seconds must be positive")
        self.bucket_seconds = bucket_seconds
        self.n_records = 0
        #: country -> total connections
        self.totals: Dict[str, int] = {}
        #: country -> {signature-or-NOT_TAMPERING -> count}, first-seen order
        self.by_signature: Dict[str, Dict[SignatureId, int]] = {}
        #: (country, bucket_start) -> totals / tampering matches
        self.bucket_totals: Dict[Tuple[str, float], int] = {}
        self.bucket_matches: Dict[Tuple[str, float], int] = {}
        #: (country, signature, bucket_start) -> tampering matches
        self.bucket_signature: Dict[Tuple[str, SignatureId, float], int] = {}
        # --- stage statistics (the Table 1 companion numbers) ---
        self.possibly_tampered = 0
        self.stage_counts: Dict[str, int] = {}
        self.stage_matched: Dict[str, int] = {}
        self.signature_counts: Counter = Counter()
        # --- stream extent ---
        self.min_ts: Optional[float] = None
        self.max_ts: Optional[float] = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def bucket_of(self, ts: float) -> float:
        return math.floor(ts / self.bucket_seconds) * self.bucket_seconds

    def add(self, record: StreamRecord) -> None:
        """Fold one classified connection into every counter."""
        country = record.country
        self.n_records += 1
        self.totals[country] = self.totals.get(country, 0) + 1

        sig_key = record.signature if record.is_tampering else SignatureId.NOT_TAMPERING
        sigs = self.by_signature.setdefault(country, {})
        sigs[sig_key] = sigs.get(sig_key, 0) + 1

        bucket = self.bucket_of(record.ts)
        cell = (country, bucket)
        self.bucket_totals[cell] = self.bucket_totals.get(cell, 0) + 1
        if record.is_tampering:
            self.bucket_matches[cell] = self.bucket_matches.get(cell, 0) + 1
            sig_cell = (country, record.signature, bucket)
            self.bucket_signature[sig_cell] = self.bucket_signature.get(sig_cell, 0) + 1

        if record.possibly_tampered:
            self.possibly_tampered += 1
            stage_key = record.stage.value if record.stage != Stage.NONE else "other"
            self.stage_counts[stage_key] = self.stage_counts.get(stage_key, 0) + 1
            if record.is_tampering:
                self.stage_matched[stage_key] = self.stage_matched.get(stage_key, 0) + 1
                self.signature_counts[record.signature] += 1

        if self.min_ts is None or record.ts < self.min_ts:
            self.min_ts = record.ts
        if self.max_ts is None or record.ts > self.max_ts:
            self.max_ts = record.ts

    # ------------------------------------------------------------------
    # Merge / serialise
    # ------------------------------------------------------------------
    def merge(self, other: "StreamRollup") -> None:
        """Fold a later partial rollup into this one (in stream order).

        Merging slices out of stream order would silently break batch
        parity: ``by_signature`` keys would land in the wrong first-seen
        order, changing float accumulation in the percentage queries.
        The time extents make the reversal detectable -- a slice that
        ends strictly before this rollup begins cannot be "later".
        """
        if other.bucket_seconds != self.bucket_seconds:
            raise StreamError("cannot merge rollups with different bucket sizes")
        if (
            self.min_ts is not None
            and other.max_ts is not None
            and other.max_ts < self.min_ts
        ):
            raise StreamError(
                f"out-of-order merge: incoming slice ends at {other.max_ts} "
                f"but this rollup already starts at {self.min_ts}; partial "
                f"rollups must be merged in stream order to preserve "
                f"first-seen key ordering (batch parity)"
            )
        self.n_records += other.n_records
        for country, n in other.totals.items():
            self.totals[country] = self.totals.get(country, 0) + n
        for country, sigs in other.by_signature.items():
            mine = self.by_signature.setdefault(country, {})
            for sig, n in sigs.items():
                mine[sig] = mine.get(sig, 0) + n
        for cell, n in other.bucket_totals.items():
            self.bucket_totals[cell] = self.bucket_totals.get(cell, 0) + n
        for cell, n in other.bucket_matches.items():
            self.bucket_matches[cell] = self.bucket_matches.get(cell, 0) + n
        for cell, n in other.bucket_signature.items():
            self.bucket_signature[cell] = self.bucket_signature.get(cell, 0) + n
        self.possibly_tampered += other.possibly_tampered
        for key, n in other.stage_counts.items():
            self.stage_counts[key] = self.stage_counts.get(key, 0) + n
        for key, n in other.stage_matched.items():
            self.stage_matched[key] = self.stage_matched.get(key, 0) + n
        self.signature_counts.update(other.signature_counts)
        for ts in (other.min_ts, other.max_ts):
            if ts is None:
                continue
            if self.min_ts is None or ts < self.min_ts:
                self.min_ts = ts
            if self.max_ts is None or ts > self.max_ts:
                self.max_ts = ts

    def to_dict(self) -> dict:
        """JSON-safe state; list-of-rows encodings preserve key order."""
        return {
            "bucket_seconds": self.bucket_seconds,
            "n_records": self.n_records,
            "totals": [[c, n] for c, n in self.totals.items()],
            "by_signature": [
                [country, [[sig.value, n] for sig, n in sigs.items()]]
                for country, sigs in self.by_signature.items()
            ],
            "bucket_totals": [[c, b, n] for (c, b), n in self.bucket_totals.items()],
            "bucket_matches": [[c, b, n] for (c, b), n in self.bucket_matches.items()],
            "bucket_signature": [
                [c, sig.value, b, n] for (c, sig, b), n in self.bucket_signature.items()
            ],
            "possibly_tampered": self.possibly_tampered,
            "stage_counts": dict(self.stage_counts),
            "stage_matched": dict(self.stage_matched),
            "signature_counts": [[sig.value, n] for sig, n in self.signature_counts.items()],
            "min_ts": self.min_ts,
            "max_ts": self.max_ts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamRollup":
        rollup = cls(bucket_seconds=data["bucket_seconds"])
        rollup.n_records = data["n_records"]
        rollup.totals = {c: n for c, n in data["totals"]}
        rollup.by_signature = {
            country: {SignatureId(value): n for value, n in sigs}
            for country, sigs in data["by_signature"]
        }
        rollup.bucket_totals = {(c, b): n for c, b, n in data["bucket_totals"]}
        rollup.bucket_matches = {(c, b): n for c, b, n in data["bucket_matches"]}
        rollup.bucket_signature = {
            (c, SignatureId(value), b): n for c, value, b, n in data["bucket_signature"]
        }
        rollup.possibly_tampered = data["possibly_tampered"]
        rollup.stage_counts = dict(data["stage_counts"])
        rollup.stage_matched = dict(data["stage_matched"])
        rollup.signature_counts = Counter(
            {SignatureId(value): n for value, n in data["signature_counts"]}
        )
        rollup.min_ts = data["min_ts"]
        rollup.max_ts = data["max_ts"]
        return rollup

    # ------------------------------------------------------------------
    # Queries (batch-parity methods)
    # ------------------------------------------------------------------
    def country_signature_shares(self) -> Dict[str, Dict[SignatureId, float]]:
        """Per country: % of its connections matching each signature.

        Mirrors :meth:`AnalysisDataset.country_signature_shares`.
        """
        return {
            country: {
                sig: 100.0 * n / self.totals[country] for sig, n in sigs.items()
            }
            for country, sigs in self.by_signature.items()
        }

    def country_tampering_rate(self) -> Dict[str, float]:
        """Per country: % of connections matching any tampering signature."""
        shares = self.country_signature_shares()
        return {
            country: sum(pct for sig, pct in sigs.items() if sig.is_tampering)
            for country, sigs in shares.items()
        }

    def timeseries(self) -> Dict[str, List[Tuple[float, float]]]:
        """Per country: (bucket_start, tampering %) sorted by time.

        Mirrors :meth:`AnalysisDataset.timeseries` at this rollup's
        bucket size (default one hour) with no signature/stage filter.
        """
        buckets_by_country: Dict[str, List[float]] = {}
        for country, bucket in self.bucket_totals:
            buckets_by_country.setdefault(country, []).append(bucket)
        return {
            country: [
                (
                    b,
                    100.0
                    * self.bucket_matches.get((country, b), 0)
                    / self.bucket_totals.get((country, b), 1),
                )
                for b in sorted(buckets)
            ]
            for country, buckets in buckets_by_country.items()
        }

    def signature_hour_counts(
        self, country: str
    ) -> Dict[SignatureId, List[Tuple[float, int]]]:
        """Per signature: (bucket_start, match count) for one country."""
        out: Dict[SignatureId, List[Tuple[float, int]]] = {}
        for (c, sig, bucket), n in self.bucket_signature.items():
            if c == country:
                out.setdefault(sig, []).append((bucket, n))
        for series in out.values():
            series.sort()
        return out

    def bucket_rate(self, country: str, bucket: float) -> Optional[float]:
        """Tampering % of one (country, bucket) cell, if observed."""
        total = self.bucket_totals.get((country, bucket))
        if not total:
            return None
        return 100.0 * self.bucket_matches.get((country, bucket), 0) / total

    def stage_statistics(self) -> Dict[str, object]:
        """The §4.1 headline numbers, mirroring the batch implementation."""
        total = self.n_records
        n_possibly = self.possibly_tampered
        matched_total = sum(self.signature_counts.values())

        def share(n: int, d: int) -> float:
            return 100.0 * n / d if d else 0.0

        return {
            "total_connections": total,
            "possibly_tampered": n_possibly,
            "possibly_tampered_pct": share(n_possibly, total),
            "stage_share_pct": {
                k: share(v, n_possibly) for k, v in sorted(self.stage_counts.items())
            },
            "stage_coverage_pct": {
                k: share(self.stage_matched.get(k, 0), v)
                for k, v in sorted(self.stage_counts.items())
            },
            "signature_coverage_pct": share(matched_total, n_possibly),
            "signature_counts": Counter(self.signature_counts),
        }

    @property
    def countries(self) -> List[str]:
        return sorted(self.totals)
