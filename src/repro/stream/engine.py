"""The stream engine: source → shard pool → rollup → anomaly → report.

:class:`StreamEngine` is the long-running service loop.  It pulls
:class:`~repro.stream.source.StreamItem` values from a
:class:`~repro.stream.source.SampleSource`, classifies them (inline, or
across a :class:`~repro.stream.shard.ShardedClassifierPool` when
``n_workers > 0``), geolocates each record, folds it into a
:class:`~repro.stream.rollup.StreamRollup`, closes hour windows as
virtual time advances and feeds their rates to the
:class:`~repro.stream.anomaly.EwmaDetector`, and periodically snapshots
everything through a :class:`~repro.stream.checkpoint.CheckpointManager`.

Checkpoint correctness with a parallel pool relies on one invariant:
the pool's ordered merge returns records in **pull order**, so the
source cursor recorded at pull time for sequence *k* is exactly "the
source is consumed through record *k*".  The engine keeps those cursors
in a bounded deque and retires them as records come back; whatever
cursor was last retired is always safe to persist.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from repro.cdn.geo import GeoDatabase
from repro.core.classifier import ClassifierConfig, TamperingClassifier
from repro.errors import CheckpointError, StreamError, TransientSourceError
from repro.obs import (
    NULL_RECORDER,
    HeadSampler,
    Observability,
    ProgressReporter,
    TraceContext,
    mint_span_id,
    mint_trace_id,
)
from repro.stream.anomaly import AnomalyConfig, AnomalyEvent, EwmaDetector
from repro.stream.checkpoint import CheckpointManager
from repro.stream.metrics import StreamMetrics
from repro.stream.rollup import DEFAULT_BUCKET_SECONDS, StreamRollup
from repro.stream.shard import (
    ShardConfig,
    ShardedClassifierPool,
    StreamRecord,
    WorkerChaos,
)
from repro.stream.source import SampleSource, StreamItem

__all__ = ["StreamEngine", "StreamReport"]

#: "No cursor seen yet" marker; distinct from any real cursor value.
_NO_CURSOR = object()

#: Timing-sample strides (powers of two) for the hottest per-record
#: spans: only every Nth occurrence is clocked, and the recorded span
#: carries weight N in its histogram.  Occurrence *counters* stay exact
#: -- sampling only applies to latency measurement.
_READ_SAMPLE = 8
_CLASSIFY_SAMPLE = 4


@dataclasses.dataclass
class StreamReport:
    """What a (possibly partial) stream run produced."""

    rollup: StreamRollup
    events: List[AnomalyEvent]
    metrics: dict
    finished: bool
    samples_processed: int

    def render(self, top: int = 10) -> str:
        """Human-readable summary block for the CLI."""
        lines = [
            f"stream {'finished' if self.finished else 'stopped'} after "
            f"{self.samples_processed} connections "
            f"({self.rollup.n_records} in rollup)",
        ]
        rates = sorted(
            self.rollup.country_tampering_rate().items(), key=lambda kv: -kv[1]
        )
        if rates:
            lines.append("top tampered countries:")
            for country, rate in rates[:top]:
                lines.append(f"  {country}: {rate:.1f}%")
        if self.events:
            lines.append("anomalies:")
            for event in self.events:
                lines.append(
                    f"  [{event.kind}] {event.country} window={event.window_start:.0f} "
                    f"rate={event.rate:.1f}% baseline={event.baseline:.1f}% "
                    f"z={event.zscore:.1f}"
                )
        else:
            lines.append("anomalies: none")
        return "\n".join(lines)


class StreamEngine:
    """Online counterpart of ``classify_all`` + ``AnalysisDataset``."""

    def __init__(
        self,
        source: Optional[SampleSource],
        geodb: Optional[GeoDatabase] = None,
        *,
        n_workers: int = 0,
        classifier_config: Optional[ClassifierConfig] = None,
        shard_config: Optional[ShardConfig] = None,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        grace_seconds: float = 0.0,
        anomaly_config: Optional[AnomalyConfig] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_interval: int = 5000,
        max_source_retries: int = 3,
        retry_backoff_seconds: float = 0.05,
        worker_chaos: Optional[WorkerChaos] = None,
        store_dir: Optional[str] = None,
        store_config: Optional[object] = None,
        store_chaos: Optional[object] = None,
        obs: Optional[Observability] = None,
        progress: Optional[ProgressReporter] = None,
        trace_sample_n: int = 0,
    ) -> None:
        if n_workers < 0:
            raise StreamError("n_workers must be >= 0")
        if max_source_retries < 0:
            raise StreamError("max_source_retries must be >= 0")
        if retry_backoff_seconds < 0:
            raise StreamError("retry_backoff_seconds must be >= 0")
        if trace_sample_n < 0:
            raise StreamError("trace_sample_n must be >= 0")
        self.source = source
        self.geodb = geodb
        self.n_workers = n_workers
        self.classifier_config = classifier_config or ClassifierConfig()
        self.shard_config = shard_config or ShardConfig(n_workers=max(n_workers, 1))
        self.bucket_seconds = bucket_seconds
        self.grace_seconds = grace_seconds
        self.rollup = StreamRollup(bucket_seconds=bucket_seconds)
        self.detector = EwmaDetector(anomaly_config)
        self.metrics = StreamMetrics()
        #: Stage-level timers/counters; pass ``repro.obs.NULL_OBS`` to
        #: disable instrumentation entirely.
        self.obs = obs if obs is not None else Observability()
        self.metrics.obs = self.obs
        self.progress = progress
        self._t_fold = self.obs.timer("rollup.fold")
        self._t_anomaly = self.obs.timer("anomaly.observe")
        self._t_checkpoint = self.obs.timer("checkpoint.write")
        self._c_source_retries = self.obs.counter("source.retries")
        #: Request-scoped span recorder (see repro.obs.spantree).  The
        #: untraced hot path only ever reads ``.active is None`` off it.
        self._trace_rec = getattr(self.obs, "trace_recorder", NULL_RECORDER)
        #: Pull-mode head sampling: mint a TraceContext for 1 in N items
        #: so `repro stream --trace-sample N` yields span trees without
        #: an HTTP tier in front.  Push-mode contexts arrive on the
        #: items themselves (the serving tier mints them).  Tracing is
        #: serial-path only: the shard pool's workers classify in other
        #: processes, where spans cannot reach this recorder.
        self.trace_sample_n = trace_sample_n
        self._trace_sampler = (
            HeadSampler(trace_sample_n)
            if trace_sample_n and n_workers == 0
            else None
        )
        self.max_source_retries = max_source_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        self.worker_chaos = worker_chaos
        self.checkpointer = (
            CheckpointManager(checkpoint_path, interval=checkpoint_interval)
            if checkpoint_path
            else None
        )
        if store_dir is not None:
            # Imported here: repro.store depends on this package's rollup
            # and shard modules, so a top-level import would be circular.
            from repro.store import RollupStore

            self.store: Optional[RollupStore] = RollupStore(
                store_dir,
                bucket_seconds=bucket_seconds,
                config=store_config,
                chaos=store_chaos,
                obs=self.obs,
            )
        else:
            self.store = None
        #: records folded so far (equals ``rollup.n_records`` without a
        #: store; with one, the rollup stays empty until the final
        #: materialisation, so the engine counts folds itself).
        self._n_folded = 0
        #: (country, bucket_start) -> [total, matches] for buckets that
        #: have not closed yet (not fed to the detector).
        self._open_cells: Dict[Tuple[str, float], List[int]] = {}
        self._watermark: Optional[float] = None
        self._pull_seq = 0
        self._cursors: Deque[Tuple[int, object]] = deque()
        self._safe_cursor: Optional[object] = None
        self._last_cursor: object = _NO_CURSOR
        self._source_exhausted = False
        #: Cooperative stop flag (signal handlers, service drain).  The
        #: run loop checks it between folds, so a stop always lands on a
        #: record boundary with a consistent checkpointable state.
        self._stop_requested = False
        # Push-mode session state (see open_push/push_items/drain).
        self._push_open = False
        self._push_classifier: Optional[TamperingClassifier] = None
        self._push_seq = 0

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _restore(self) -> None:
        assert self.checkpointer is not None
        payload = self.checkpointer.load()
        if payload is None:
            if self.store is not None and self.store.is_dirty:
                raise CheckpointError(
                    "store directory already holds ingested state but no "
                    "checkpoint exists to align the source cursor with it; "
                    "start over with an empty store directory"
                )
            return
        if payload["bucket_seconds"] != self.bucket_seconds:
            raise CheckpointError(
                "checkpoint bucket size differs from engine configuration"
            )
        if self.store is not None:
            if "store" not in payload:
                raise CheckpointError(
                    "checkpoint was written without a store; cannot resume "
                    "it into a store-backed engine"
                )
            self.store.restore(payload["store"])
        elif "store" in payload:
            raise CheckpointError(
                "checkpoint was written by a store-backed engine; configure "
                "the same --store directory to resume it"
            )
        else:
            self.rollup = StreamRollup.from_dict(payload["rollup"])
        self.detector = EwmaDetector.from_dict(payload["anomaly"])
        self._n_folded = payload["samples_done"]
        self._open_cells = {
            (country, bucket): [total, matches]
            for country, bucket, total, matches in payload["open_cells"]
        }
        self._watermark = payload["watermark"]
        self._safe_cursor = payload["cursor"]
        if self.source is not None:
            self.source.seek(payload["cursor"])
        self.metrics.resumed_from = payload["samples_done"]
        self.metrics.checkpoints_written = 0
        self.obs.counter("engine.resumes").inc()
        self.obs.event(
            "engine.resume",
            samples_done=payload["samples_done"],
            watermark=payload["watermark"],
        )

    def _checkpoint_state(self) -> dict:
        state = {
            "bucket_seconds": self.bucket_seconds,
            "cursor": self._safe_cursor,
            "watermark": self._watermark,
            "anomaly": self.detector.to_dict(),
            "open_cells": [
                [country, bucket, counts[0], counts[1]]
                for (country, bucket), counts in self._open_cells.items()
            ],
        }
        if self.store is not None:
            # Sealed history lives in segments; the checkpoint carries
            # only the open tail -- O(open buckets), not O(history).
            state["store"] = self.store.checkpoint_state()
        else:
            state["rollup"] = self.rollup.to_dict()
        return state

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def _close_ripe_cells(self) -> None:
        """Feed every cell whose bucket has fully passed to the detector."""
        if self._watermark is None:
            return
        horizon = self._watermark - self.bucket_seconds - self.grace_seconds
        ripe = sorted(
            (cell for cell in self._open_cells if cell[1] <= horizon),
            key=lambda cell: (cell[1], cell[0]),
        )
        if ripe:
            # One anomaly.observe span per non-empty sweep, not per
            # cell: most records ripen nothing, and a per-cell span
            # would make the detector look like a per-record stage.
            events_before = self.metrics.anomaly_events
            with self._t_anomaly:
                for cell in ripe:
                    self._feed_cell(cell)
            rec = self._trace_rec
            if (
                rec.active is not None
                and self.metrics.anomaly_events > events_before
            ):
                # The record whose arrival tipped a detector cell is
                # worth keeping whole, however fast it was.
                rec.pin(rec.active.trace_id, "anomaly")
        if self.store is not None:
            # The same horizon that closes detector cells seals store
            # buckets: an in-order source can never touch them again.
            if self.store.seal_through(horizon):
                self.store.maybe_compact()

    def _flush_cells(self) -> None:
        """End of stream: close everything still open, in time order."""
        cells = sorted(self._open_cells, key=lambda cell: (cell[1], cell[0]))
        if cells:
            with self._t_anomaly:
                for cell in cells:
                    self._feed_cell(cell)

    def _feed_cell(self, cell: Tuple[str, float]) -> None:
        total, matches = self._open_cells.pop(cell)
        rate = 100.0 * matches / total if total else 0.0
        events = self.detector.observe(cell[0], cell[1], rate, total)
        self.metrics.anomaly_events += len(events)

    def _fold(self, record: StreamRecord) -> None:
        """Geolocate, roll up, advance windows, retire the cursor."""
        if self.geodb is not None:
            geo = self.geodb.lookup_or_none(record.client_ip)
            if geo is not None:
                record = record.located(geo.country, geo.asn)
        rec = self._trace_rec
        token = rec.begin("rollup.fold") if rec.active is not None else None
        with self._t_fold:
            if self.store is not None:
                self.store.add(record)
            else:
                self.rollup.add(record)
        if token is not None:
            rec.finish(token)
        self._n_folded += 1
        self.metrics.on_record_out(record.is_tampering)

        cell = (record.country, self.rollup.bucket_of(record.ts))
        counts = self._open_cells.setdefault(cell, [0, 0])
        counts[0] += 1
        if record.is_tampering:
            counts[1] += 1
        if self._watermark is None or record.ts > self._watermark:
            self._watermark = record.ts
        self._close_ripe_cells()

        while self._cursors and self._cursors[0][0] <= record.seq:
            _, cursor = self._cursors.popleft()
            self._safe_cursor = cursor

        if self.checkpointer is not None and self.checkpointer.due(self._n_folded):
            with self._t_checkpoint:
                self.checkpointer.save(self._checkpoint_state(), self._n_folded)
            self.metrics.checkpoints_written += 1
        if self.progress is not None:
            self.progress.maybe_report(self.metrics)

    # ------------------------------------------------------------------
    # Input plumbing
    # ------------------------------------------------------------------
    def _source_items(self) -> Iterator[StreamItem]:
        """Iterate the source, absorbing transient errors with backoff.

        A :class:`~repro.errors.TransientSourceError` (I/O hiccup,
        half-written JSONL tail line, injected fault) re-seeks the
        source to its own cursor and re-iterates; the failure budget is
        *consecutive* -- any successful item resets it.  Every other
        error propagates immediately.
        """
        failures = 0
        # A warm read is a couple of microseconds, so per-read clocks
        # would tax it visibly: time 1 in _READ_SAMPLE reads and let the
        # weighted histogram estimate the rest (see SpanTimer).
        t_read = self.obs.timer("source.read", sample=_READ_SAMPLE)
        n_reads = 0
        while True:
            iterator = iter(self.source)
            try:
                while True:
                    if n_reads & (_READ_SAMPLE - 1):
                        item = next(iterator)
                    else:
                        with t_read:
                            item = next(iterator)
                    n_reads += 1
                    failures = 0
                    yield item
            except StopIteration:
                return
            except TransientSourceError:
                failures += 1
                if failures > self.max_source_retries:
                    raise
                self.metrics.source_retries += 1
                self._c_source_retries.inc()
                if self.retry_backoff_seconds > 0:
                    time.sleep(self.retry_backoff_seconds * (2 ** (failures - 1)))
                self.source.seek(self.source.cursor())

    def _instrumented_items(self, max_samples: Optional[int]) -> Iterator[StreamItem]:
        iterator = self._source_items()
        for item in iterator:
            cursor = self.source.cursor()
            if cursor == self._last_cursor:
                # An unchanged cursor means the source redelivered the
                # item it already handed out (at-least-once upstream,
                # retry replay): drop it, or the rollup double-counts.
                self.metrics.duplicates_dropped += 1
                continue
            self._last_cursor = cursor
            self._cursors.append((self._pull_seq, cursor))
            self._pull_seq += 1
            self.metrics.on_sample_in()
            sampler = self._trace_sampler
            if sampler is not None and sampler.decide():
                item = dataclasses.replace(
                    item,
                    trace=TraceContext(mint_trace_id(), mint_span_id(), True),
                )
            yield item
            if max_samples is not None and self._pull_seq >= max_samples:
                # The cap may coincide with the end of the source; peek
                # so a source holding exactly max_samples items still
                # reports finished and flushes its trailing windows.
                try:
                    next(iterator)
                except StopIteration:
                    self._source_exhausted = True
                return
        self._source_exhausted = True

    def _serial_records(
        self,
        items: Iterator[StreamItem],
        classifier: Optional[TamperingClassifier] = None,
        seq_start: int = 0,
    ) -> Iterator[StreamRecord]:
        if classifier is None:
            classifier = TamperingClassifier(self.classifier_config)
        obs = self.obs
        # With the memo enabled, timings are routed into hit/miss
        # histograms (a cache hit is ~feature extraction only, a miss
        # runs the full signature cascade); the split is detected from
        # the classifier's own hit counter, so it costs one compare.
        # Only every _CLASSIFY_SAMPLE-th record is clocked -- the
        # hit/miss *counters* are exact, the latency histograms are
        # weight-corrected estimates.
        split = self.classifier_config.cache_size > 0 and obs.enabled
        t_hit = obs.timer("classify.hit", sample=_CLASSIFY_SAMPLE)
        t_miss = obs.timer("classify.miss", sample=_CLASSIFY_SAMPLE)
        t_classify = obs.timer("classify")
        c_hits = obs.counter("classify.cache_hits")
        c_misses = obs.counter("classify.cache_misses")
        rec = self._trace_rec
        perf = time.perf_counter
        seq = seq_start
        # ``traced`` mirrors whether the recorder holds this thread's
        # active context.  Activation happens *here*, per item, because
        # the generator stays suspended while the caller folds the
        # yielded record -- so fold/WAL/seal spans all land under the
        # right request context without any parameter threading.
        traced = False
        try:
            for item in items:
                trace = item.trace
                if trace is not None or traced:
                    rec.activate(trace)
                    traced = rec.active is not None
                if split:
                    hits_before = classifier.cache_hits
                    if not traced and seq & (_CLASSIFY_SAMPLE - 1):
                        result = classifier.classify(item.sample)
                        if classifier.cache_hits > hits_before:
                            c_hits.inc()
                        else:
                            c_misses.inc()
                    else:
                        start = perf()
                        result = classifier.classify(item.sample)
                        duration = perf() - start
                        hit = classifier.cache_hits > hits_before
                        if not seq & (_CLASSIFY_SAMPLE - 1):
                            # Only stride observations feed the weighted
                            # histograms; a traced off-stride measurement
                            # must not inflate their estimated counts.
                            (t_hit if hit else t_miss).record(duration, start)
                        (c_hits if hit else c_misses).inc()
                        if traced:
                            rec.record_span(
                                "classify.hit" if hit else "classify.miss",
                                start, duration,
                            )
                elif traced:
                    start = perf()
                    with t_classify:
                        result = classifier.classify(item.sample)
                    rec.record_span("classify", start, perf() - start)
                else:
                    with t_classify:
                        result = classifier.classify(item.sample)
                yield StreamRecord.from_result(result, seq=seq, ts=item.ts)
                seq += 1
        finally:
            if traced:
                rec.activate(None)

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(
        self,
        max_samples: Optional[int] = None,
        resume: bool = False,
    ) -> StreamReport:
        """Drain the source (or ``max_samples`` of it) and report.

        With ``resume=True`` and an existing checkpoint, the engine
        restores rollup/detector/window state and seeks the source to
        the checkpointed cursor first -- nothing is reprocessed,
        nothing is skipped.
        """
        if self.source is None:
            raise StreamError(
                "run() needs a source; a source-less engine is driven "
                "through open_push()/push_items()/drain()"
            )
        if resume:
            if self.checkpointer is None:
                raise StreamError("resume requested but no checkpoint path configured")
            self._restore()
        elif self.store is not None and self.store.is_dirty:
            raise StreamError(
                "store directory already holds ingested state; resume from "
                "its checkpoint or start over with an empty directory "
                "(re-ingesting into a populated store would double-count)"
            )
        self.metrics.start()

        items = self._instrumented_items(max_samples)
        exhausted_cleanly = False
        try:
            if self.n_workers == 0:
                for record in self._serial_records(items):
                    self._fold(record)
                    if self._stop_requested:
                        break
            else:
                pool_config = dataclasses.replace(
                    self.shard_config, n_workers=self.n_workers
                )
                pool = ShardedClassifierPool(
                    pool_config,
                    self.classifier_config,
                    chaos=self.worker_chaos,
                    obs=self.obs,
                )
                try:
                    with pool:
                        for record in pool.process(items):
                            self._fold(record)
                            if self._stop_requested:
                                break
                        self.metrics.set_worker_stats(
                            pool.worker_busy, pool.worker_records
                        )
                finally:
                    self.metrics.worker_restarts = pool.restarts
                    self.metrics.forced_terminations = pool.forced_terminations
            exhausted_cleanly = True
        finally:
            self.metrics.stop()
            self.source.close()

        finished = (
            exhausted_cleanly
            and not self._stop_requested
            and (
                max_samples is None
                or self._pull_seq < max_samples
                or self._source_exhausted
            )
        )
        if finished:
            self._flush_cells()
            if self.store is not None:
                # The stream is done: freeze the trailing open buckets
                # into segments so restarts (and `repro query`) see the
                # whole history on disk.
                self.store.seal_open()
                self.store.maybe_compact()
            if self.checkpointer is not None and self._n_folded:
                # Final state (post window-flush) so a restart of a
                # finished stream has nothing left to do.
                with self._t_checkpoint:
                    self.checkpointer.save(self._checkpoint_state(), self._n_folded)
                self.metrics.checkpoints_written += 1
        elif self.checkpointer is not None and self._safe_cursor is not None:
            with self._t_checkpoint:
                self.checkpointer.save(self._checkpoint_state(), self._n_folded)
            self.metrics.checkpoints_written += 1

        if self.store is not None:
            self.store.flush()
            self.metrics.store_stats = self.store.stats()
            # Materialise the full (sealed + open) history so the report
            # and every downstream consumer see the same rollup a
            # store-less engine would have built.
            self.rollup = self.store.to_rollup()

        return StreamReport(
            rollup=self.rollup,
            events=list(self.detector.events),
            metrics=self.metrics.snapshot(),
            finished=finished,
            samples_processed=self.rollup.n_records,
        )

    # ------------------------------------------------------------------
    # Cooperative stop
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask a running ``run()`` loop to stop at the next record.

        Safe to call from a signal handler or another thread: it only
        sets a flag.  The loop finishes folding the current record,
        writes a resumable checkpoint (when one is configured), and
        returns a report with ``finished=False`` -- exactly the state a
        later ``run(resume=True)`` continues from.  Open store buckets
        are deliberately **not** sealed: the resumed source will deliver
        more records for them, and sealing would silently drop those
        (see ``RollupStore.sealed_skips``).
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Push mode (the serve tier's entry point)
    # ------------------------------------------------------------------
    def open_push(self, resume: bool = False) -> None:
        """Start a push-ingest session on a source-less engine.

        Instead of pulling a :class:`SampleSource`, callers hand the
        engine already-timestamped items via :meth:`push_items` and end
        the session with :meth:`drain`.  ``resume=True`` restores an
        existing checkpoint (there is no source cursor to seek; the
        checkpoint's fold count plus the store's WAL truncation carry
        the alignment).
        """
        if self.source is not None:
            raise StreamError("open_push() requires a source-less engine")
        if self.n_workers:
            raise StreamError(
                "push mode classifies inline; construct the engine with "
                "n_workers=0"
            )
        if self._push_open:
            raise StreamError("push session already open")
        if resume:
            if self.checkpointer is None:
                raise StreamError(
                    "resume requested but no checkpoint path configured"
                )
            self._restore()
        elif self.store is not None and self.store.is_dirty:
            raise StreamError(
                "store directory already holds ingested state; resume from "
                "its checkpoint or start over with an empty directory "
                "(re-ingesting into a populated store would double-count)"
            )
        self._push_seq = self._n_folded
        self._push_classifier = TamperingClassifier(self.classifier_config)
        self.metrics.start()
        self._stop_requested = False
        self._push_open = True

    def push_items(self, items: List[StreamItem]) -> int:
        """Classify and fold a batch of items; returns records folded.

        Items must arrive in non-decreasing ``ts`` order across calls
        (same contract as a pull source): watermark advancement seals
        store buckets behind the stream, and a late record for a sealed
        bucket would be dropped as a ``sealed_skip``.
        """
        if not self._push_open:
            raise StreamError("no push session open; call open_push() first")
        folded = 0
        for record in self._serial_records(
            iter(items),
            classifier=self._push_classifier,
            seq_start=self._push_seq,
        ):
            self.metrics.on_sample_in()
            self._fold(record)
            self._push_seq += 1
            self._safe_cursor = self._n_folded
            folded += 1
        return folded

    def checkpoint_now(self) -> None:
        """Write a checkpoint of the current state immediately."""
        if self.checkpointer is None:
            raise StreamError("no checkpoint path configured")
        with self._t_checkpoint:
            self.checkpointer.save(self._checkpoint_state(), self._n_folded)
        self.metrics.checkpoints_written += 1

    def drain(self, seal: bool = True) -> StreamReport:
        """End a push session: flush windows, checkpoint, seal, report.

        ``seal=True`` is the end of the stream: close every window,
        freeze the trailing open buckets into segments (readers see the
        whole history on disk).  ``seal=False`` is a pause: windows and
        open buckets stay open -- in the checkpoint and WAL -- for a
        resumed session that will keep feeding the same buckets.
        """
        if not self._push_open:
            raise StreamError("no push session open; call open_push() first")
        self.metrics.stop()
        if seal:
            self._flush_cells()
            if self.store is not None:
                self.store.seal_open()
                self.store.maybe_compact()
        if self.checkpointer is not None and self._n_folded:
            with self._t_checkpoint:
                self.checkpointer.save(self._checkpoint_state(), self._n_folded)
            self.metrics.checkpoints_written += 1
        if self.store is not None:
            self.store.flush()
            self.metrics.store_stats = self.store.stats()
            self.rollup = self.store.to_rollup()
        self._push_open = False
        self._push_classifier = None
        return StreamReport(
            rollup=self.rollup,
            events=list(self.detector.events),
            metrics=self.metrics.snapshot(),
            finished=seal,
            samples_processed=self.rollup.n_records,
        )
