"""Seeded, deterministic fault injection for the streaming pipeline.

A measurement pipeline that runs unattended for weeks is defined by how
it behaves when things break: sources hiccup and redeliver, capture
files get truncated mid-line, workers are OOM-killed, and the process
itself is kill-9'd between checkpoints.  This module makes every one of
those failures *schedulable* so the recovery paths are exercised
deterministically instead of discovered in production:

* :class:`FaultPlan` -- a list of :class:`FaultSpec` entries, each
  "fire fault *kind* when the source is about to deliver item *index*".
  Plans can be generated from a seed (every run with the same seed sees
  the same faults) or loaded from JSON (see :meth:`FaultPlan.to_dict`
  for the schema).
* :class:`FaultySource` -- wraps any
  :class:`~repro.stream.source.SampleSource` and executes the plan:
  transient errors and truncated-line reads raise
  :class:`~repro.errors.TransientSourceError` (the engine retries),
  stalls sleep, duplicates redeliver the previous item without
  advancing the cursor (the engine dedupes), and ``kill9`` takes the
  whole process down -- the hook the kill/resume drill is built on.
* :class:`~repro.stream.shard.WorkerChaos` (re-exported) -- the pool's
  own hook: one worker dies after N batches, abruptly or cleanly.
* :func:`run_drill` -- the three end-to-end fire drills behind
  ``repro stream --drill``: each runs the pipeline under a fault plan
  and asserts the final rollup is byte-identical to an uninterrupted
  clean run.

Faults fire **at most once** each, and plans index *delivered* items
(what the engine sees), so a plan composes with any source family.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import random
import signal
import tempfile
import time
from collections import Counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import StreamError, TransientSourceError
from repro.stream.shard import ShardConfig, WorkerChaos
from repro.stream.source import SampleSource, StreamItem

__all__ = [
    "FAULT_KINDS",
    "DRILL_MODES",
    "FaultSpec",
    "FaultPlan",
    "FaultySource",
    "WorkerChaos",
    "DrillResult",
    "run_drill",
]

#: Everything a :class:`FaultSpec` can do to a stream.
FAULT_KINDS = ("error", "stall", "truncate", "duplicate", "kill9")

#: The fire drills ``repro stream --drill`` knows how to run.
DRILL_MODES = ("kill-worker", "flaky-source", "kill9-resume", "store-compaction")

#: Plan schema version carried in :meth:`FaultPlan.to_dict`.
FAULT_PLAN_VERSION = 1


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire ``kind`` before delivering item ``index``.

    ``index`` counts items actually delivered by the wrapped source
    (0-based), so plans are stable across source families.  Kinds:

    * ``error`` -- raise a :class:`TransientSourceError` once; the item
      is delivered on the engine's retry.
    * ``truncate`` -- same recovery path, but phrased as a torn JSONL
      tail line (the fault a concurrently-written capture file shows).
    * ``stall`` -- sleep ``stall_seconds`` before delivering.
    * ``duplicate`` -- redeliver the previous item without advancing the
      cursor; downstream must dedupe.
    * ``kill9`` -- SIGKILL the calling process.  For drills that kill
      the whole engine at a planned point.
    """

    index: int
    kind: str
    stall_seconds: float = 0.002
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise StreamError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.index < 0:
            raise StreamError("fault index must be >= 0")
        if self.stall_seconds < 0:
            raise StreamError("stall_seconds must be >= 0")


@dataclasses.dataclass
class FaultPlan:
    """An ordered, JSON-serialisable schedule of faults."""

    faults: List[FaultSpec] = dataclasses.field(default_factory=list)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.faults = sorted(self.faults, key=lambda f: f.index)
        by_index: Dict[int, List[Tuple[int, FaultSpec]]] = {}
        for key, fault in enumerate(self.faults):
            by_index.setdefault(fault.index, []).append((key, fault))
        self._by_index = by_index

    def __len__(self) -> int:
        return len(self.faults)

    def at(self, index: int) -> List[Tuple[int, FaultSpec]]:
        """``(key, fault)`` pairs scheduled for delivery index ``index``."""
        return self._by_index.get(index, [])

    @classmethod
    def generate(
        cls,
        seed: int,
        n_samples: int,
        *,
        error_rate: float = 0.01,
        stall_rate: float = 0.0,
        truncate_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        stall_seconds: float = 0.002,
    ) -> "FaultPlan":
        """Draw a plan from a seed: same seed, same faults, every run."""
        rates = (
            ("error", error_rate),
            ("stall", stall_rate),
            ("truncate", truncate_rate),
            ("duplicate", duplicate_rate),
        )
        if any(rate < 0 or rate > 1 for _, rate in rates):
            raise StreamError("fault rates must be within [0, 1]")
        rng = random.Random(seed)
        faults: List[FaultSpec] = []
        for index in range(n_samples):
            for kind, rate in rates:
                if rate > 0 and rng.random() < rate:
                    faults.append(
                        FaultSpec(index=index, kind=kind, stall_seconds=stall_seconds)
                    )
        return cls(faults=faults, seed=seed)

    def to_dict(self) -> dict:
        """The documented fault-plan JSON schema::

            {"version": 1, "seed": 7,
             "faults": [{"index": 120, "kind": "error",
                         "stall_seconds": 0.002, "detail": ""}, ...]}
        """
        return {
            "version": FAULT_PLAN_VERSION,
            "seed": self.seed,
            "faults": [dataclasses.asdict(fault) for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        version = payload.get("version", FAULT_PLAN_VERSION)
        if version != FAULT_PLAN_VERSION:
            raise StreamError(
                f"fault plan has schema version {version!r}, "
                f"expected {FAULT_PLAN_VERSION}"
            )
        faults = [
            FaultSpec(
                index=int(entry["index"]),
                kind=str(entry["kind"]),
                stall_seconds=float(entry.get("stall_seconds", 0.002)),
                detail=str(entry.get("detail", "")),
            )
            for entry in payload.get("faults", [])
        ]
        return cls(faults=faults, seed=payload.get("seed"))


class FaultySource(SampleSource):
    """Wrap a source and execute a :class:`FaultPlan` against its stream.

    Cursor and seek delegate to the wrapped source, so checkpoints taken
    through a faulty source resume exactly like clean ones.  Fired
    faults are remembered on the instance (not the iterator), so a
    retrying engine that re-iterates after an injected error does not
    trip over the same fault twice.
    """

    def __init__(self, inner: SampleSource, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._delivered = 0
        self._fired: set = set()
        self._last_item: Optional[StreamItem] = None
        #: kind -> number of faults actually fired (drills report this).
        self.injected: Counter = Counter()

    def __iter__(self) -> Iterator[StreamItem]:
        iterator = iter(self.inner)
        while True:
            for key, fault in self.plan.at(self._delivered):
                if key in self._fired:
                    continue
                self._fired.add(key)
                if fault.kind == "stall":
                    self.injected["stall"] += 1
                    time.sleep(fault.stall_seconds)
                elif fault.kind == "duplicate":
                    if self._last_item is None:
                        continue  # nothing to redeliver yet
                    self.injected["duplicate"] += 1
                    yield self._last_item  # cursor unchanged: a true dup
                elif fault.kind == "kill9":
                    self.injected["kill9"] += 1
                    os.kill(os.getpid(), signal.SIGKILL)
                elif fault.kind == "truncate":
                    self.injected["truncate"] += 1
                    raise TransientSourceError(
                        f"injected truncated JSONL line before item "
                        f"{self._delivered}{': ' + fault.detail if fault.detail else ''}"
                    )
                else:  # "error"
                    self.injected["error"] += 1
                    raise TransientSourceError(
                        f"injected transient read error before item "
                        f"{self._delivered}{': ' + fault.detail if fault.detail else ''}"
                    )
            try:
                item = next(iterator)
            except StopIteration:
                return
            self._last_item = item
            self._delivered += 1
            yield item

    def cursor(self) -> object:
        return self.inner.cursor()

    def seek(self, cursor: object) -> None:
        self.inner.seek(cursor)
        # A seek lands "between" items; the previous-item cache must not
        # survive it or a later duplicate fault would replay stale data.
        self._last_item = None

    def close(self) -> None:
        self.inner.close()


# ----------------------------------------------------------------------
# Fire drills
# ----------------------------------------------------------------------
@dataclasses.dataclass
class DrillResult:
    """Outcome of one ``--drill`` run."""

    mode: str
    parity: bool  # hardened rollup byte-identical to the clean run?
    samples: int  # records in the clean rollup
    details: Dict[str, object]

    @property
    def ok(self) -> bool:
        if not self.parity:
            return False
        if self.details.get("forced_terminations", 0):
            return False  # shutdown escalated to terminate(): a hang
        if self.details.get("obs_events_ok") is False:
            return False  # recovery happened but left no trace span
        return True

    def render(self) -> str:
        lines = [
            f"drill {self.mode}: {'PASS' if self.ok else 'FAIL'}",
            f"  rollup parity with clean run: {'yes' if self.parity else 'NO'}",
            f"  records: {self.samples}",
        ]
        for key in sorted(self.details):
            lines.append(f"  {key}: {self.details[key]}")
        return "\n".join(lines)


def _rollup_fingerprint(rollup) -> dict:
    """Order-sensitive freeze of the four batch-parity query families.

    ``dict == dict`` ignores key order, but the store's parity contract
    includes it; freezing every mapping into key/value row lists makes
    a reordering (or a single drifted float) show up as inequality.
    """

    def freeze(value):
        if isinstance(value, dict):
            return [[str(key), freeze(item)] for key, item in value.items()]
        if isinstance(value, (list, tuple)):
            return [freeze(item) for item in value]
        return value

    return {
        "n_records": rollup.n_records,
        "country_tampering_rate": freeze(rollup.country_tampering_rate()),
        "timeseries": freeze(rollup.timeseries()),
        "signature_hour_counts": freeze(
            {c: rollup.signature_hour_counts(c) for c in rollup.countries}
        ),
        "stage_statistics": freeze(rollup.stage_statistics()),
    }


def _drill_source(scenario: str, connections: int, seed: int):
    from repro.workloads.scenarios import (
        iran_protest_stream_source,
        two_week_stream_source,
    )

    if scenario == "iran":
        return iran_protest_stream_source(n_connections=connections, seed=seed)
    return two_week_stream_source(n_connections=connections, seed=seed)


def _clean_rollup(scenario: str, connections: int, seed: int) -> dict:
    from repro.stream.engine import StreamEngine

    source = _drill_source(scenario, connections, seed)
    report = StreamEngine(source, geodb=source.world.geo, n_workers=0).run()
    return report.rollup.to_dict()


def _drill_kill_worker(
    scenario: str, connections: int, seed: int, workers: int
) -> DrillResult:
    """Kill one worker mid-stream; supervision must absorb it."""
    from repro.stream.engine import StreamEngine

    clean = _clean_rollup(scenario, connections, seed)
    source = _drill_source(scenario, connections, seed)
    shard = ShardConfig(
        n_workers=workers, batch_size=16, max_inflight=64, max_restarts=2
    )
    engine = StreamEngine(
        source,
        geodb=source.world.geo,
        n_workers=workers,
        shard_config=shard,
        worker_chaos=WorkerChaos(worker_id=0, after_batches=2, mode="kill9"),
    )
    began = time.monotonic()
    report = engine.run()
    elapsed = time.monotonic() - began
    hardened = report.rollup.to_dict()
    # The restart must also be visible as a trace event: operators
    # reading an --obs export should see the recovery, not just a
    # counter bump.
    restart_events = len(engine.obs.tracer.events("worker.restart"))
    restarts = report.metrics["worker_restarts"]
    return DrillResult(
        mode="kill-worker",
        parity=hardened == clean,
        samples=report.rollup.n_records,
        details={
            "worker_restarts": restarts,
            "restart_events": restart_events,
            "obs_events_ok": restart_events >= 1 if restarts else True,
            "forced_terminations": report.metrics["forced_terminations"],
            "elapsed_seconds": round(elapsed, 3),
            "no_terminate_path": report.metrics["forced_terminations"] == 0,
        },
    )


def _drill_flaky_source(
    scenario: str, connections: int, seed: int, workers: int
) -> DrillResult:
    """Errors, stalls, truncations, and duplicates; retries must absorb them."""
    from repro.stream.engine import StreamEngine

    clean = _clean_rollup(scenario, connections, seed)
    plan = FaultPlan.generate(
        seed,
        connections,
        error_rate=0.02,
        stall_rate=0.005,
        truncate_rate=0.01,
        duplicate_rate=0.02,
        stall_seconds=0.001,
    )
    inner = _drill_source(scenario, connections, seed)
    source = FaultySource(inner, plan)
    engine = StreamEngine(
        source,
        geodb=inner.world.geo,
        n_workers=workers,
        max_source_retries=8,
        retry_backoff_seconds=0.001,
    )
    report = engine.run()
    return DrillResult(
        mode="flaky-source",
        parity=report.rollup.to_dict() == clean,
        samples=report.rollup.n_records,
        details={
            "faults_planned": len(plan),
            "faults_injected": dict(source.injected),
            "source_retries": report.metrics["source_retries"],
            "duplicates_dropped": report.metrics["duplicates_dropped"],
            "forced_terminations": report.metrics["forced_terminations"],
        },
    )


def _kill9_engine_child(
    scenario: str,
    connections: int,
    seed: int,
    checkpoint_path: str,
    interval: int,
    kill_index: int,
) -> None:
    """Child body for the kill9-resume drill: run until the planned SIGKILL."""
    from repro.stream.engine import StreamEngine

    inner = _drill_source(scenario, connections, seed)
    plan = FaultPlan(faults=[FaultSpec(index=kill_index, kind="kill9")])
    StreamEngine(
        FaultySource(inner, plan),
        geodb=inner.world.geo,
        n_workers=0,
        checkpoint_path=checkpoint_path,
        checkpoint_interval=interval,
    ).run()


def _drill_kill9_resume(
    scenario: str,
    connections: int,
    seed: int,
    checkpoint_dir: Optional[str] = None,
) -> DrillResult:
    """SIGKILL the whole engine at a checkpoint boundary, then resume."""
    from repro.stream.engine import StreamEngine

    clean = _clean_rollup(scenario, connections, seed)
    interval = max(10, connections // 8)
    # Two full checkpoint intervals in, i.e. the kill lands exactly as a
    # checkpoint has just been written -- the nastiest boundary.
    kill_index = 2 * interval
    owns_dir = checkpoint_dir is None
    if owns_dir:
        checkpoint_dir = tempfile.mkdtemp(prefix="repro-drill-")
    checkpoint_path = os.path.join(checkpoint_dir, "kill9.ck.json")
    try:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context("spawn")
        child = ctx.Process(
            target=_kill9_engine_child,
            args=(scenario, connections, seed, checkpoint_path, interval, kill_index),
        )
        child.start()
        child.join(timeout=300.0)
        killed = child.exitcode == -signal.SIGKILL
        if child.is_alive():  # pragma: no cover - hung child safety net
            child.terminate()
            child.join(timeout=5.0)

        source = _drill_source(scenario, connections, seed)
        engine = StreamEngine(
            source,
            geodb=source.world.geo,
            n_workers=0,
            checkpoint_path=checkpoint_path,
            checkpoint_interval=interval,
        )
        resumed = engine.run(resume=True)
        # A resume from a real checkpoint must leave an engine.resume
        # trace event behind for --obs exports.
        resume_events = len(engine.obs.tracer.events("engine.resume"))
        return DrillResult(
            mode="kill9-resume",
            parity=killed and resumed.rollup.to_dict() == clean,
            samples=resumed.rollup.n_records,
            details={
                "child_exitcode": child.exitcode,
                "killed_by_sigkill": killed,
                "kill_index": kill_index,
                "checkpoint_interval": interval,
                "resumed_from": resumed.metrics["resumed_from"],
                "resume_events": resume_events,
                "obs_events_ok": (
                    resume_events >= 1
                    if resumed.metrics["resumed_from"]
                    else True
                ),
                "forced_terminations": resumed.metrics["forced_terminations"],
            },
        )
    finally:
        if owns_dir:
            if os.path.exists(checkpoint_path):
                os.unlink(checkpoint_path)
            os.rmdir(checkpoint_dir)


def _store_chaos_child(
    scenario: str,
    connections: int,
    seed: int,
    checkpoint_path: str,
    store_dir: str,
    interval: int,
    point: str,
) -> None:
    """Child body for the store drill: run until compaction SIGKILLs us."""
    from repro.store import CompactionChaos, CompactionConfig, StoreConfig
    from repro.stream.engine import StreamEngine

    inner = _drill_source(scenario, connections, seed)
    StreamEngine(
        inner,
        geodb=inner.world.geo,
        n_workers=0,
        checkpoint_path=checkpoint_path,
        checkpoint_interval=interval,
        store_dir=store_dir,
        store_config=StoreConfig(
            compaction=CompactionConfig(trigger=4, fanout=4)
        ),
        # Not the first merge: the early runs land before the first
        # checkpoint exists, and the drill needs a checkpoint to resume.
        store_chaos=CompactionChaos(on_run=4, point=point),
    ).run()


def _drill_store_compaction(
    scenario: str,
    connections: int,
    seed: int,
    checkpoint_dir: Optional[str] = None,
    chaos_point: str = "manifest-swapped",
) -> DrillResult:
    """SIGKILL the engine *inside* a compaction crash window, then resume.

    The child runs store-backed with an aggressive compaction trigger
    and a :class:`~repro.store.CompactionChaos` that kills the process
    during the first merge -- either after the merged segment is written
    but before the manifest swap (``segment-written``, the orphan
    window) or after the swap but before the old segments are unlinked
    (``manifest-swapped``, the stale-file window).  The parent resumes
    into the same store directory and must end byte-for-byte equal to a
    clean uninterrupted run on all four query families, both through
    the engine's rollup and through a fresh :class:`RollupStore` opened
    over the directory.
    """
    from repro.store import CompactionConfig, RollupStore, StoreConfig, StoreQuery
    from repro.stream.engine import StreamEngine

    source = _drill_source(scenario, connections, seed)
    clean_report = StreamEngine(source, geodb=source.world.geo, n_workers=0).run()
    clean = _rollup_fingerprint(clean_report.rollup)

    interval = max(10, connections // 40)
    owns_dir = checkpoint_dir is None
    if owns_dir:
        checkpoint_dir = tempfile.mkdtemp(prefix="repro-drill-store-")
    checkpoint_path = os.path.join(checkpoint_dir, "store.ck.json")
    store_dir = os.path.join(checkpoint_dir, "store")
    try:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context("spawn")
        child = ctx.Process(
            target=_store_chaos_child,
            args=(
                scenario,
                connections,
                seed,
                checkpoint_path,
                store_dir,
                interval,
                chaos_point,
            ),
        )
        child.start()
        child.join(timeout=300.0)
        killed = child.exitcode == -signal.SIGKILL
        if child.is_alive():  # pragma: no cover - hung child safety net
            child.terminate()
            child.join(timeout=5.0)

        source = _drill_source(scenario, connections, seed)
        engine = StreamEngine(
            source,
            geodb=source.world.geo,
            n_workers=0,
            checkpoint_path=checkpoint_path,
            checkpoint_interval=interval,
            store_dir=store_dir,
            store_config=StoreConfig(
                compaction=CompactionConfig(trigger=4, fanout=4)
            ),
        )
        resumed = engine.run(resume=True)
        resume_events = len(engine.obs.tracer.events("engine.resume"))
        engine_parity = _rollup_fingerprint(resumed.rollup) == clean

        # The disk must agree with the engine: reopen cold and query.
        reopened = RollupStore(store_dir)
        query_parity = _rollup_fingerprint(reopened.to_rollup()) == clean
        store_stats = reopened.stats()
        reopened.close()
        return DrillResult(
            mode="store-compaction",
            parity=killed and engine_parity and query_parity,
            samples=resumed.rollup.n_records,
            details={
                "child_exitcode": child.exitcode,
                "killed_by_sigkill": killed,
                "chaos_point": chaos_point,
                "checkpoint_interval": interval,
                "resumed_from": resumed.metrics["resumed_from"],
                "resume_events": resume_events,
                "obs_events_ok": (
                    resume_events >= 1
                    if resumed.metrics["resumed_from"]
                    else True
                ),
                "engine_parity": engine_parity,
                "store_query_parity": query_parity,
                "sealed_skips": resumed.metrics["store"]["sealed_skips"],
                "segments": store_stats["segments"],
                "compaction_runs_after_resume": resumed.metrics["store"][
                    "compaction_runs"
                ],
                "forced_terminations": resumed.metrics["forced_terminations"],
            },
        )
    finally:
        if owns_dir:
            import shutil

            shutil.rmtree(checkpoint_dir, ignore_errors=True)


def run_drill(
    mode: str,
    *,
    scenario: str = "two-week",
    connections: int = 400,
    seed: int = 7,
    workers: int = 2,
    checkpoint_dir: Optional[str] = None,
    store_chaos_point: str = "manifest-swapped",
) -> DrillResult:
    """Run one named fire drill and report parity with a clean run."""
    if mode == "kill-worker":
        return _drill_kill_worker(scenario, connections, seed, max(workers, 2))
    if mode == "flaky-source":
        return _drill_flaky_source(scenario, connections, seed, workers)
    if mode == "kill9-resume":
        return _drill_kill9_resume(scenario, connections, seed, checkpoint_dir)
    if mode == "store-compaction":
        return _drill_store_compaction(
            scenario, connections, seed, checkpoint_dir, store_chaos_point
        )
    raise StreamError(f"unknown drill {mode!r}; expected one of {DRILL_MODES}")
