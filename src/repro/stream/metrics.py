"""Cheap operational metrics for the streaming pipeline.

:class:`StreamMetrics` is a handful of integer counters and gauges --
nothing that allocates per sample -- snapshotted into the final report
and into every checkpoint.  It answers the questions an operator asks of
a live pipeline: how fast is it going (samples/s), how far behind is it
(queue depth / in-flight), is work balanced (per-worker shares), and is
anything being dropped or restarted.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = ["StreamMetrics"]


class StreamMetrics:
    """Counters and gauges; wall-clock rates derived on snapshot."""

    def __init__(self) -> None:
        self.samples_in = 0
        self.records_out = 0
        self.tampering_matches = 0
        self.checkpoints_written = 0
        self.anomaly_events = 0
        self.resumed_from = 0  # cursor position a resume started at
        self.source_rejected = 0  # backpressure: source pushes refused
        self.source_retries = 0  # transient source errors absorbed
        self.duplicates_dropped = 0  # redelivered items discarded
        self.worker_restarts = 0  # dead workers respawned by supervision
        self.forced_terminations = 0  # workers that needed terminate()
        self.queue_depth = 0  # gauge: records in flight right now
        self.max_queue_depth = 0
        self._started: Optional[float] = None
        self._stopped: Optional[float] = None
        #: worker id -> {"records": n, "busy_seconds": s}
        self.workers: Dict[int, Dict[str, float]] = {}
        #: RollupStore.stats() snapshot, when the engine runs store-backed
        self.store_stats: Optional[dict] = None
        #: The engine's Observability layer (set by StreamEngine); its
        #: summary lands in snapshots under the "obs" key.
        self.obs = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started is None:
            self._started = time.monotonic()

    def stop(self) -> None:
        self._stopped = time.monotonic()

    @property
    def elapsed_seconds(self) -> float:
        if self._started is None:
            return 0.0
        end = self._stopped if self._stopped is not None else time.monotonic()
        return max(end - self._started, 0.0)

    # ------------------------------------------------------------------
    def on_sample_in(self) -> None:
        self.samples_in += 1
        self.queue_depth = self.samples_in - self.records_out
        if self.queue_depth > self.max_queue_depth:
            self.max_queue_depth = self.queue_depth

    def on_record_out(self, is_tampering: bool) -> None:
        self.records_out += 1
        self.queue_depth = self.samples_in - self.records_out
        if is_tampering:
            self.tampering_matches += 1

    def set_worker_stats(self, busy: Dict[int, float], records: Dict[int, int]) -> None:
        for worker_id, seconds in busy.items():
            self.workers[worker_id] = {
                "records": float(records.get(worker_id, 0)),
                "busy_seconds": seconds,
            }

    # ------------------------------------------------------------------
    def samples_per_second(self) -> float:
        elapsed = self.elapsed_seconds
        return self.records_out / elapsed if elapsed > 0 else 0.0

    def worker_utilization(self) -> Dict[int, float]:
        """Busy-time share of wall time per worker (0..1)."""
        elapsed = self.elapsed_seconds
        if elapsed <= 0:
            return {w: 0.0 for w in self.workers}
        return {
            worker_id: min(stats["busy_seconds"] / elapsed, 1.0)
            for worker_id, stats in self.workers.items()
        }

    def snapshot(self) -> dict:
        """JSON-safe dump of every counter plus derived rates."""
        snap = {
            "samples_in": self.samples_in,
            "records_out": self.records_out,
            "tampering_matches": self.tampering_matches,
            "checkpoints_written": self.checkpoints_written,
            "anomaly_events": self.anomaly_events,
            "resumed_from": self.resumed_from,
            "source_rejected": self.source_rejected,
            "source_retries": self.source_retries,
            "duplicates_dropped": self.duplicates_dropped,
            "worker_restarts": self.worker_restarts,
            "forced_terminations": self.forced_terminations,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "elapsed_seconds": self.elapsed_seconds,
            "samples_per_second": self.samples_per_second(),
            "workers": {
                str(worker_id): dict(stats) for worker_id, stats in self.workers.items()
            },
            "worker_utilization": {
                str(worker_id): round(share, 4)
                for worker_id, share in self.worker_utilization().items()
            },
        }
        if self.store_stats is not None:
            snap["store"] = dict(self.store_stats)
        if self.obs is not None and getattr(self.obs, "enabled", False):
            snap["obs"] = self.obs.summary()
        return snap

    def render(self) -> str:
        """A short human-readable block for CLI output."""
        snap = self.snapshot()
        lines = [
            f"samples in / records out: {snap['samples_in']} / {snap['records_out']}",
            f"tampering matches: {snap['tampering_matches']}",
            f"throughput: {snap['samples_per_second']:,.0f} samples/s "
            f"over {snap['elapsed_seconds']:.2f}s",
            f"max in-flight: {snap['max_queue_depth']}",
            f"checkpoints written: {snap['checkpoints_written']}",
            f"anomaly events: {snap['anomaly_events']}",
        ]
        faults = (
            self.source_retries
            + self.duplicates_dropped
            + self.worker_restarts
            + self.forced_terminations
        )
        if faults:
            lines.append(
                f"faults survived: {snap['source_retries']} source retries, "
                f"{snap['duplicates_dropped']} duplicates dropped, "
                f"{snap['worker_restarts']} worker restarts, "
                f"{snap['forced_terminations']} forced terminations"
            )
        if self.store_stats is not None:
            store = self.store_stats
            lines.append(
                f"store: {store['sealed_buckets']} sealed buckets in "
                f"{store['segments']} segments ({store['live_bytes']} bytes), "
                f"{store['open_buckets']} open, "
                f"{store['compaction_runs']} compactions"
            )
        if snap["workers"]:
            util = ", ".join(
                f"w{worker_id}={share:.0%}"
                for worker_id, share in sorted(
                    snap["worker_utilization"].items(),
                    key=lambda kv: int(kv[0]),
                )
            )
            lines.append(f"worker utilization: {util}")
        return "\n".join(lines)
