"""Command-line interface: ``repro-tamper`` / ``python -m repro``.

Subcommands:

* ``simulate`` -- run a study and write samples to JSONL (optionally pcap).
* ``classify`` -- classify a JSONL sample file and print per-signature counts.
* ``report`` -- run a study and print the headline analyses (Table 1
  statistics, per-country rates, top categories).
* ``evidence`` -- print IP-ID/TTL injection evidence for a sample file.
* ``radar`` -- export privacy-preserving aggregates (the paper's data-
  sharing commitment), suppressing small cells.
* ``fingerprints`` -- cluster device fingerprints in a sample file.
* ``profiles`` -- export the built-in country profiles as editable JSON.
* ``signatures`` -- print the Table 1 signature catalogue.
* ``stream`` -- run the online pipeline: sharded classification,
  incremental rollups, live anomaly detection, kill-safe checkpoints,
  and (with ``--store``) durable partitioned rollup storage.
* ``query`` -- answer the batch-parity question families from a
  ``--store`` directory, with time-range and country pushdown.
* ``obs`` -- render the per-stage latency / bottleneck report from a
  ``stream --obs`` export (metrics.json + spans.jsonl).
* ``trace`` -- reconstruct sampled request span trees from an export's
  spans.jsonl and print each slow request's critical path (queue wait
  vs. fold vs. fsync) with per-hop self time.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import List, Optional

from repro.cdn.collector import read_samples_jsonl, write_samples_jsonl
from repro.core.classifier import TamperingClassifier
from repro.core.model import SIGNATURES
from repro.core.report import render_table
from repro.netstack.pcap import write_pcap
from repro.workloads.scenarios import iran_protest_study, two_week_study

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tamper",
        description="Passive connection-tampering detection (SIGCOMM 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a study and persist the samples")
    sim.add_argument("--connections", "-n", type=int, default=2000)
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument("--scenario", choices=("two-week", "iran"), default="two-week")
    sim.add_argument("--profiles", help="JSON file of country profiles (two-week scenario only)")
    sim.add_argument("--out", "-o", required=True, help="output JSONL path")
    sim.add_argument("--pcap", help="also write all sampled packets to this pcap")

    cls = sub.add_parser("classify", help="classify a JSONL sample file")
    cls.add_argument("samples", help="input JSONL path")
    cls.add_argument("--inactivity", type=float, default=3.0)
    cls.add_argument("--workers", "-w", type=int, default=0,
                     help="classify across N worker processes (0/1 = inline)")
    cls.add_argument("--no-cache", action="store_true",
                     help="disable the feature-key memo (uncached reference path)")
    cls.add_argument("--cache-size", type=int, default=None,
                     help="feature-key memo entries per classifier (default 4096)")

    rep = sub.add_parser("report", help="run a study and print headline analyses")
    rep.add_argument("--connections", "-n", type=int, default=2000)
    rep.add_argument("--seed", type=int, default=7)

    evd = sub.add_parser("evidence", help="IP-ID/TTL injection evidence for a JSONL sample file")
    evd.add_argument("samples", help="input JSONL path")

    radar = sub.add_parser("radar", help="run a study and export privacy-safe aggregates")
    radar.add_argument("--connections", "-n", type=int, default=2000)
    radar.add_argument("--seed", type=int, default=7)
    radar.add_argument("--min-cell", type=int, default=20)
    radar.add_argument("--out", "-o", required=True, help="output JSON path")

    fng = sub.add_parser("fingerprints", help="cluster device fingerprints in a JSONL sample file")
    fng.add_argument("samples", help="input JSONL path")
    fng.add_argument("--min-count", type=int, default=2)

    profiles = sub.add_parser("profiles", help="export the built-in country profiles as JSON")
    profiles.add_argument("--out", "-o", required=True, help="output JSON path")

    sub.add_parser("signatures", help="print the Table 1 signature catalogue")

    stream = sub.add_parser("stream", help="run the online streaming pipeline")
    stream.add_argument("samples", nargs="?", default=None,
                        help="JSONL file or directory to replay "
                             "(default: simulate --scenario live)")
    stream.add_argument("--scenario", choices=("two-week", "iran"), default="two-week")
    stream.add_argument("--connections", "-n", type=int, default=2000)
    stream.add_argument("--seed", type=int, default=7)
    stream.add_argument("--workers", "-w", type=int, default=0,
                        help="shard worker processes (0 = classify inline)")
    stream.add_argument("--no-cache", action="store_true",
                        help="disable the classifier feature-key memo")
    stream.add_argument("--bucket-seconds", type=float, default=3600.0)
    stream.add_argument("--checkpoint", help="checkpoint JSON path (enables kill-safe resume)")
    stream.add_argument("--checkpoint-interval", type=int, default=5000)
    stream.add_argument("--resume", action="store_true",
                        help="resume from the checkpoint file")
    stream.add_argument("--max-samples", type=int, default=None,
                        help="stop after this many connections (for drills)")
    stream.add_argument("--max-restarts", type=int, default=0,
                        help="dead shard workers respawned before failing "
                             "(0 = fail fast on any worker death)")
    stream.add_argument("--fault-plan",
                        help="JSON fault-plan file (see FaultPlan.to_dict); "
                             "wraps the source in FaultySource")
    stream.add_argument("--store",
                        help="rollup store directory: seal closed hour "
                             "buckets to partitioned segments on disk "
                             "(shrinks checkpoints to the open tail)")
    stream.add_argument("--drill",
                        choices=("kill-worker", "flaky-source",
                                 "kill9-resume", "store-compaction"),
                        help="run a fire drill under fault injection and "
                             "assert rollup parity with a clean run")
    stream.add_argument("--obs",
                        help="export observability data (metrics.json, "
                             "metrics.prom, spans.jsonl) to this directory; "
                             "inspect with: repro obs DIR")
    stream.add_argument("--trace-sample", type=int, default=0, metavar="N",
                        help="head-sample 1 in N connections for end-to-end "
                             "span trees (serial mode only; 0 = off); "
                             "inspect with: repro trace OBS_DIR")
    stream.add_argument("--progress", type=float, default=None, metavar="SECONDS",
                        help="print a progress line to stderr every N seconds")

    obs = sub.add_parser(
        "obs", help="stage-latency / bottleneck report from a stream --obs export"
    )
    obs.add_argument("export", help="directory written by stream --obs")
    obs.add_argument("--json", action="store_true",
                     help="emit per-stage summaries as JSON instead of tables")

    trace = sub.add_parser(
        "trace",
        help="span-tree / critical-path report from an --obs export "
             "with tracing enabled",
    )
    trace.add_argument("export", help="directory written by stream/serve --obs")
    trace.add_argument("--top", type=int, default=5,
                       help="show the N slowest traces (default 5)")
    trace.add_argument("--trace", dest="trace_id", default=None,
                       help="show only this trace id (as echoed in the "
                            "traceparent response header or /metrics "
                            "exemplars)")
    trace.add_argument("--json", action="store_true",
                       help="emit the span trees as JSON instead of text")

    query = sub.add_parser(
        "query", help="answer batch-parity questions from a rollup store"
    )
    query.add_argument("store", help="store directory written by stream --store")
    query.add_argument("--family",
                       choices=("country_tampering_rate", "timeseries",
                                "signature_hour_counts", "stage_statistics"),
                       default="country_tampering_rate")
    query.add_argument("--start", type=float, default=None,
                       help="include buckets starting at or after this unix ts")
    query.add_argument("--end", type=float, default=None,
                       help="include buckets starting strictly before this unix ts")
    query.add_argument("--country",
                       help="country for signature_hour_counts")
    query.add_argument("--countries",
                       help="comma-separated country filter "
                            "(country-keyed families)")
    query.add_argument("--json", action="store_true",
                       help="emit the raw result as JSON instead of a table")

    serve = sub.add_parser(
        "serve",
        help="run the HTTP ingest/query service over a rollup store",
    )
    serve.add_argument("--store", required=True,
                       help="store directory (created if missing); also "
                            "holds the serve checkpoint")
    serve.add_argument("--obs",
                       help="export observability data to this directory "
                            "on drain; inspect with: repro obs DIR")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="listen port (0 = pick a free port)")
    serve.add_argument("--batch-records", type=int, default=256,
                       help="micro-batch flush size")
    serve.add_argument("--batch-delay", type=float, default=0.05,
                       help="micro-batch flush deadline in seconds")
    serve.add_argument("--queue-records", type=int, default=8192,
                       help="admission control: max records queued before "
                            "ingest answers 429")
    serve.add_argument("--rate", type=float, default=0.0,
                       help="per-client token-bucket rate in records/second "
                            "(0 = unlimited)")
    serve.add_argument("--burst", type=int, default=None,
                       help="per-client token-bucket burst in records")
    serve.add_argument("--no-seal", action="store_true",
                       help="on drain, keep trailing buckets open (pause "
                            "instead of finish; a restarted server resumes "
                            "them)")
    serve.add_argument("--bucket-seconds", type=float, default=3600.0)
    serve.add_argument("--checkpoint-interval", type=int, default=5000)
    serve.add_argument("--trace-sample", type=int, default=64, metavar="N",
                       help="head-sample 1 in N untraced ingest requests "
                            "for end-to-end span trees (0 = only trace "
                            "requests that send a traceparent header)")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.scenario == "iran":
        study = iran_protest_study(n_connections=args.connections, seed=args.seed)
    else:
        profiles = None
        if getattr(args, "profiles", None):
            from repro.workloads.config import load_profiles

            profiles = load_profiles(args.profiles)
        study = two_week_study(n_connections=args.connections, seed=args.seed,
                               profiles=profiles)
    count = write_samples_jsonl(args.out, study.samples)
    print(f"wrote {count} samples to {args.out}")
    if args.pcap:
        packets = [p for sample in study.samples for p in sample.packets]
        write_pcap(args.pcap, packets)
        print(f"wrote {len(packets)} packets to {args.pcap}")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.core.classifier import ClassifierConfig

    samples = read_samples_jsonl(args.samples)
    if args.no_cache:
        cache_size = 0
    elif args.cache_size is not None:
        cache_size = args.cache_size
    else:
        cache_size = ClassifierConfig().cache_size
    classifier = TamperingClassifier(
        ClassifierConfig(inactivity_seconds=args.inactivity, cache_size=cache_size)
    )
    results = classifier.classify_batch(samples, workers=args.workers)
    counts = Counter(r.signature for r in results)
    rows = [
        [sig.display if sig.is_tampering else sig.value, counts[sig], f"{100.0 * counts[sig] / len(results):.2f}%"]
        for sig in sorted(counts, key=lambda s: -counts[s])
    ]
    print(render_table(["signature", "count", "share"], rows, title=f"{len(results)} connections"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    study = two_week_study(n_connections=args.connections, seed=args.seed)
    data = study.analyze()
    stats = data.stage_statistics()
    print(f"connections: {stats['total_connections']}")
    print(f"possibly tampered: {stats['possibly_tampered_pct']:.1f}%")
    print(f"signature coverage of possibly tampered: {stats['signature_coverage_pct']:.1f}%")
    print()
    rates = data.country_tampering_rate()
    rows = [[country, f"{rate:.1f}%"] for country, rate in sorted(rates.items(), key=lambda kv: -kv[1])[:20]]
    print(render_table(["country", "tampered"], rows, title="Top tampered countries"))
    print()
    table2 = data.category_table(study.world.categories, countries=["CN", "IR", "US"], threshold=3)
    rows = []
    for region, entries in table2.items():
        for cat, share, coverage in entries:
            rows.append([region, cat, f"{share:.1f}%", f"{coverage:.1f}%"])
    print(render_table(["region", "category", "% tampered conns", "category coverage"], rows,
                       title="Most affected categories"))
    return 0


def _cmd_evidence(args: argparse.Namespace) -> int:
    from repro.core.evidence import evidence_for_sample

    samples = read_samples_jsonl(args.samples)
    classifier = TamperingClassifier()
    rows = []
    scanners = 0
    for sample in samples:
        result = classifier.classify(sample)
        if not result.is_tampering:
            continue
        summary = evidence_for_sample(sample)
        scanners += summary.scanner
        rows.append([
            sample.conn_id,
            result.signature.display,
            summary.max_ipid_delta if summary.max_ipid_delta is not None else "-",
            summary.max_ttl_delta if summary.max_ttl_delta is not None else "-",
            "yes" if (summary.ipid_inconsistent or summary.ttl_inconsistent) else "no",
        ])
    print(render_table(
        ["conn", "signature", "max |ΔIP-ID|", "max ΔTTL", "injection evidence"],
        rows,
        title=f"{len(rows)} tampering matches ({scanners} scanner-heuristic hits overall)",
    ))
    return 0


def _cmd_radar(args: argparse.Namespace) -> int:
    from repro.core.sharing import build_radar_export, write_radar_json

    study = two_week_study(n_connections=args.connections, seed=args.seed)
    data = study.analyze()
    records = build_radar_export(data, min_cell=args.min_cell)
    count = write_radar_json(args.out, records, indent=2)
    countries = sorted({r.country for r in records})
    print(f"wrote {count} aggregate records for {len(countries)} countries to {args.out}")
    print(f"privacy floor: cells with fewer than {args.min_cell} connections suppressed")
    return 0


def _cmd_fingerprints(args: argparse.Namespace) -> int:
    from repro.core.fingerprint import FingerprintIndex

    samples = read_samples_jsonl(args.samples)
    classifier = TamperingClassifier()
    results = classifier.classify_all(samples)
    index = FingerprintIndex.build(samples, results)
    rows = []
    for cluster in index.clusters(min_count=args.min_count):
        rows.append([
            cluster.fingerprint.signature.display,
            cluster.fingerprint.ttl.value,
            cluster.fingerprint.ip_id.value,
            cluster.count,
            cluster.label,
        ])
    print(render_table(["signature", "ttl", "ip-id", "events", "catalogue label"],
                       rows, title=f"{len(rows)} fingerprint clusters"))
    return 0


def _cmd_profiles(args: argparse.Namespace) -> int:
    from repro.workloads.config import dump_profiles
    from repro.workloads.profiles import default_profiles

    count = dump_profiles(args.out, default_profiles())
    print(f"wrote {count} country profiles to {args.out}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.stream import (
        FaultPlan,
        FaultySource,
        JsonlDirectorySource,
        JsonlSource,
        ShardConfig,
        StreamEngine,
        run_drill,
    )
    from repro.workloads.scenarios import (
        iran_protest_stream_source,
        two_week_stream_source,
    )

    if args.drill:
        result = run_drill(
            args.drill,
            scenario=args.scenario,
            connections=args.connections,
            seed=args.seed,
            workers=max(args.workers, 2) if args.drill == "kill-worker" else args.workers,
        )
        print(result.render())
        return 0 if result.ok else 1

    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2

    geodb = None
    if args.samples:
        if os.path.isdir(args.samples):
            source = JsonlDirectorySource(args.samples)
        else:
            source = JsonlSource(args.samples)
    elif args.scenario == "iran":
        source = iran_protest_stream_source(n_connections=args.connections, seed=args.seed)
        geodb = source.world.geo
    else:
        source = two_week_stream_source(n_connections=args.connections, seed=args.seed)
        geodb = source.world.geo

    if args.fault_plan:
        with open(args.fault_plan, "r") as fh:
            source = FaultySource(source, FaultPlan.from_dict(json.load(fh)))

    from repro.core.classifier import ClassifierConfig
    from repro.obs import ProgressReporter

    engine = StreamEngine(
        source,
        geodb=geodb,
        n_workers=args.workers,
        classifier_config=(
            ClassifierConfig(cache_size=0) if args.no_cache else None
        ),
        shard_config=ShardConfig(
            n_workers=max(args.workers, 1), max_restarts=args.max_restarts
        ),
        bucket_seconds=args.bucket_seconds,
        checkpoint_path=args.checkpoint,
        checkpoint_interval=args.checkpoint_interval,
        store_dir=args.store,
        trace_sample_n=args.trace_sample,
        progress=(
            ProgressReporter(interval_seconds=args.progress)
            if args.progress
            else None
        ),
    )
    # A signal lands between folds: the loop notices the flag, writes a
    # resumable checkpoint (when --checkpoint is set), and exits cleanly
    # instead of dying mid-fold with a torn run.
    import signal

    stopped_by = []

    def _on_signal(signum, frame):
        stopped_by.append(signal.Signals(signum).name)
        engine.request_stop()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        report = engine.run(max_samples=args.max_samples, resume=args.resume)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    if stopped_by:
        print(f"stopped by {stopped_by[0]}", file=sys.stderr)
    print(report.render())
    print()
    print(engine.metrics.render())
    if args.checkpoint and not report.finished:
        print(f"\ncheckpoint saved to {args.checkpoint}; rerun with --resume to continue")
    if args.store:
        print(f"\nrollup store at {args.store}; inspect with: repro query {args.store}")
    if args.obs:
        engine.obs.export(args.obs, extra={"stream_metrics": report.metrics})
        print(f"\nobservability export at {args.obs}; inspect with: repro obs {args.obs}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, ServeService

    config = ServeConfig(
        host=args.host,
        port=args.port,
        batch_max_records=args.batch_records,
        batch_max_delay_seconds=args.batch_delay,
        queue_max_records=args.queue_records,
        rate_records_per_second=args.rate,
        rate_burst_records=args.burst,
        drain_seal=not args.no_seal,
        trace_sample_n=args.trace_sample,
    )
    service = ServeService(
        args.store,
        config=config,
        obs_dir=args.obs,
        bucket_seconds=args.bucket_seconds,
        checkpoint_interval=args.checkpoint_interval,
    )
    print(
        f"serving on {args.host}:{args.port} -- store at {args.store}; "
        "SIGTERM/SIGINT drains gracefully",
        file=sys.stderr,
    )
    code = service.run()
    if service.report is not None:
        print(
            f"drained after {service.report.samples_processed} records "
            f"({'sealed' if not args.no_seal else 'paused'})",
            file=sys.stderr,
        )
    return code


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import load_export, render_obs_report, stage_rows

    export = load_export(args.export)
    if args.json:
        print(json.dumps(
            {
                "stages": stage_rows(export),
                "counters": export.counters,
                "gauges": export.gauges,
                "spans": export.metrics.get("spans", {}),
                "events": export.events(),
            },
            indent=2,
        ))
        return 0
    print(render_obs_report(export))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import load_export, render_trace_report, trace_report_data

    export = load_export(args.export)
    spans = [s for s in export.spans if s.get("kind") == "trace"]
    if not spans:
        print(
            f"no trace spans in {args.export}; run with tracing enabled "
            "(stream --trace-sample N, serve --trace-sample N, or a client "
            "sending a traceparent header)",
            file=sys.stderr,
        )
        return 1
    data = trace_report_data(spans, top=args.top, trace_filter=args.trace_id)
    if args.trace_id and not data["traces"]:
        print(f"trace {args.trace_id!r} not found in {args.export}",
              file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(data, indent=2))
        return 0
    print(render_trace_report(data))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.errors import StoreError
    from repro.store import RollupStore, StoreQuery

    if not os.path.isdir(args.store):
        # Opening would silently create an empty store; a query must
        # never mkdir, and a typo'd path should fail loudly.
        raise StoreError(f"no rollup store at {args.store!r}")
    countries = None
    if args.countries:
        countries = tuple(
            c.strip() for c in args.countries.split(",") if c.strip()
        )
    # Read-only snapshot: safe against a store another process is
    # actively writing (no orphan sweep, no WAL truncation).
    store = RollupStore.open_read_only(args.store)
    try:
        result = store.query(
            StoreQuery(
                args.family,
                start=args.start,
                end=args.end,
                countries=countries,
                country=args.country,
            )
        )
    finally:
        store.close()

    def jsonable(value):
        if isinstance(value, dict):
            return {
                (k.value if hasattr(k, "value") else str(k)): jsonable(v)
                for k, v in value.items()
            }
        if isinstance(value, (list, tuple)):
            return [jsonable(v) for v in value]
        return value

    scan = (
        f"scanned {result.segments_scanned} segments "
        f"({result.segments_skipped} pruned), "
        f"{result.buckets_scanned} sealed + "
        f"{result.open_buckets_scanned} open buckets"
    )
    if args.json:
        print(json.dumps(
            {"family": args.family, "value": jsonable(result.value),
             "segments_scanned": result.segments_scanned,
             "segments_skipped": result.segments_skipped,
             "buckets_scanned": result.buckets_scanned,
             "open_buckets_scanned": result.open_buckets_scanned},
            indent=2,
        ))
        return 0

    value = result.value
    if args.family == "country_tampering_rate":
        rows = [[c, f"{rate:.2f}%"]
                for c, rate in sorted(value.items(), key=lambda kv: -kv[1])]
        print(render_table(["country", "tampered"], rows,
                           title="Tampering rate by country"))
    elif args.family == "timeseries":
        rows = []
        for country, series in value.items():
            if not series:
                continue
            peak_bucket, peak = max(series, key=lambda bv: bv[1])
            mean = sum(v for _, v in series) / len(series)
            rows.append([country, len(series), f"{mean:.2f}%",
                         f"{peak:.2f}%", f"{peak_bucket:.0f}"])
        print(render_table(
            ["country", "buckets", "mean rate", "peak rate", "peak bucket"],
            rows, title="Hourly tampering timeseries"))
    elif args.family == "signature_hour_counts":
        rows = []
        for sig, series in value.items():
            total = sum(n for _, n in series)
            rows.append([sig.display, len(series), total])
        print(render_table(["signature", "active hours", "matches"], rows,
                           title=f"Signature activity for {args.country}"))
    else:  # stage_statistics
        print(f"connections: {value['total_connections']}")
        print(f"possibly tampered: {value['possibly_tampered']} "
              f"({value['possibly_tampered_pct']:.2f}%)")
        print(f"signature coverage: {value['signature_coverage_pct']:.2f}%")
        rows = [
            [stage, f"{value['stage_share_pct'][stage]:.2f}%",
             f"{value['stage_coverage_pct'][stage]:.2f}%"]
            for stage in value["stage_share_pct"]
        ]
        print(render_table(["stage", "share of tampered", "signature coverage"],
                           rows, title="Tampering by connection stage"))
    print(scan)
    return 0


def _cmd_signatures(_args: argparse.Namespace) -> int:
    rows = [
        [info.stage.value, info.display, info.description, info.prior_work]
        for info in SIGNATURES.values()
    ]
    print(render_table(["stage", "signature", "description", "prior work"], rows,
                       title="Table 1: tampering signatures"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "classify": _cmd_classify,
        "report": _cmd_report,
        "evidence": _cmd_evidence,
        "radar": _cmd_radar,
        "fingerprints": _cmd_fingerprints,
        "profiles": _cmd_profiles,
        "signatures": _cmd_signatures,
        "stream": _cmd_stream,
        "query": _cmd_query,
        "serve": _cmd_serve,
        "obs": _cmd_obs,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
