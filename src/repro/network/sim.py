"""Event-driven path simulator.

Moves packets between a client (node 0), an ordered chain of middleboxes
(nodes 1..M), and a server (node M+1).  Each adjacent pair of nodes is a
*leg* with latency, hop count and loss (:mod:`repro.network.conditions`).
Middleboxes may forward, drop, blackhole, or inject forged packets from
their position on the path; injected packets only traverse the remaining
legs, so their TTLs arrive less decremented -- the artefact the paper's
Figure 3 measures.

The simulator is deterministic given its seed and the endpoints' seeds,
and it records every packet arriving at the server -- the exact view the
CDN collection pipeline samples from.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.middlebox.actions import BlackholeMode, Verdict
from repro.middlebox.device import Middlebox
from repro.netstack.packet import Packet, PacketDirection

__all__ = ["PathSimulator", "SimResult"]


@dataclasses.dataclass
class SimResult:
    """Everything observable after one simulated connection.

    ``server_inbound`` is the ground-truth server-side capture (all
    packets that *arrived* at the server, in arrival order, with their
    arrival timestamps and residual TTLs).  ``client_received`` is the
    symmetric view at the client.  ``server_outbound`` records what the
    server transmitted (useful for ablations that examine both
    directions).
    """

    server_inbound: List[Packet] = dataclasses.field(default_factory=list)
    server_outbound: List[Packet] = dataclasses.field(default_factory=list)
    client_received: List[Packet] = dataclasses.field(default_factory=list)
    client_sent: List[Packet] = dataclasses.field(default_factory=list)
    start: float = 0.0
    end: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def injected_reached_server(self) -> int:
        """Ground-truth count of forged packets the server received."""
        return sum(1 for p in self.server_inbound if p.injected)


class PathSimulator:
    """Simulate one connection across a middlebox chain.

    Parameters
    ----------
    client, server:
        Endpoint objects implementing ``begin``/``on_packet``/``on_timer``
        /``next_timer``/``done`` (see :mod:`repro.netstack.tcp`).
    middleboxes:
        Ordered device chain, client side first.
    conditions:
        Per-leg conditions; must have ``len(middleboxes) + 1`` legs.
    seed:
        Controls loss and jitter draws only.
    """

    def __init__(
        self,
        client,
        server,
        middleboxes: Sequence[Middlebox] = (),
        conditions=None,
        seed: int = 0,
    ) -> None:
        from repro.network.conditions import NetworkConditions

        self.client = client
        self.server = server
        self.middleboxes = list(middleboxes)
        if conditions is None:
            conditions = NetworkConditions.simple(n_middleboxes=len(self.middleboxes))
        if conditions.n_middleboxes != len(self.middleboxes):
            raise SimulationError(
                f"conditions describe {conditions.n_middleboxes} middleboxes, "
                f"chain has {len(self.middleboxes)}"
            )
        self.conditions = conditions
        self._rng = random.Random(seed)
        self._heap: List[Tuple[float, int, str, object, int]] = []
        self._tick = itertools.count()
        self._server_node = len(self.middleboxes) + 1
        self._result = SimResult()

    # ------------------------------------------------------------------
    def _push(self, ts: float, kind: str, payload: object, node: int) -> None:
        heapq.heappush(self._heap, (ts, next(self._tick), kind, payload, node))

    def _send_from(self, node: int, pkt: Packet, now: float) -> None:
        """Schedule ``pkt`` departing ``node`` toward its direction."""
        if pkt.direction == PacketDirection.TO_SERVER:
            next_node = node + 1
            leg = self.conditions.legs[node]  # leg i connects node i and i+1
        else:
            next_node = node - 1
            leg = self.conditions.legs[node - 1]
        if not 0 <= next_node <= self._server_node:
            return  # packet fell off the edge (e.g. injected toward a side we are)
        if leg.drops_packet(self._rng):
            return
        new_ttl = pkt.ttl - leg.hops
        if new_ttl <= 0:
            return  # TTL expired mid-path
        arrival = now + leg.sample_latency(self._rng)
        moved = pkt.clone(ttl=new_ttl, ts=arrival)
        self._push(arrival, "deliver", moved, next_node)

    def _emit_endpoint_packets(self, node: int, packets: List[Packet], now: float) -> None:
        for pkt in packets:
            ts = max(pkt.ts, now)
            if node == 0:
                self._result.client_sent.append(pkt)
            else:
                self._result.server_outbound.append(pkt)
            self._send_from(node, pkt.clone(ts=ts), ts)
        self._reschedule_timer(node)

    def _reschedule_timer(self, node: int) -> None:
        endpoint = self.client if node == 0 else self.server
        t = endpoint.next_timer()
        if t is not None:
            self._push(t, "timer", endpoint, node)

    # ------------------------------------------------------------------
    def _deliver_to_endpoint(self, node: int, pkt: Packet, now: float) -> None:
        if node == self._server_node:
            self._result.server_inbound.append(pkt)
            replies = self.server.on_packet(pkt, now)
        else:
            self._result.client_received.append(pkt)
            replies = self.client.on_packet(pkt, now)
        self._emit_endpoint_packets(node, replies, now)

    def _deliver_to_middlebox(self, node: int, pkt: Packet, now: float) -> None:
        device = self.middleboxes[node - 1]
        verdict: Verdict = device.process(pkt, now)
        if verdict.forward:
            self._send_from(node, pkt, now)
        for forged in verdict.to_server:
            self._send_from(node, forged.clone(direction=PacketDirection.TO_SERVER), forged.ts)
        for forged in verdict.to_client:
            self._send_from(node, forged.clone(direction=PacketDirection.TO_CLIENT), forged.ts)

    # ------------------------------------------------------------------
    def run(self, start: float = 0.0, deadline: float = 20.0) -> SimResult:
        """Run the connection to quiescence; returns the observation record.

        ``deadline`` bounds simulated seconds (wall time is unrelated);
        events beyond ``start + deadline`` are discarded.
        """
        self._result = SimResult(start=start)
        horizon = start + deadline
        self._emit_endpoint_packets(0, self.client.begin(start), start)

        last_ts = start
        while self._heap:
            ts, _, kind, payload, node = heapq.heappop(self._heap)
            if ts > horizon:
                continue  # drain without processing
            last_ts = max(last_ts, ts)
            if kind == "deliver":
                pkt = payload  # type: ignore[assignment]
                if node == 0 or node == self._server_node:
                    self._deliver_to_endpoint(node, pkt, ts)
                else:
                    self._deliver_to_middlebox(node, pkt, ts)
            elif kind == "timer":
                endpoint = payload
                expected = endpoint.next_timer()
                if expected is None or ts + 1e-9 < expected:
                    continue  # stale timer entry
                replies = endpoint.on_timer(ts)
                after = endpoint.next_timer()
                if after is not None and after <= ts + 1e-9:
                    raise SimulationError(
                        f"endpoint {type(endpoint).__name__} did not advance its "
                        f"timer past {ts}; refusing to spin"
                    )
                self._emit_endpoint_packets(0 if endpoint is self.client else self._server_node, replies, ts)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")

        self._result.end = last_ts
        return self._result
