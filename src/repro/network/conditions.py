"""Per-leg network conditions: latency, hop counts, loss.

A path between a client and the CDN edge is divided into *legs* by the
middleboxes sitting on it.  Each leg contributes propagation latency and
an IP hop count (each hop decrements TTL by one, which is what makes the
TTL-based injection evidence of Figure 3 work: packets forged mid-path
arrive having crossed fewer hops than end-to-end packets).
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Sequence, Tuple

from repro.errors import ConfigError

__all__ = ["LegConditions", "NetworkConditions"]


@dataclasses.dataclass(frozen=True)
class LegConditions:
    """One path leg: latency (one-way seconds), hop count, loss rate."""

    latency: float = 0.02
    hops: int = 5
    loss: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigError("leg latency must be non-negative")
        if self.hops < 1:
            raise ConfigError("leg hop count must be >= 1")
        if not 0.0 <= self.loss < 1.0:
            raise ConfigError("leg loss must be in [0, 1)")
        if self.jitter < 0:
            raise ConfigError("leg jitter must be non-negative")

    def sample_latency(self, rng: random.Random) -> float:
        """Draw this traversal's latency (base plus uniform jitter)."""
        if self.jitter <= 0:
            return self.latency
        return self.latency + rng.uniform(0.0, self.jitter)

    def drops_packet(self, rng: random.Random) -> bool:
        """Draw whether this traversal loses the packet."""
        return self.loss > 0 and rng.random() < self.loss


@dataclasses.dataclass(frozen=True)
class NetworkConditions:
    """Conditions for a full path with ``n_middleboxes`` devices on it.

    ``legs`` must contain exactly ``n_middleboxes + 1`` entries, ordered
    client-side first.
    """

    legs: Tuple[LegConditions, ...]

    def __post_init__(self) -> None:
        if not self.legs:
            raise ConfigError("a path needs at least one leg")

    @property
    def n_middleboxes(self) -> int:
        return len(self.legs) - 1

    @property
    def total_latency(self) -> float:
        """Base one-way latency of the full path."""
        return sum(leg.latency for leg in self.legs)

    @property
    def total_hops(self) -> int:
        """End-to-end IP hop count of the full path."""
        return sum(leg.hops for leg in self.legs)

    @classmethod
    def simple(
        cls,
        n_middleboxes: int = 1,
        latency: float = 0.04,
        hops: int = 14,
        loss: float = 0.0,
    ) -> "NetworkConditions":
        """Evenly divide a path among ``n_middleboxes + 1`` legs."""
        n_legs = n_middleboxes + 1
        base_hops = max(1, hops // n_legs)
        leg_hops = [base_hops] * n_legs
        leg_hops[-1] += max(0, hops - base_hops * n_legs)
        legs = tuple(
            LegConditions(latency=latency / n_legs, hops=h, loss=loss) for h in leg_hops
        )
        return cls(legs)

    @classmethod
    def random_path(
        cls,
        rng: random.Random,
        n_middleboxes: int = 1,
        loss: float = 0.0,
    ) -> "NetworkConditions":
        """Draw a plausible path: 8-22 total hops, 10-120 ms one-way."""
        total_hops = rng.randint(8, 22)
        total_latency = rng.uniform(0.010, 0.120)
        return cls.simple(
            n_middleboxes=n_middleboxes,
            latency=total_latency,
            hops=total_hops,
            loss=loss,
        )
