"""Path simulation: clients, middleboxes and servers exchanging packets.

:mod:`repro.network.sim` provides the event-driven simulator that moves
packets between a client, an ordered chain of middleboxes, and a server,
modelling per-leg latency, hop counts (TTL decrement), and loss.
:mod:`repro.network.endpoints` provides non-standard client
personalities -- scanners, Happy-Eyeballs cancellers, impatient clients --
that generate the benign look-alike traffic the paper's §4.2 validation
worries about.
"""

from repro.network.conditions import LegConditions, NetworkConditions
from repro.network.endpoints import (
    AbortiveCloseClient,
    HappyEyeballsCanceller,
    ImpatientClient,
    NeverCloseClient,
    SilentSynClient,
    ZMapScanner,
)
from repro.network.sim import PathSimulator, SimResult

__all__ = [
    "LegConditions",
    "NetworkConditions",
    "PathSimulator",
    "SimResult",
    "ZMapScanner",
    "HappyEyeballsCanceller",
    "ImpatientClient",
    "SilentSynClient",
    "AbortiveCloseClient",
    "NeverCloseClient",
]
