"""Non-standard client personalities.

The paper's §4.2 validation enumerates benign behaviours that *look* like
tampering from the server side: Internet scanners answering SYN+ACKs with
RSTs, Happy-Eyeballs clients abandoning the losing address family, SYN
floods, and plain impatient clients.  These endpoint classes generate
that traffic so the pipeline's false-positive pathways are exercised and
the scanner-detection heuristics (no TCP options, high TTL, fixed IP-ID)
have something to find.

All classes implement the simulator's endpoint protocol:
``begin(now)``, ``on_packet(pkt, now)``, ``on_timer(now)``,
``next_timer()``, and ``done``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netstack.flags import TCPFlags
from repro.netstack.packet import Packet, PacketDirection
from repro.netstack.tcp import HostConfig, IpIdMode, TcpClient, TcpState

__all__ = [
    "ZMapScanner",
    "SilentSynClient",
    "HappyEyeballsCanceller",
    "ImpatientClient",
    "AbortiveCloseClient",
    "NeverCloseClient",
]

#: The fixed IP-ID value ZMap stamps on its probes (Hiesgen et al.).
ZMAP_IP_ID = 54321


class ZMapScanner:
    """A stateless ZMap-style scanner.

    Sends one option-less SYN with IP-ID 54321 and a high TTL; if the
    target answers SYN+ACK, replies with a bare RST and forgets the
    connection.  At the server this matches ⟨SYN → RST⟩ -- a known
    false-positive source the evidence module must be able to flag.
    """

    def __init__(self, ip: str, port: int, server_ip: str, server_port: int, isn: int = 0) -> None:
        self.config = HostConfig(
            ip=ip,
            port=port,
            initial_ttl=255,
            ip_id_mode=IpIdMode.ZERO,  # overridden: fixed value below
            isn=isn,
            options=(),
        )
        self.server_ip = server_ip
        self.server_port = server_port
        self._sent_rst = False
        self._started = False

    @property
    def done(self) -> bool:
        return self._sent_rst

    def next_timer(self) -> Optional[float]:
        return None

    def on_timer(self, now: float) -> List[Packet]:
        return []

    def _packet(self, now: float, flags: TCPFlags, seq: int, ack: int = 0) -> Packet:
        return Packet(
            ts=now,
            src=self.config.ip,
            dst=self.server_ip,
            sport=self.config.port,
            dport=self.server_port,
            ttl=self.config.initial_ttl,
            ip_id=ZMAP_IP_ID,
            seq=seq,
            ack=ack,
            flags=flags,
            options=(),
            direction=PacketDirection.TO_SERVER,
        )

    def begin(self, now: float) -> List[Packet]:
        self._started = True
        return [self._packet(now, TCPFlags.SYN, seq=self.config.isn)]

    def on_packet(self, pkt: Packet, now: float) -> List[Packet]:
        if self._sent_rst or not self._started:
            return []
        if pkt.flags.is_syn and pkt.flags.is_ack:
            self._sent_rst = True
            return [self._packet(now, TCPFlags.RST, seq=self.config.isn + 1)]
        return []


class SilentSynClient:
    """Sends a single SYN and never responds to anything.

    Models spoofed-source SYN-flood residue that leaked past DDoS
    filtering, and curl-style Happy-Eyeballs losers that simply abandon
    the connection.  At the server: ⟨SYN → ∅⟩.
    """

    def __init__(self, ip: str, port: int, server_ip: str, server_port: int, isn: int = 0) -> None:
        self.client = TcpClient(
            HostConfig(ip=ip, port=port, isn=isn, max_retries=0),
            server_ip,
            server_port,
        )
        self._begun = False

    @property
    def done(self) -> bool:
        return self._begun

    def next_timer(self) -> Optional[float]:
        return None

    def on_timer(self, now: float) -> List[Packet]:
        return []

    def begin(self, now: float) -> List[Packet]:
        self._begun = True
        return self.client.begin(now)

    def on_packet(self, pkt: Packet, now: float) -> List[Packet]:
        return []


class HappyEyeballsCanceller:
    """A dual-stack client cancelling the losing connection attempt.

    Per RFC 8305 (Chromium behaviour) the unused connection is reset:
    the client answers the SYN+ACK with a bare RST.  At the server this
    matches ⟨SYN → RST⟩.  (curl-style RFC 6555 behaviour -- silently
    dropping the attempt -- is :class:`SilentSynClient`.)
    """

    def __init__(self, ip: str, port: int, server_ip: str, server_port: int, isn: int = 0) -> None:
        self.config = HostConfig(ip=ip, port=port, isn=isn)
        self.server_ip = server_ip
        self.server_port = server_port
        self._ip_id = (isn * 7 + 11) & 0xFFFF
        self._cancelled = False

    @property
    def done(self) -> bool:
        return self._cancelled

    def next_timer(self) -> Optional[float]:
        return None

    def on_timer(self, now: float) -> List[Packet]:
        return []

    def begin(self, now: float) -> List[Packet]:
        self._ip_id = (self._ip_id + 1) & 0xFFFF
        return [
            Packet(
                ts=now,
                src=self.config.ip,
                dst=self.server_ip,
                sport=self.config.port,
                dport=self.server_port,
                ttl=self.config.initial_ttl,
                ip_id=self._ip_id,
                seq=self.config.isn,
                flags=TCPFlags.SYN,
                options=self.config.options,
                direction=PacketDirection.TO_SERVER,
            )
        ]

    def on_packet(self, pkt: Packet, now: float) -> List[Packet]:
        if self._cancelled:
            return []
        if pkt.flags.is_syn and pkt.flags.is_ack:
            self._cancelled = True
            self._ip_id = (self._ip_id + 1) & 0xFFFF
            return [
                Packet(
                    ts=now,
                    src=self.config.ip,
                    dst=self.server_ip,
                    sport=self.config.port,
                    dport=self.server_port,
                    ttl=self.config.initial_ttl,
                    ip_id=self._ip_id,
                    seq=self.config.isn + 1,
                    flags=TCPFlags.RST,
                    direction=PacketDirection.TO_SERVER,
                )
            ]
        return []


class AbortiveCloseClient(TcpClient):
    """A client that RSTs right after completing the FIN handshake.

    Linux applications that close with unread data (or SO_LINGER games)
    produce exactly this: a graceful exchange followed by a gratuitous
    RST.  Arlitt & Williamson measured ~15% of campus connections ending
    in RSTs; at the server this lands in the paper's *possibly tampered*
    pool but matches no signature (FIN present ⇒ OTHER).
    """

    def on_packet(self, pkt: Packet, now: float) -> List[Packet]:
        replies = super().on_packet(pkt, now)
        if self.state == TcpState.LAST_ACK and any(p.flags.is_fin for p in replies):
            # Queue the abortive RST right behind our FIN+ACK.
            replies.append(self._make(now, TCPFlags.RST, seq=self.snd_nxt, ack=0))
        return replies


class NeverCloseClient(TcpClient):
    """A client that reads the response but never closes the connection.

    Models long-lived keep-alive connections (and buggy stacks) whose
    server-side capture shows data followed by silence without a FIN
    handshake -- the paper's uncovered possibly-tampered residue in the
    post-multiple-data stage.
    """

    def on_packet(self, pkt: Packet, now: float) -> List[Packet]:
        if pkt.flags.is_fin and not pkt.flags.is_rst:
            # ACK the server's FIN but never send our own.
            if not self.done:
                self.rcv_nxt = (pkt.seq + len(pkt.payload) + 1) % (1 << 32)
                self.fin_received = True
                return [self._make(now, TCPFlags.ACK, seq=self.snd_nxt, ack=self.rcv_nxt)]
            return []
        return super().on_packet(pkt, now)


class ImpatientClient(TcpClient):
    """A normal client that RST-aborts if the response stalls.

    After sending its request it waits ``patience`` seconds; if the full
    response has not arrived it tears the connection down with a RST --
    an organic (non-middlebox) source of post-request RSTs.
    """

    def __init__(self, *args, patience: float = 0.5, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.patience = patience
        self._abort_at: Optional[float] = None
        self._aborted = False

    def begin(self, now: float) -> List[Packet]:
        packets = super().begin(now)
        self._abort_at = now + self.patience
        return packets

    def next_timer(self) -> Optional[float]:
        base = super().next_timer()
        if self._aborted or self.done:
            return base
        if self._abort_at is None:
            return base
        if base is None:
            return self._abort_at
        return min(base, self._abort_at)

    def on_timer(self, now: float) -> List[Packet]:
        if (
            not self._aborted
            and self._abort_at is not None
            and now + 1e-9 >= self._abort_at
        ):
            # Consume the deadline unconditionally so the timer cannot
            # re-fire forever; only actually abort from live states.
            self._aborted = True
            if not self.done and self.state in (TcpState.ESTABLISHED, TcpState.SYN_SENT):
                self.state = TcpState.RESET
                self._cancel_timer()
                return [self._make(now, TCPFlags.RST, seq=self.snd_nxt, ack=0)]
        return super().on_timer(now)
