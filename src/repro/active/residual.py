"""Residual-censorship measurement: an active experiment on our censors.

Several censors keep blocking a (client, domain) pair for a while after
one trigger -- the paper's Appendix B lists residual blocking among the
explanations for signature churn, and §6 notes that *active* measurement
can "trigger events and test hypotheses" in ways passive measurement
cannot.  This module is that experiment: trigger a device once, then
probe the same pair at increasing delays and report when the blocking
stops.  Run against a device with a known ``residual_seconds`` it
recovers the configured window; run against an unknown middlebox it
measures one.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.cdn.edge import EdgeConfig, make_edge_server
from repro.middlebox.device import TamperingMiddlebox
from repro.netstack.tcp import HostConfig, TcpClient, TcpState
from repro.netstack.tls import build_client_hello
from repro.network.conditions import NetworkConditions
from repro.network.sim import PathSimulator

__all__ = ["ResidualProbeResult", "ResidualMeasurement", "measure_residual_window"]

_CLIENT_IP = "11.0.0.200"
_SERVER_IP = "198.41.200.1"


@dataclasses.dataclass(frozen=True)
class ResidualProbeResult:
    """One follow-up probe after the trigger."""

    delay: float  # seconds after the triggering connection
    blocked: bool


@dataclasses.dataclass(frozen=True)
class ResidualMeasurement:
    """Outcome of a residual-window sweep."""

    domain: str
    probes: Tuple[ResidualProbeResult, ...]

    @property
    def estimated_window(self) -> Optional[float]:
        """Last blocked delay (None if no follow-up was ever blocked)."""
        blocked = [p.delay for p in self.probes if p.blocked]
        return max(blocked) if blocked else None

    @property
    def first_unblocked(self) -> Optional[float]:
        """Earliest delay at which the pair worked again."""
        clear = [p.delay for p in self.probes if not p.blocked]
        return min(clear) if clear else None


def _run_once(device: TamperingMiddlebox, domain: str, start: float, port: int) -> bool:
    """One connection for the pair; returns True if it was blocked."""
    client = TcpClient(
        HostConfig(ip=_CLIENT_IP, port=port, isn=40_000 + port, ip_id_start=port & 0xFFFF),
        _SERVER_IP,
        443,
        request_segments=[build_client_hello(domain, seed=port)],
    )
    server = make_edge_server(_SERVER_IP, EdgeConfig(port=443), seed=port)
    sim = PathSimulator(
        client, server, middleboxes=[device],
        conditions=NetworkConditions.simple(n_middleboxes=1, hops=14),
    )
    result = sim.run(start=start)
    conn_key = _conn_key(client)
    device.forget_flow(conn_key)
    # Blocked = the client did not complete the transfer gracefully.
    return client.state != TcpState.TIME_WAIT


def _conn_key(client: TcpClient):
    a = (client.config.ip, client.config.port)
    b = (client.peer_ip, client.peer_port)
    lo, hi = sorted((a, b))
    return (lo[0], lo[1], hi[0], hi[1])


def measure_residual_window(
    device: TamperingMiddlebox,
    trigger_domain: str = "blocked.example",
    probe_domain: str = "innocent.example",
    delays: Sequence[float] = (5, 15, 30, 45, 60, 75, 85, 95, 110, 130, 180),
    start: float = 1_000.0,
) -> ResidualMeasurement:
    """Trigger once, then probe with an *innocent* request at ``delays``.

    The device's policy must match ``trigger_domain`` and not
    ``probe_domain``: follow-up probes are blocked only while the
    residual window for the (client, server) pair is open, so the
    probe results trace the window directly.  Probes use fresh ports
    (fresh TCP flows) from the same client address.
    """
    triggered = _run_once(device, trigger_domain, start=start, port=41_000)
    probes: List[ResidualProbeResult] = []
    for index, delay in enumerate(sorted(delays)):
        blocked = _run_once(device, probe_domain, start=start + delay, port=41_001 + index)
        probes.append(ResidualProbeResult(delay=float(delay), blocked=blocked))
    if not triggered:
        probes = [ResidualProbeResult(delay=p.delay, blocked=False) for p in probes]
    return ResidualMeasurement(domain=trigger_domain, probes=tuple(probes))
