"""Active-vs-passive coverage comparison (the paper's §6 argument).

Given an active scan (list-driven, vantage-limited, client-side) and a
passive analysis (demand-driven, global, server-side) over the same
world, partition each country's ground-truth blocklist into the four
visibility classes the paper reasons about:

* **both** -- on the test list *and* actively requested by users: both
  methods see it.
* **active only** -- on the test list but never (or rarely) requested:
  "what *could* be blocked" -- passive measurement is blind here.
* **passive only** -- requested and tampered with, but missing from the
  test list: the paper's §5.5 finding that lists are incomplete.
* **invisible** -- blocked, unlisted, and unrequested: neither method
  can see it (active measurement *could*, with a better list).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from repro.active.prober import ScanReport
from repro.core.aggregate import AnalysisDataset
from repro.core.testlists import registrable_domain

__all__ = ["CountryComparison", "ComparisonReport", "compare_coverage"]


@dataclasses.dataclass(frozen=True)
class CountryComparison:
    """Visibility partition of one country's ground-truth blocklist."""

    country: str
    truth_blocked: FrozenSet[str]
    active_detected: FrozenSet[str]
    passive_detected: FrozenSet[str]

    @property
    def both(self) -> FrozenSet[str]:
        return self.active_detected & self.passive_detected

    @property
    def active_only(self) -> FrozenSet[str]:
        return self.active_detected - self.passive_detected

    @property
    def passive_only(self) -> FrozenSet[str]:
        return self.passive_detected - self.active_detected

    @property
    def invisible(self) -> FrozenSet[str]:
        return self.truth_blocked - self.active_detected - self.passive_detected

    @property
    def union_detected(self) -> FrozenSet[str]:
        return self.active_detected | self.passive_detected

    def recall(self, detected: FrozenSet[str]) -> float:
        if not self.truth_blocked:
            return 0.0
        return len(detected & self.truth_blocked) / len(self.truth_blocked)

    @property
    def active_recall(self) -> float:
        return self.recall(self.active_detected)

    @property
    def passive_recall(self) -> float:
        return self.recall(self.passive_detected)

    @property
    def union_recall(self) -> float:
        return self.recall(self.union_detected)


@dataclasses.dataclass
class ComparisonReport:
    """Per-country comparisons plus convenience accessors."""

    countries: Dict[str, CountryComparison]

    def __getitem__(self, country: str) -> CountryComparison:
        return self.countries[country]

    def __iter__(self):
        return iter(self.countries.values())

    @property
    def total_passive_only(self) -> int:
        return sum(len(c.passive_only) for c in self)

    @property
    def total_active_only(self) -> int:
        return sum(len(c.active_only) for c in self)


def _normalise(domains: Iterable[str]) -> Set[str]:
    return {registrable_domain(d) for d in domains}


def compare_coverage(
    world,
    scan: ScanReport,
    passive: AnalysisDataset,
    countries: Optional[Iterable[str]] = None,
    passive_threshold: int = 1,
) -> ComparisonReport:
    """Build the visibility partition for each country.

    ``passive`` detection uses the dataset's Post-PSH tampered-domain
    extraction (what the server could actually attribute), at
    ``passive_threshold`` matches per day.  All domain sets are reduced
    to registrable domains before comparison.
    """
    if countries is None:
        countries = scan.countries
    out: Dict[str, CountryComparison] = {}
    for country in countries:
        truth = _normalise(world.blocklist(country))
        active = _normalise(scan.blocked_domains(country)) & truth
        passive_domains = (
            _normalise(passive.tampered_domains(country=country, threshold=passive_threshold))
            & truth
        )
        out[country] = CountryComparison(
            country=country,
            truth_blocked=frozenset(truth),
            active_detected=frozenset(active),
            passive_detected=frozenset(passive_domains),
        )
    return ComparisonReport(countries=out)
