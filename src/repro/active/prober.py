"""Active probing from in-country vantage points.

An :class:`ActiveProber` holds vantage points (clients inside the
networks of interest -- the thing the paper says is hard to procure) and
probes test-list domains through the same middlebox chains real traffic
crosses.  Unlike the passive pipeline, the prober observes the *client*
side of each connection, so its outcome vocabulary matches active tools:
``OK``, ``RESET`` (a RST killed the attempt), ``TIMEOUT`` (silence), and
``BLOCKPAGE`` (injected content arrived).

Probes are deliberately driven by a list, not by user demand: the scan
answers "what *could* be blocked here", the paper's framing of active
measurement's strength and weakness.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro._util import derive_rng, stable_hash
from repro.errors import ConfigError
from repro.netstack.tcp import TcpState
from repro.workloads.traffic import ConnectionSpec
from repro.workloads.world import World

__all__ = ["Vantage", "ProbeOutcome", "ProbeResult", "ScanReport", "ActiveProber"]

#: conn_id namespace for probes, far away from organic traffic ids.
_PROBE_ID_BASE = 1 << 40


class ProbeOutcome(enum.Enum):
    """What the probing client observed."""

    OK = "ok"  # graceful transfer completed
    RESET = "reset"  # connection killed by a RST
    TIMEOUT = "timeout"  # silence; the probe gave up
    BLOCKPAGE = "blockpage"  # injected content arrived instead

    @property
    def is_anomaly(self) -> bool:
        return self is not ProbeOutcome.OK


@dataclasses.dataclass(frozen=True)
class Vantage:
    """One probing client inside a network of interest."""

    country: str
    asn: int
    client_ip: str

    @property
    def label(self) -> str:
        return f"{self.country}/AS{self.asn}"


@dataclasses.dataclass(frozen=True)
class ProbeResult:
    """One probe of one domain from one vantage."""

    vantage: Vantage
    domain: str
    protocol: str
    outcome: ProbeOutcome

    @property
    def blocked(self) -> bool:
        return self.outcome.is_anomaly


@dataclasses.dataclass
class ScanReport:
    """All probes of one scan, with per-country blocked-domain views."""

    results: List[ProbeResult]

    def __len__(self) -> int:
        return len(self.results)

    def blocked_domains(self, country: Optional[str] = None) -> Set[str]:
        """Domains with at least one anomalous probe (from ``country``)."""
        return {
            r.domain
            for r in self.results
            if r.blocked and (country is None or r.vantage.country == country)
        }

    def reachable_domains(self, country: Optional[str] = None) -> Set[str]:
        """Domains that served at least one vantage cleanly."""
        return {
            r.domain
            for r in self.results
            if not r.blocked and (country is None or r.vantage.country == country)
        }

    def outcomes_for(self, domain: str) -> List[ProbeResult]:
        return [r for r in self.results if r.domain == domain]

    @property
    def countries(self) -> List[str]:
        return sorted({r.vantage.country for r in self.results})


class ActiveProber:
    """Probe test-list domains through a world's middlebox chains."""

    def __init__(self, world: World, seed: int = 0) -> None:
        self.world = world
        self.seed = seed
        self._next_probe = 0

    # ------------------------------------------------------------------
    def vantages(self, country: str, count: int = 2) -> List[Vantage]:
        """Recruit ``count`` vantage points spread over a country's ASNs.

        Mirrors the real-world constraint that vantage points are scarce:
        by default only a couple per country, placed in the largest
        networks first.
        """
        if count < 1:
            raise ConfigError("need at least one vantage")
        state = self.world.country(country)
        rng = derive_rng(self.seed, f"vantage:{country}")
        out: List[Vantage] = []
        for i in range(count):
            asn = state.asns[i % len(state.asns)]
            pool = state.clients_v4[asn]
            out.append(Vantage(country=country, asn=asn, client_ip=pool[rng.randrange(len(pool))]))
        return out

    # ------------------------------------------------------------------
    def probe(self, vantage: Vantage, domain: str, protocol: str = "tls") -> ProbeResult:
        """Fetch ``domain`` once from ``vantage`` and classify the outcome."""
        probe_id = _PROBE_ID_BASE + self._next_probe
        self._next_probe += 1
        rng = derive_rng(self.seed, f"probe:{probe_id}")
        spec = ConnectionSpec(
            conn_id=probe_id,
            ts=0.0,
            country=vantage.country,
            asn=vantage.asn,
            client_ip=vantage.client_ip,
            client_port=rng.randrange(1024, 65536),
            ip_version=4,
            protocol=protocol,
            domain=domain,
            host=domain,
            client_kind="browser",
        )
        result, client, _fired = self.world.run_connection(spec)
        outcome = self._classify_client_side(result, client)
        return ProbeResult(vantage=vantage, domain=domain, protocol=protocol, outcome=outcome)

    @staticmethod
    def _classify_client_side(result, client) -> ProbeOutcome:
        injected_payload = [
            p for p in result.client_received if p.injected and p.has_payload
        ]
        if injected_payload:
            return ProbeOutcome.BLOCKPAGE
        if client.state == TcpState.RESET:
            return ProbeOutcome.RESET
        if client.state == TcpState.TIME_WAIT:
            return ProbeOutcome.OK
        return ProbeOutcome.TIMEOUT

    # ------------------------------------------------------------------
    def scan(
        self,
        domains: Iterable[str],
        countries: Sequence[str],
        vantages_per_country: int = 2,
        protocol: str = "tls",
    ) -> ScanReport:
        """Probe every domain from every country's vantage points."""
        results: List[ProbeResult] = []
        domain_list = list(domains)
        for country in countries:
            for vantage in self.vantages(country, vantages_per_country):
                for domain in domain_list:
                    results.append(self.probe(vantage, domain, protocol=protocol))
        return ScanReport(results=results)
