"""Active measurement: the paper's comparison baseline.

The paper positions passive detection as a *complement* to active
measurement (Censored Planet, OONI, ICLab): active tools probe test-list
domains from vantage points inside networks of interest and observe the
*client side*; the passive pipeline observes real users' connections at
the *server side*.  This subpackage implements the active side over the
same synthetic world, so their complementary coverage can be measured
directly (the paper's §2.2, §5.5 and §6 arguments):

* :mod:`repro.active.prober` -- vantage points, single probes, and
  test-list scans with client-side outcome classification.
* :mod:`repro.active.compare` -- coverage comparison between an active
  scan, a passive analysis, and (simulation-only) the ground-truth
  blocklists.
"""

from repro.active.compare import ComparisonReport, compare_coverage
from repro.active.residual import ResidualMeasurement, measure_residual_window
from repro.active.prober import ActiveProber, ProbeOutcome, ProbeResult, ScanReport, Vantage

__all__ = [
    "Vantage",
    "ProbeOutcome",
    "ProbeResult",
    "ScanReport",
    "ActiveProber",
    "ComparisonReport",
    "compare_coverage",
    "ResidualMeasurement",
    "measure_residual_window",
]
