"""Named metrics: counters, gauges, and fixed-bucket latency histograms.

The registry is the passive half of :mod:`repro.obs` -- plain objects
with integer/float fields, no background threads, and no third-party
dependencies.  Hot paths hold direct references to the metric objects,
so the registry dict is only touched at wiring time.

Mutation is **thread-safe**: every metric carries its own lock, taken
for the few nanoseconds an update needs.  The serving tier
(:mod:`repro.serve`) updates the same registry from the asyncio event
loop thread and the ingest worker thread concurrently, and unlocked
``value += n`` / bucket increments lose updates under that interleaving
(the read-modify-write spans several bytecodes).  The single-threaded
engine hot path keeps its lock-free fast lane through
:class:`~repro.obs.layer.SpanTimer`, which owns its histogram by
contract.

Histograms use a fixed exponential bucket ladder
(:data:`DEFAULT_LATENCY_BOUNDS`, 1 microsecond to ~16 seconds) rather
than reservoir sampling: observation cost is one ``bisect`` plus two
adds, memory is constant, and two histograms merge by adding their
bucket arrays.  Percentiles are reconstructed from the cumulative
bucket counts with linear interpolation inside the winning bucket --
coarse but monotone, and exact enough to rank stages and spot a
bottleneck (:func:`percentile_from_buckets` is also used by ``repro
obs`` to re-derive p50/p99 from an on-disk export).

Exposition follows the Prometheus text format: metric names are
prefixed ``repro_``, dots become underscores, histograms get a
``_seconds`` unit suffix and the usual ``_bucket``/``_sum``/``_count``
triplet with cumulative ``le`` labels.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile_from_buckets",
    "prometheus_name",
]

#: Upper bounds (seconds) of the latency buckets: 1 us .. ~16 s, doubling.
#: The final ``+inf`` overflow bucket is implicit.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = tuple(
    1e-6 * (2.0 ** i) for i in range(25)
)


#: Anything outside the Prometheus metric-name alphabet ([a-zA-Z0-9_:],
#: with the leading character guaranteed by the ``repro_`` prefix).
_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, unit: str = "") -> str:
    """Map a dotted metric name to a Prometheus-safe identifier.

    Dots and dashes become underscores, and so does every other
    character outside the exposition-format alphabet -- stage names are
    chosen by call sites all over the pipeline, and one odd name must
    not invalidate the whole ``/metrics`` page.
    """
    base = "repro_" + _INVALID_NAME_CHARS.sub("_", name)
    if unit:
        base += "_" + unit
    return base


class Counter:
    """A monotonically increasing count; ``inc`` is thread-safe."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, open cells).

    Mutation is thread-safe; reads are a single atomic attribute load.
    """

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self.value -= n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket latency histogram (seconds).

    ``counts`` has ``len(bounds) + 1`` slots; the last is the overflow
    bucket for observations above every bound.  ``bounds[i]`` is the
    *inclusive* upper edge of bucket ``i`` (Prometheus ``le``
    semantics).
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "exemplars", "_lock")

    def __init__(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> None:
        chosen = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        if not chosen or any(b <= a for a, b in zip(chosen, chosen[1:])):
            raise ValueError("histogram bounds must be non-empty and increasing")
        self.name = name
        self.help = help
        self.bounds = chosen
        self.counts = [0] * (len(chosen) + 1)
        self.sum = 0.0
        # bucket index -> (trace_id, observed value, epoch ts): the last
        # traced observation that landed in that bucket.  Bounded by the
        # bucket count; empty unless request tracing is sampled.
        self.exemplars: Dict[int, Tuple[str, float, float]] = {}
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.sum += value

    def set_exemplar(self, value: float, trace_id: str, ts: float) -> None:
        """Attach a traced observation to its bucket (exemplar).

        Called by :class:`~repro.obs.spantree.SpanRecorder` for sampled
        requests only, so the untraced hot path never pays for this.
        The exemplar does *not* increment the bucket -- the span's
        duration was already counted through the stage's timer.
        """
        with self._lock:
            self.exemplars[bisect_left(self.bounds, value)] = (
                trace_id, value, ts,
            )

    def snapshot(self) -> Tuple[List[int], float]:
        """A mutation-consistent ``(counts, sum)`` copy.

        Renderers and percentile math read through this so a concurrent
        ``observe`` can never be seen half-applied (bucket counted, sum
        not yet added).  :class:`~repro.obs.layer.SpanTimer` writes
        bypass the lock by contract (one owning thread per timer), so a
        snapshot taken *while that thread is mid-update* may still be
        one observation stale -- never torn across buckets and sum in a
        way that breaks cumulative monotonicity, because each bucket
        slot is updated with a single atomic list-item add.
        """
        with self._lock:
            return list(self.counts), self.sum

    @property
    def count(self) -> int:
        # Derived from the buckets so the hot observe path pays one
        # list add instead of two attribute adds.
        return sum(self.counts)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]), interpolated."""
        counts, _ = self.snapshot()
        return percentile_from_buckets(self.bounds, counts, q)

    @property
    def mean(self) -> float:
        counts, total_sum = self.snapshot()
        n = sum(counts)
        return total_sum / n if n else 0.0

    def to_dict(self) -> Dict[str, object]:
        counts, total_sum = self.snapshot()
        out: Dict[str, object] = {
            "bounds": list(self.bounds),
            "counts": counts,
            "count": sum(counts),
            "sum": total_sum,
        }
        with self._lock:
            exemplars = dict(self.exemplars)
        if exemplars:
            out["exemplars"] = {
                str(idx): {"trace_id": tid, "value": value, "ts": ts}
                for idx, (tid, value, ts) in sorted(exemplars.items())
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, sum={self.sum:.6f})"


def percentile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Reconstruct a percentile from bucket counts.

    Linear interpolation within the bucket containing the target rank;
    observations in the overflow bucket report the last finite bound
    (a floor for the true value, clearly marked in docs).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = (q / 100.0) * total
    cumulative = 0
    for i, n in enumerate(counts):
        if n == 0:
            continue
        if cumulative + n >= target:
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i] if i < len(bounds) else bounds[-1]
            fraction = (target - cumulative) / n
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        cumulative += n
    return bounds[-1]


class MetricsRegistry:
    """Get-or-create home for named metrics.

    Creation is idempotent per name; asking for an existing name with a
    different metric type is a bug and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, *args, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name, *args, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(Histogram, name, bounds, help)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def counters(self) -> Iterable[Counter]:
        return [m for m in self._metrics.values() if isinstance(m, Counter)]

    def gauges(self) -> Iterable[Gauge]:
        return [m for m in self._metrics.values() if isinstance(m, Gauge)]

    def histograms(self) -> Iterable[Histogram]:
        return [m for m in self._metrics.values() if isinstance(m, Histogram)]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Full-fidelity JSON-safe dump (buckets included)."""
        return {
            "counters": {m.name: m.value for m in sorted(self.counters(), key=lambda m: m.name)},
            "gauges": {m.name: m.value for m in sorted(self.gauges(), key=lambda m: m.name)},
            "histograms": {
                m.name: m.to_dict()
                for m in sorted(self.histograms(), key=lambda m: m.name)
            },
        }

    def summary(self) -> Dict[str, object]:
        """Compact dump: histogram percentiles instead of raw buckets."""
        histograms: Dict[str, object] = {}
        for m in sorted(self.histograms(), key=lambda m: m.name):
            # One snapshot per histogram so count/sum/percentiles all
            # describe the same instant under concurrent observers.
            counts, total_sum = m.snapshot()
            n = sum(counts)
            histograms[m.name] = {
                "count": n,
                "sum": total_sum,
                "mean": total_sum / n if n else 0.0,
                "p50": percentile_from_buckets(m.bounds, counts, 50.0),
                "p99": percentile_from_buckets(m.bounds, counts, 99.0),
            }
        return {
            "counters": {m.name: m.value for m in sorted(self.counters(), key=lambda m: m.name)},
            "gauges": {m.name: m.value for m in sorted(self.gauges(), key=lambda m: m.name)},
            "histograms": histograms,
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in sorted(self.counters(), key=lambda m: m.name):
            pname = prometheus_name(metric.name) + "_total"
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {metric.value}")
        for metric in sorted(self.gauges(), key=lambda m: m.name):
            pname = prometheus_name(metric.name)
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(metric.value)}")
        for metric in sorted(self.histograms(), key=lambda m: m.name):
            pname = prometheus_name(metric.name, "seconds")
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} histogram")
            counts, total_sum = metric.snapshot()
            with metric._lock:
                exemplars = dict(metric.exemplars)
            total = sum(counts)
            cumulative = 0
            for i, (bound, n) in enumerate(zip(metric.bounds, counts)):
                cumulative += n
                lines.append(
                    f'{pname}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                    + _exemplar_suffix(exemplars.get(i))
                )
            lines.append(
                f'{pname}_bucket{{le="+Inf"}} {total}'
                + _exemplar_suffix(exemplars.get(len(metric.bounds)))
            )
            lines.append(f"{pname}_sum {_fmt(total_sum)}")
            lines.append(f"{pname}_count {total}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render a float the way Prometheus expects (no trailing zeros)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _exemplar_suffix(exemplar: Optional[Tuple[str, float, float]]) -> str:
    """OpenMetrics-style exemplar tail for a ``_bucket`` line (or "").

    Rendered only when request tracing actually attached an exemplar,
    so exposition output is byte-identical to before on untraced runs.
    """
    if exemplar is None:
        return ""
    trace_id, value, ts = exemplar
    return f' # {{trace_id="{trace_id}"}} {_fmt(value)} {_fmt(ts)}'
