"""Named metrics: counters, gauges, and fixed-bucket latency histograms.

The registry is the passive half of :mod:`repro.obs` -- plain objects
with integer/float fields, no locks, no background threads, and no
third-party dependencies.  Hot paths hold direct references to the
metric objects (``Counter.inc`` is one attribute add), so the registry
dict is only touched at wiring time.

Histograms use a fixed exponential bucket ladder
(:data:`DEFAULT_LATENCY_BOUNDS`, 1 microsecond to ~16 seconds) rather
than reservoir sampling: observation cost is one ``bisect`` plus two
adds, memory is constant, and two histograms merge by adding their
bucket arrays.  Percentiles are reconstructed from the cumulative
bucket counts with linear interpolation inside the winning bucket --
coarse but monotone, and exact enough to rank stages and spot a
bottleneck (:func:`percentile_from_buckets` is also used by ``repro
obs`` to re-derive p50/p99 from an on-disk export).

Exposition follows the Prometheus text format: metric names are
prefixed ``repro_``, dots become underscores, histograms get a
``_seconds`` unit suffix and the usual ``_bucket``/``_sum``/``_count``
triplet with cumulative ``le`` labels.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile_from_buckets",
    "prometheus_name",
]

#: Upper bounds (seconds) of the latency buckets: 1 us .. ~16 s, doubling.
#: The final ``+inf`` overflow bucket is implicit.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = tuple(
    1e-6 * (2.0 ** i) for i in range(25)
)


def prometheus_name(name: str, unit: str = "") -> str:
    """Map a dotted metric name to a Prometheus-safe identifier."""
    base = "repro_" + name.replace(".", "_").replace("-", "_")
    if unit:
        base += "_" + unit
    return base


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, open cells)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket latency histogram (seconds).

    ``counts`` has ``len(bounds) + 1`` slots; the last is the overflow
    bucket for observations above every bound.  ``bounds[i]`` is the
    *inclusive* upper edge of bucket ``i`` (Prometheus ``le``
    semantics).
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum")

    def __init__(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> None:
        chosen = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS
        if not chosen or any(b <= a for a, b in zip(chosen, chosen[1:])):
            raise ValueError("histogram bounds must be non-empty and increasing")
        self.name = name
        self.help = help
        self.bounds = chosen
        self.counts = [0] * (len(chosen) + 1)
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value

    @property
    def count(self) -> int:
        # Derived from the buckets so the hot observe path pays one
        # list add instead of two attribute adds.
        return sum(self.counts)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]), interpolated."""
        return percentile_from_buckets(self.bounds, self.counts, q)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.count}, sum={self.sum:.6f})"


def percentile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Reconstruct a percentile from bucket counts.

    Linear interpolation within the bucket containing the target rank;
    observations in the overflow bucket report the last finite bound
    (a floor for the true value, clearly marked in docs).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = (q / 100.0) * total
    cumulative = 0
    for i, n in enumerate(counts):
        if n == 0:
            continue
        if cumulative + n >= target:
            lower = bounds[i - 1] if i > 0 else 0.0
            upper = bounds[i] if i < len(bounds) else bounds[-1]
            fraction = (target - cumulative) / n
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        cumulative += n
    return bounds[-1]


class MetricsRegistry:
    """Get-or-create home for named metrics.

    Creation is idempotent per name; asking for an existing name with a
    different metric type is a bug and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, cls, name: str, *args, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}"
                )
            return existing
        metric = cls(name, *args, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        help: str = "",
    ) -> Histogram:
        return self._get_or_create(Histogram, name, bounds, help)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def counters(self) -> Iterable[Counter]:
        return [m for m in self._metrics.values() if isinstance(m, Counter)]

    def gauges(self) -> Iterable[Gauge]:
        return [m for m in self._metrics.values() if isinstance(m, Gauge)]

    def histograms(self) -> Iterable[Histogram]:
        return [m for m in self._metrics.values() if isinstance(m, Histogram)]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Full-fidelity JSON-safe dump (buckets included)."""
        return {
            "counters": {m.name: m.value for m in sorted(self.counters(), key=lambda m: m.name)},
            "gauges": {m.name: m.value for m in sorted(self.gauges(), key=lambda m: m.name)},
            "histograms": {
                m.name: m.to_dict()
                for m in sorted(self.histograms(), key=lambda m: m.name)
            },
        }

    def summary(self) -> Dict[str, object]:
        """Compact dump: histogram percentiles instead of raw buckets."""
        return {
            "counters": {m.name: m.value for m in sorted(self.counters(), key=lambda m: m.name)},
            "gauges": {m.name: m.value for m in sorted(self.gauges(), key=lambda m: m.name)},
            "histograms": {
                m.name: {
                    "count": m.count,
                    "sum": m.sum,
                    "mean": m.mean,
                    "p50": m.percentile(50.0),
                    "p99": m.percentile(99.0),
                }
                for m in sorted(self.histograms(), key=lambda m: m.name)
            },
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in sorted(self.counters(), key=lambda m: m.name):
            pname = prometheus_name(metric.name) + "_total"
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {metric.value}")
        for metric in sorted(self.gauges(), key=lambda m: m.name):
            pname = prometheus_name(metric.name)
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(metric.value)}")
        for metric in sorted(self.histograms(), key=lambda m: m.name):
            pname = prometheus_name(metric.name, "seconds")
            if metric.help:
                lines.append(f"# HELP {pname} {metric.help}")
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, n in zip(metric.bounds, metric.counts):
                cumulative += n
                lines.append(f'{pname}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
            lines.append(f'{pname}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{pname}_sum {_fmt(metric.sum)}")
            lines.append(f"{pname}_count {metric.count}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render a float the way Prometheus expects (no trailing zeros)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
