"""Ring-buffered trace spans cheap enough for per-record hot paths.

The span ring is one preallocated ``array('d')`` holding three doubles
per span -- ``(name index, start, duration)`` -- written in place at a
wrapping cursor.  Stage names are interned to small indices once, at
timer-creation time, so recording a span is three adjacent double
stores and a cursor bump: no allocation (the transient floats are
copied out and freed), nothing for the garbage collector to trace, and
one cache line touched instead of three.  Both halves matter -- an
earlier deque-of-tuples ring cost the engine's fold loop several
percent of throughput in GC traffic and cold stores alone
(``benchmarks/bench_obs_overhead.py`` guards the budget).

The ring keeps the most recent ``capacity`` spans as a flight
recorder; complete per-stage distributions live in the histograms
(:mod:`repro.obs.registry`), so losing old spans loses no aggregate
information.  Lifecycle *events* (worker restarts, engine resume) are
rare and load-bearing -- the fire drills assert on them -- so they live
in their own small buffer where a flood of hot-path spans can never
evict them; they surface as zero-duration spans with ``kind="event"``
and an attrs dict.

Span start times are recorded as raw ``perf_counter`` values and
converted to epoch seconds only at export time, using a
``time.time()``/``perf_counter()`` pair captured when the tracer was
created.
"""

from __future__ import annotations

import json
import time
from array import array
from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Tracer"]

#: Doubles per ring slot: (name index, start, duration).
_SLOT = 3

#: Separate bound for the lifecycle-event buffer (events are rare).
DEFAULT_EVENT_CAPACITY = 256


class Tracer:
    """Bounded recorder of recent spans and lifecycle events."""

    def __init__(
        self,
        capacity: int = 4096,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        # The hot ring: SpanTimer writes _buf[_pos:_pos+3] in place.
        self._buf = array("d", bytes(8 * _SLOT * capacity))
        self._pos = 0  # in doubles, always a multiple of _SLOT
        self._wrapped = False
        self._name_table: List[str] = []
        self._name_index: Dict[str, float] = {}
        self._events: deque = deque(maxlen=max(1, event_capacity))
        self.total_spans = 0
        self.total_events = 0
        # Pairing these two clocks once lets every span carry only the
        # cheap monotonic reading; epoch conversion happens at export.
        self._epoch_time = time.time()
        self._epoch_perf = time.perf_counter()

    # ------------------------------------------------------------------
    def _register_name(self, name: str) -> float:
        """Intern ``name``; the returned float index is what slots store."""
        index = self._name_index.get(name)
        if index is None:
            index = float(len(self._name_table))
            self._name_table.append(name)
            self._name_index[name] = index
        return index

    def record(self, name: str, start: float, duration: float) -> None:
        """Append a finished span (``start`` is a ``perf_counter`` value).

        ``SpanTimer`` inlines this write; the method exists for direct
        callers and tests.
        """
        buf = self._buf
        i = self._pos
        buf[i] = self._register_name(name)
        buf[i + 1] = start
        buf[i + 2] = duration
        i += _SLOT
        if i == len(buf):
            self._pos = 0
            self._wrapped = True
        else:
            self._pos = i
        self.total_spans += 1

    def event(self, name: str, **attrs: object) -> None:
        """Record a zero-duration lifecycle event (restart, resume...)."""
        self._events.append((name, time.perf_counter(), attrs or None))
        self.total_spans += 1
        self.total_events += 1

    # ------------------------------------------------------------------
    def _to_epoch(self, perf_value: float) -> float:
        return self._epoch_time + (perf_value - self._epoch_perf)

    @property
    def _filled(self) -> int:
        """How many ring slots hold spans."""
        return self.capacity if self._wrapped else self._pos // _SLOT

    def _ring_entries(self) -> Iterator[Tuple[str, float, float]]:
        """(name, start, duration) oldest first, unwrapping the cursor."""
        buf = self._buf
        names = self._name_table
        offsets = range(self._pos, len(buf), _SLOT) if self._wrapped else ()
        for i in list(offsets) + list(range(0, self._pos, _SLOT)):
            yield names[int(buf[i])], buf[i + 1], buf[i + 2]

    def spans(self) -> List[Dict[str, object]]:
        """Ring spans plus events as JSON-safe dicts, oldest first."""
        out: List[Dict[str, object]] = []
        for name, start, duration in self._ring_entries():
            out.append(
                {
                    "name": name,
                    "ts": self._to_epoch(start),
                    "duration_seconds": duration,
                    "kind": "span",
                }
            )
        out.extend(self.events())
        out.sort(key=lambda span: span["ts"])
        return out

    def events(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        """Just the buffered events, optionally filtered by name."""
        out: List[Dict[str, object]] = []
        for event_name, start, attrs in self._events:
            if name is not None and event_name != name:
                continue
            span: Dict[str, object] = {
                "name": event_name,
                "ts": self._to_epoch(start),
                "duration_seconds": 0.0,
                "kind": "event",
            }
            if attrs:
                span["attrs"] = attrs
            out.append(span)
        return out

    def export_jsonl(self, path: str) -> int:
        """Write the ring as one JSON object per line; returns span count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span, sort_keys=True) + "\n")
        return len(spans)

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "recorded": self._filled + len(self._events),
            "total_spans": self.total_spans,
            "total_events": self.total_events,
        }
