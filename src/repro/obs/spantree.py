"""Request-scoped span trees: bounded capture, assembly, critical path.

The flight-recorder ring (:mod:`repro.obs.trace`) answers "what do
stage latencies look like lately"; this module answers "where did
*this* request's time go".  A :class:`SpanRecorder` hangs off
:class:`~repro.obs.layer.Observability` and collects parent-linked
spans for the (head-sampled) requests that carry a
:class:`~repro.obs.context.TraceContext`, keyed by trace id.

Capture is bounded two ways: at most ``max_traces`` traces are held
(top-K by total recorded duration -- when full, the cheapest unpinned
trace is evicted, so slow requests survive), and each trace holds at
most ``max_spans_per_trace`` spans (excess spans are counted, not
stored).  Traces can be *pinned* (413/429/503 rejections, anomaly
fires): pinned traces are evicted only when everything else is pinned
too, so the interesting tail is still there after a flood of fast
requests.

The untraced hot path pays one attribute load and a ``None`` check
(``recorder.active is None``); everything costlier happens only for
sampled requests.  ``activate()`` / ``begin()`` / ``finish()`` serve
the single ingest thread that folds items sequentially; cross-thread
recording (the serve event loop finishing a request span while the
worker folds) goes through ``record_span(..., ctx=...)`` which touches
only the lock-protected store.

The second half of the module is the offline analyzer behind ``repro
trace``: group exported spans by trace id, link children to parents
(spans whose parent was never recorded become roots -- pull-mode
traces have no HTTP request span), find the critical path (the chain
of latest-ending descendants), and aggregate per-stage *self time*
(duration minus time attributed to children).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.context import TraceContext, mint_span_id
from repro.obs.registry import Histogram

__all__ = [
    "SpanRecorder",
    "NullSpanRecorder",
    "NULL_RECORDER",
    "SpanNode",
    "build_trees",
    "critical_path",
    "stage_self_times",
    "render_trace_report",
    "trace_report_data",
]


class SpanRecorder:
    """Bounded, pin-aware store of per-trace span lists."""

    def __init__(
        self,
        registry=None,
        max_traces: int = 64,
        max_spans_per_trace: int = 512,
    ) -> None:
        if max_traces < 1 or max_spans_per_trace < 1:
            raise ValueError("trace capture bounds must be >= 1")
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        #: The context spans on the owning thread attach to; hot paths
        #: check ``recorder.active is None`` and skip everything else.
        self.active: Optional[TraceContext] = None
        self._stack: List[str] = []
        self._lock = threading.Lock()
        self._traces: Dict[str, List[dict]] = {}
        self._score: Dict[str, float] = {}
        self._order: Dict[str, int] = {}
        self._pinned: Dict[str, str] = {}
        self._seq = 0
        self.total_spans = 0
        self.dropped_spans = 0
        self.evicted_traces = 0
        self._registry = registry
        self._hist_cache: Dict[str, Optional[Histogram]] = {}
        # Same epoch pairing trick as Tracer: spans carry perf_counter
        # stamps, converted to epoch seconds when stored.
        self._epoch_time = time.time()
        self._epoch_perf = time.perf_counter()

    # -- owning-thread context ----------------------------------------
    def activate(self, ctx: Optional[TraceContext]) -> None:
        """Switch the owning thread's active context (None deactivates).

        Unsampled contexts deactivate too: the sampling decision is
        made once at the head and honoured everywhere downstream.
        """
        if ctx is not None and ctx.sampled:
            self.active = ctx
        else:
            self.active = None
        del self._stack[:]

    def begin(self, name: str):
        """Open a nested span under the active context.

        Returns an opaque token for :meth:`finish`.  Callers must have
        checked ``active is not None``; ``begin``/``finish`` pairs must
        nest properly on the owning thread.
        """
        ctx = self.active
        span_id = mint_span_id()
        parent = self._stack[-1] if self._stack else ctx.span_id
        self._stack.append(span_id)
        return (name, ctx, span_id, parent, time.perf_counter())

    def finish(self, token, **attrs: object) -> None:
        """Close a span opened by :meth:`begin` and store it."""
        name, ctx, span_id, parent, start = token
        duration = time.perf_counter() - start
        if self._stack and self._stack[-1] == span_id:
            self._stack.pop()
        self._store(name, ctx, span_id, parent, start, duration, attrs or None)

    # -- direct recording (any thread) --------------------------------
    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        ctx: Optional[TraceContext] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        attrs: Optional[dict] = None,
    ) -> Optional[str]:
        """Store one finished span (``start`` is a ``perf_counter`` value).

        With no explicit ``ctx`` the active context is used, and the
        parent defaults to the innermost open span (else the context's
        span id).  With an explicit ``ctx``, ``parent_id=None`` means
        the span parents onto ``ctx.span_id`` -- pass ``parent_id=""``
        to record a root span with no parent at all.
        """
        if ctx is None:
            ctx = self.active
            if ctx is None:
                return None
            if parent_id is None:
                parent_id = self._stack[-1] if self._stack else ctx.span_id
        elif not ctx.sampled:
            return None
        elif parent_id is None:
            parent_id = ctx.span_id
        if span_id is None:
            span_id = mint_span_id()
        self._store(name, ctx, span_id, parent_id or None, start, duration, attrs)
        return span_id

    def pin(self, trace_id: str, reason: str) -> None:
        """Protect a trace from top-K eviction (rejections, anomalies)."""
        with self._lock:
            self._pinned.setdefault(trace_id, reason)

    # -- internals -----------------------------------------------------
    def _store(
        self,
        name: str,
        ctx: TraceContext,
        span_id: str,
        parent_id: Optional[str],
        start: float,
        duration: float,
        attrs: Optional[dict],
    ) -> None:
        ts = self._epoch_time + (start - self._epoch_perf)
        trace_id = ctx.trace_id
        span = {
            "kind": "trace",
            "name": name,
            "trace": trace_id,
            "span": span_id,
            "parent": parent_id,
            "ts": ts,
            "duration_seconds": duration,
        }
        if attrs:
            span["attrs"] = attrs
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                if len(self._traces) >= self.max_traces:
                    self._evict_locked()
                spans = self._traces[trace_id] = []
                self._score[trace_id] = 0.0
                self._order[trace_id] = self._seq
                self._seq += 1
            if len(spans) >= self.max_spans_per_trace:
                self.dropped_spans += 1
                return
            spans.append(span)
            self._score[trace_id] += duration
            self.total_spans += 1
        self._exemplar(name, duration, trace_id, ts)

    def _evict_locked(self) -> None:
        """Drop the cheapest unpinned trace (oldest pinned as last resort)."""
        unpinned = [t for t in self._traces if t not in self._pinned]
        if unpinned:
            victim = min(unpinned, key=lambda t: (self._score[t], self._order[t]))
        else:
            victim = min(self._traces, key=lambda t: self._order[t])
            self._pinned.pop(victim, None)
        del self._traces[victim]
        del self._score[victim]
        del self._order[victim]
        self.evicted_traces += 1

    def _exemplar(self, name: str, duration: float, trace_id: str, ts: float) -> None:
        registry = self._registry
        if registry is None:
            return
        hist = self._hist_cache.get(name, False)
        if hist is False:
            metric = registry.get(name)
            hist = metric if isinstance(metric, Histogram) else None
            self._hist_cache[name] = hist
        if hist is not None:
            hist.set_exemplar(duration, trace_id, ts)

    # -- export --------------------------------------------------------
    def spans(self) -> List[dict]:
        """All captured spans, oldest first, pin reasons attached."""
        with self._lock:
            out = [dict(span) for spans in self._traces.values() for span in spans]
            pinned = dict(self._pinned)
        for span in out:
            reason = pinned.get(span["trace"])
            if reason is not None:
                span["pinned"] = reason
        out.sort(key=lambda span: span["ts"])
        return out

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "traces": len(self._traces),
                "spans": self.total_spans,
                "dropped_spans": self.dropped_spans,
                "evicted_traces": self.evicted_traces,
                "pinned": len(self._pinned),
            }


class NullSpanRecorder:
    """No-op twin with the same surface; ``active`` is always ``None``."""

    __slots__ = ()
    active = None

    def activate(self, ctx):
        pass

    def begin(self, name):
        return None

    def finish(self, token, **attrs):
        pass

    def record_span(self, name, start, duration, ctx=None, span_id=None,
                    parent_id=None, attrs=None):
        return None

    def pin(self, trace_id, reason):
        pass

    def spans(self):
        return []

    def stats(self):
        return {"traces": 0, "spans": 0, "dropped_spans": 0,
                "evicted_traces": 0, "pinned": 0}


#: Shared no-op recorder (NullObservability exposes this).
NULL_RECORDER = NullSpanRecorder()


# ----------------------------------------------------------------------
# Offline assembly and analysis (the `repro trace` half).
# ----------------------------------------------------------------------

class SpanNode:
    """One span plus its children, linked by parent span id."""

    __slots__ = ("span", "children")

    def __init__(self, span: dict) -> None:
        self.span = span
        self.children: List[SpanNode] = []

    @property
    def name(self) -> str:
        return self.span["name"]

    @property
    def ts(self) -> float:
        return self.span["ts"]

    @property
    def duration(self) -> float:
        return self.span["duration_seconds"]

    @property
    def end(self) -> float:
        return self.span["ts"] + self.span["duration_seconds"]

    @property
    def span_id(self) -> Optional[str]:
        return self.span.get("span")

    @property
    def parent_id(self) -> Optional[str]:
        return self.span.get("parent")

    def self_time(self) -> float:
        """Duration not attributed to children (clamped at zero)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self):
        yield self
        for child in self.children:
            for node in child.walk():
                yield node


def build_trees(spans: Sequence[dict]) -> Dict[str, List[SpanNode]]:
    """Group trace spans by trace id and link children under parents.

    Spans whose parent id was never recorded become roots: a
    client-minted context's root lives client-side, and pull-mode
    engine traces have no request span at all.  Children (and roots)
    are ordered by start time.
    """
    by_trace: Dict[str, List[dict]] = {}
    for span in spans:
        if span.get("kind") != "trace":
            continue
        by_trace.setdefault(span["trace"], []).append(span)
    trees: Dict[str, List[SpanNode]] = {}
    for trace_id, members in by_trace.items():
        nodes = {s["span"]: SpanNode(s) for s in members if s.get("span")}
        roots: List[SpanNode] = []
        for node in nodes.values():
            parent = nodes.get(node.parent_id) if node.parent_id else None
            if parent is not None and parent is not node:
                parent.children.append(node)
            else:
                roots.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: n.ts)
        roots.sort(key=lambda n: n.ts)
        trees[trace_id] = roots
    return trees


def trace_extent(roots: Sequence[SpanNode]) -> Tuple[float, float]:
    """(first start, wall duration) over every span in the trace."""
    all_nodes = [n for root in roots for n in root.walk()]
    start = min(n.ts for n in all_nodes)
    end = max(n.end for n in all_nodes)
    return start, end - start


def critical_path(roots: Sequence[SpanNode]) -> List[SpanNode]:
    """The chain of latest-ending descendants from the latest-ending root.

    Our trees are asynchronous -- a request span ends when the response
    is sent, while fold/WAL children complete later under the ingest
    worker -- so the request's wall time is governed by whichever
    branch finishes last.  Following the latest *end* at every level
    yields that governing chain; per-hop ``self_time`` says how much
    each hop contributed itself.
    """
    if not roots:
        return []
    path: List[SpanNode] = []
    node = max(roots, key=lambda n: n.end)
    while True:
        path.append(node)
        if not node.children:
            return path
        node = max(node.children, key=lambda n: n.end)


def stage_self_times(trees: Dict[str, List[SpanNode]]) -> Dict[str, float]:
    """Total self time per stage name across every captured trace."""
    totals: Dict[str, float] = {}
    for roots in trees.values():
        for root in roots:
            for node in root.walk():
                totals[node.name] = totals.get(node.name, 0.0) + node.self_time()
    return totals


def _pin_reason(roots: Sequence[SpanNode]) -> Optional[str]:
    for root in roots:
        for node in root.walk():
            reason = node.span.get("pinned")
            if reason:
                return reason
    return None


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def trace_report_data(
    spans: Sequence[dict],
    top: int = 5,
    trace_filter: Optional[str] = None,
) -> Dict[str, object]:
    """JSON-safe analysis of exported trace spans (slowest first)."""
    trees = build_trees(spans)
    if trace_filter:
        trees = {
            tid: roots for tid, roots in trees.items()
            if tid.startswith(trace_filter)
        }
    ranked = []
    for trace_id, roots in trees.items():
        start, extent = trace_extent(roots)
        ranked.append((extent, start, trace_id, roots))
    ranked.sort(key=lambda item: (-item[0], item[1]))

    traces_out = []
    for extent, start, trace_id, roots in ranked[: max(0, top)]:
        path = critical_path(roots)
        traces_out.append({
            "trace_id": trace_id,
            "extent_seconds": extent,
            "n_spans": sum(1 for r in roots for _ in r.walk()),
            "pinned": _pin_reason(roots),
            "critical_path": [
                {
                    "name": node.name,
                    "duration_seconds": node.duration,
                    "self_seconds": node.self_time(),
                }
                for node in path
            ],
            "spans": [
                {
                    "name": node.name,
                    "offset_seconds": node.ts - start,
                    "duration_seconds": node.duration,
                    "depth": depth,
                }
                for root in roots
                for node, depth in _walk_depth(root)
            ],
        })
    self_times = stage_self_times(trees)
    return {
        "n_traces": len(trees),
        "n_spans": sum(1 for roots in trees.values()
                       for r in roots for _ in r.walk()),
        "traces": traces_out,
        "stage_self_seconds": dict(
            sorted(self_times.items(), key=lambda kv: -kv[1])
        ),
    }


def _walk_depth(root: SpanNode, depth: int = 0):
    yield root, depth
    for child in root.children:
        for pair in _walk_depth(child, depth + 1):
            yield pair


def render_trace_report(data: Dict[str, object]) -> str:
    """Human-readable report from :func:`trace_report_data` output."""
    lines: List[str] = []
    lines.append(
        f"{data['n_traces']} trace(s), {data['n_spans']} span(s) captured"
    )
    if not data["traces"]:
        lines.append("no trace spans found -- run with tracing sampled "
                     "(e.g. `repro serve --trace-sample 1`)")
        return "\n".join(lines) + "\n"
    for entry in data["traces"]:
        lines.append("")
        header = (
            f"trace {entry['trace_id']}  "
            f"extent {_ms(entry['extent_seconds'])}  "
            f"spans {entry['n_spans']}"
        )
        if entry["pinned"]:
            header += f"  [pinned: {entry['pinned']}]"
        lines.append(header)
        for span in entry["spans"]:
            indent = "  " * (span["depth"] + 1)
            lines.append(
                f"{indent}{span['name']:<28} "
                f"+{_ms(span['offset_seconds']):>10}  "
                f"{_ms(span['duration_seconds']):>10}"
            )
        hops = " -> ".join(
            f"{hop['name']} (self {_ms(hop['self_seconds'])})"
            for hop in entry["critical_path"]
        )
        lines.append(f"  critical path: {hops}")
    lines.append("")
    lines.append("per-stage self time (all captured traces):")
    total = sum(data["stage_self_seconds"].values()) or 1.0
    for name, seconds in data["stage_self_seconds"].items():
        share = 100.0 * seconds / total
        lines.append(f"  {name:<28} {_ms(seconds):>12}  {share:5.1f}%")
    return "\n".join(lines) + "\n"
