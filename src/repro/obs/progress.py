"""Periodic one-line progress reports for long-running stream jobs.

The engine calls :meth:`ProgressReporter.maybe_report` once per fold --
a monotonic-clock comparison and an early return in the common case --
and every ``interval_seconds`` the reporter emits one line built from
the live :class:`~repro.stream.metrics.StreamMetrics`::

    progress: 120,000 records | 14,900/s (interval 15,200/s) | queue 3 | 2 anomalies | 1 worker restarts

A callable sink (default: print to stderr) keeps the reporter testable
and lets the CLI redirect it.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional

__all__ = ["ProgressReporter"]


def _stderr_sink(line: str) -> None:
    print(line, file=sys.stderr, flush=True)


class ProgressReporter:
    """Rate-limited progress lines driven by the engine's fold loop."""

    def __init__(
        self,
        interval_seconds: float = 5.0,
        sink: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("progress interval must be positive")
        self.interval_seconds = interval_seconds
        self.sink = sink or _stderr_sink
        self._clock = clock
        self._last_emit = clock()
        self._last_records = 0
        self.lines_emitted = 0

    def maybe_report(self, metrics) -> bool:
        """Emit a line if the interval elapsed; returns True if emitted."""
        now = self._clock()
        elapsed = now - self._last_emit
        if elapsed < self.interval_seconds:
            return False
        records = metrics.records_out
        interval_rate = (records - self._last_records) / elapsed if elapsed > 0 else 0.0
        parts = [
            f"progress: {records:,} records",
            f"{metrics.samples_per_second():,.0f}/s (interval {interval_rate:,.0f}/s)",
            f"queue {metrics.queue_depth}",
            f"{metrics.anomaly_events} anomalies",
        ]
        if metrics.worker_restarts:
            parts.append(f"{metrics.worker_restarts} worker restarts")
        if metrics.source_retries:
            parts.append(f"{metrics.source_retries} source retries")
        self.sink(" | ".join(parts))
        self._last_emit = now
        self._last_records = records
        self.lines_emitted += 1
        return True
