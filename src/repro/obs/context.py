"""W3C-traceparent-style trace context for request-scoped tracing.

A :class:`TraceContext` names one request end to end: a 128-bit trace
id shared by every span the request produces, the span id of the
*current* parent (children attach under it), and a sampled flag.  The
wire form is the W3C ``traceparent`` header, version ``00``::

    traceparent: 00-<32 hex trace id>-<16 hex span id>-<01|00>

:class:`ServeClient` mints a context for every Nth POST (head
sampling), the HTTP layer parses and echoes it, and the serving tier
re-parents it onto a server-side request span before attaching it to
each :class:`~repro.stream.source.StreamItem` -- so the engine, WAL,
and sealer never see HTTP, only an opaque context riding the item.

Ids come from ``os.urandom`` (no seeding concerns, no coordination);
the all-zero trace/span ids are invalid per the W3C spec and rejected
on parse.  Sampling decisions are made once, at the head of the
request, by :class:`HeadSampler` -- a deterministic 1-in-N counter, not
a coin flip, so a fixed-rate workload yields a fixed-rate trace stream
and the overhead benchmark measures a reproducible cost.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional

__all__ = [
    "TRACEPARENT_HEADER",
    "REQUEST_ID_HEADER",
    "TraceContext",
    "HeadSampler",
    "mint_trace_id",
    "mint_span_id",
    "mint_request_id",
    "parse_traceparent",
]

#: Canonical (lowercase) header names; HTTP headers are case-insensitive
#: and the serve layer normalises to lowercase on parse.
TRACEPARENT_HEADER = "traceparent"
REQUEST_ID_HEADER = "x-request-id"

_HEX = set("0123456789abcdef")


def mint_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def mint_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex chars."""
    return os.urandom(8).hex()


def mint_request_id() -> str:
    """A fresh request id (64 bits of entropy, 16 hex chars).

    Request ids are correlation handles for humans and logs; they are
    deliberately shorter than trace ids and carry no sampling meaning.
    """
    return os.urandom(8).hex()


def _is_hex(value: str) -> bool:
    return all(c in _HEX for c in value)


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """One request's identity: trace id, parent span id, sampled flag.

    ``span_id`` is the span new children should parent onto -- the
    client's root span on the wire, the server's request span once the
    serving tier has re-parented the context for the ingest path.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_traceparent(self) -> str:
        """Render the W3C ``traceparent`` header value."""
        flags = "01" if self.sampled else "00"
        return f"00-{self.trace_id}-{self.span_id}-{flags}"

    def with_parent(self, span_id: str) -> "TraceContext":
        """The same trace, re-parented onto ``span_id``."""
        return dataclasses.replace(self, span_id=span_id)


def parse_traceparent(value: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` header value; ``None`` if malformed.

    Per the W3C spec we accept version ``00`` exactly, require
    lowercase hex, and reject all-zero trace/span ids.  A malformed
    header is treated as absent (the request proceeds untraced) rather
    than rejected -- tracing must never break ingest.
    """
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if version != "00":
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    if len(span_id) != 16 or not _is_hex(span_id):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    sampled = bool(int(flags, 16) & 0x01)
    return TraceContext(trace_id=trace_id, span_id=span_id, sampled=sampled)


class HeadSampler:
    """Deterministic 1-in-N head sampler.

    ``sample_n == 0`` disables sampling entirely; ``sample_n == 1``
    samples everything.  The first decision is always True (so a short
    smoke run still yields a trace), then every Nth after that.  Not
    thread-safe by design: each producer (client, event loop, engine
    funnel) owns its own sampler.
    """

    __slots__ = ("sample_n", "_n")

    def __init__(self, sample_n: int) -> None:
        if sample_n < 0:
            raise ValueError("trace sample_n must be >= 0")
        self.sample_n = sample_n
        self._n = 0

    def decide(self) -> bool:
        if not self.sample_n:
            return False
        n = self._n
        self._n = n + 1
        return n % self.sample_n == 0
