"""repro.obs -- zero-dependency observability for the pipeline.

Counters, gauges, and fixed-bucket latency histograms in a registry
(:mod:`repro.obs.registry`); ring-buffered trace spans with cheap
reusable timers (:mod:`repro.obs.trace`, :mod:`repro.obs.layer`);
Prometheus text exposition; a periodic progress reporter
(:mod:`repro.obs.progress`); and the ``repro obs`` stage-latency report
(:mod:`repro.obs.report`).

The one object call sites see is :class:`Observability`::

    from repro.obs import Observability

    obs = Observability()
    t_classify = obs.timer("classify")
    with t_classify:
        ...
    obs.counter("classify.cache_hits").inc()
    obs.event("engine.resume", cursor=1234)
    obs.export("obs_out")          # metrics.json / metrics.prom / spans.jsonl

Every instrumented constructor accepts ``obs=NULL_OBS`` to switch the
whole layer off (same surface, no work) -- the overhead benchmark's
baseline arm and the default for library users who never ask for it.

This package imports nothing from :mod:`repro.stream` or
:mod:`repro.store`; the dependency points the other way.
"""

from repro.obs.context import (
    REQUEST_ID_HEADER,
    TRACEPARENT_HEADER,
    HeadSampler,
    TraceContext,
    mint_request_id,
    mint_span_id,
    mint_trace_id,
    parse_traceparent,
)
from repro.obs.layer import NULL_OBS, NullObservability, Observability, SpanTimer
from repro.obs.progress import ProgressReporter
from repro.obs.spantree import (
    NULL_RECORDER,
    NullSpanRecorder,
    SpanNode,
    SpanRecorder,
    build_trees,
    critical_path,
    render_trace_report,
    stage_self_times,
    trace_report_data,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_from_buckets,
    prometheus_name,
)
from repro.obs.report import ObsExport, load_export, render_obs_report, stage_rows
from repro.obs.trace import Tracer

__all__ = [
    "NULL_OBS",
    "NullObservability",
    "Observability",
    "SpanTimer",
    "ProgressReporter",
    "REQUEST_ID_HEADER",
    "TRACEPARENT_HEADER",
    "HeadSampler",
    "TraceContext",
    "mint_request_id",
    "mint_span_id",
    "mint_trace_id",
    "parse_traceparent",
    "NULL_RECORDER",
    "NullSpanRecorder",
    "SpanNode",
    "SpanRecorder",
    "build_trees",
    "critical_path",
    "render_trace_report",
    "stage_self_times",
    "trace_report_data",
    "DEFAULT_LATENCY_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "percentile_from_buckets",
    "prometheus_name",
    "ObsExport",
    "load_export",
    "render_obs_report",
    "stage_rows",
    "Tracer",
]
