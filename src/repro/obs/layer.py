"""The `Observability` facade: one object the pipeline threads around.

Call sites ask once for a named timer/counter/gauge at wiring time and
then use the returned object on the hot path::

    t_classify = obs.timer("classify")
    ...
    with t_classify:
        result = classifier.classify(sample)

A :class:`SpanTimer` is a reusable bound context manager: entering
reads ``perf_counter``, exiting reads it again, feeds the duration to
the stage's histogram, and appends a tuple to the trace ring.  It is
deliberately *not* reentrant (one in-flight timing per timer object),
which is fine for the single-threaded stage loops it instruments and
saves an allocation per span.  For stages that need to pick the
destination after the fact (classify cache hit vs. miss), call
``timer.record(duration, start)`` with a manually measured duration.

:data:`NULL_OBS` is a shared no-op implementation with the same
surface; passing it disables instrumentation entirely (used by the
overhead benchmark's baseline arm and anywhere observability is
unwanted).
"""

from __future__ import annotations

import json
import os
import time
from bisect import bisect_left
from time import perf_counter
from typing import Dict, Optional

from repro._util import atomic_write_json
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.spantree import NULL_RECORDER, SpanRecorder
from repro.obs.trace import Tracer

__all__ = ["Observability", "NullObservability", "NULL_OBS", "SpanTimer"]

#: Schema version of the ``metrics.json`` export payload.
EXPORT_VERSION = 1

#: Per-timer ring sampling stride: span 0, RING_SAMPLE, 2*RING_SAMPLE...
#: of each timer land in the trace ring (histograms count them all).
#: Must be a power of two; the hot paths hard-code ``RING_SAMPLE - 1``
#: as a literal mask.
RING_SAMPLE = 8


class SpanTimer:
    """Reusable timing context manager bound to one histogram + tracer.

    The exit path is the per-record cost of observability, so it is
    allocation-free: it bypasses ``Histogram.observe`` and updates the
    (never-reassigned) ``counts`` list through cached references, and
    its spans are tallied from the histogram rather than a per-span
    tracer increment.  Ring writes are *sampled*: every
    :data:`RING_SAMPLE` -th span per timer lands in the tracer as
    three adjacent double stores (pre-interned name index + the two
    timings -- one cache line, no allocation); the rest pay only a
    counter mask check.  Histograms see every span, so no aggregate is
    approximated -- sampling just stretches the flight-recorder window
    the ring covers.

    For stages whose per-occurrence work is so small that even two
    clock reads are a visible tax (a warm source read, a memoised
    classify), the *caller* can additionally time only every Nth
    occurrence and declare ``weight=N``: each recorded span then
    counts for N in the histogram (``counts += N``, ``sum += N *
    duration``), the standard sampling-profiler estimator.  Exact
    occurrence counts belong in plain counters, which cost one integer
    add and are never sampled.  The overhead benchmark holds the whole
    layer to a <= 5% throughput tax.
    """

    __slots__ = ("name", "weight", "_hist", "_bounds", "_counts", "_tracer",
                 "_buf", "_limit", "_name_idx", "_n", "_start")

    def __init__(
        self, name: str, hist: Histogram, tracer: Tracer, weight: int = 1
    ) -> None:
        if weight < 1:
            raise ValueError("span timer weight must be >= 1")
        self.name = name
        self.weight = weight
        self._hist = hist
        self._bounds = hist.bounds
        self._counts = hist.counts
        self._tracer = tracer
        self._buf = tracer._buf
        self._limit = len(tracer._buf)
        self._name_idx = tracer._register_name(name)
        self._n = 0
        self._start = 0.0

    def __enter__(self) -> "SpanTimer":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        start = self._start
        duration = perf_counter() - start
        w = self.weight
        self._counts[bisect_left(self._bounds, duration)] += w
        self._hist.sum += duration * w
        n = self._n
        self._n = n + 1
        if not n & 7:  # RING_SAMPLE - 1; literal so the check stays cheap
            tracer = self._tracer
            buf = self._buf
            i = tracer._pos
            buf[i] = self._name_idx
            buf[i + 1] = start
            buf[i + 2] = duration
            i += 3
            if i == self._limit:
                tracer._pos = 0
                tracer._wrapped = True
            else:
                tracer._pos = i
        return False

    def record(self, duration: float, start: Optional[float] = None) -> None:
        """Feed an externally measured duration into this timer's stage."""
        w = self.weight
        self._counts[bisect_left(self._bounds, duration)] += w
        self._hist.sum += duration * w
        n = self._n
        self._n = n + 1
        if not n & 7:
            if start is None:
                start = perf_counter() - duration
            tracer = self._tracer
            buf = self._buf
            i = tracer._pos
            buf[i] = self._name_idx
            buf[i + 1] = start
            buf[i + 2] = duration
            i += 3
            if i == self._limit:
                tracer._pos = 0
                tracer._wrapped = True
            else:
                tracer._pos = i


class Observability:
    """Registry + tracer + export, behind one handle."""

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        span_capacity: int = 4096,
        trace_capture: int = 64,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or Tracer(capacity=span_capacity)
        # Request-scoped span trees for head-sampled traces; bounded
        # top-K capture (see repro.obs.spantree).  Idle unless someone
        # activates a TraceContext, so it costs nothing by default.
        self.trace_recorder = SpanRecorder(
            registry=self.registry, max_traces=trace_capture
        )
        self._timers: Dict[str, SpanTimer] = {}

    # -- wiring-time accessors -----------------------------------------
    def counter(self, name: str, help: str = ""):
        return self.registry.counter(name, help)

    def gauge(self, name: str, help: str = ""):
        return self.registry.gauge(name, help)

    def histogram(self, name: str, bounds=None, help: str = ""):
        return self.registry.histogram(name, bounds, help)

    def timer(self, name: str, help: str = "", sample: int = 1) -> SpanTimer:
        """A cached reusable span timer for stage ``name``.

        The same object is returned for repeated calls, so hot loops can
        also fetch it lazily without allocating.  Not reentrant.

        ``sample=N`` declares that the caller times only every Nth
        occurrence of the stage; recorded spans then carry weight N in
        the histogram so counts and sums still estimate the full
        population.  The stride itself lives at the call site (that is
        where the clock reads are skipped); first creation wins if the
        same name is requested again.
        """
        timer = self._timers.get(name)
        if timer is None:
            timer = SpanTimer(
                name, self.registry.histogram(name, help=help), self.tracer,
                weight=sample,
            )
            self._timers[name] = timer
        return timer

    # ``span`` is the documented name for with-statement use on hot
    # paths; it shares the timer cache.
    span = timer

    def event(self, name: str, **attrs: object) -> None:
        self.tracer.event(name, **attrs)

    # -- reporting ------------------------------------------------------
    def _span_stats(self) -> Dict[str, int]:
        """Tracer stats plus the spans timers tallied via histograms."""
        stats = self.tracer.stats()
        stats["total_spans"] += sum(
            timer._hist.count for timer in self._timers.values()
        )
        return stats

    def summary(self) -> Dict[str, object]:
        """Compact JSON-safe summary (lands in StreamMetrics snapshots)."""
        summary = self.registry.summary()
        summary["spans"] = self._span_stats()
        trace_stats = self.trace_recorder.stats()
        if trace_stats["spans"]:
            summary["trace"] = trace_stats
        return summary

    def render_prometheus(self) -> str:
        return self.registry.render_prometheus()

    def export(
        self, directory: str, extra: Optional[Dict[str, object]] = None
    ) -> Dict[str, str]:
        """Write ``metrics.json``, ``metrics.prom`` and ``spans.jsonl``.

        Returns a dict of the paths written.  ``extra`` (e.g. the
        engine's ``StreamMetrics`` snapshot) is embedded in the JSON
        payload under ``"extra"``.
        """
        os.makedirs(directory, exist_ok=True)
        payload: Dict[str, object] = {
            "version": EXPORT_VERSION,
            "generated_ts": time.time(),
            "spans": self._span_stats(),
            "trace": self.trace_recorder.stats(),
        }
        payload.update(self.registry.to_dict())
        if extra:
            payload["extra"] = extra
        metrics_json = os.path.join(directory, "metrics.json")
        atomic_write_json(metrics_json, payload, indent=2)
        metrics_prom = os.path.join(directory, "metrics.prom")
        with open(metrics_prom, "w", encoding="utf-8") as handle:
            handle.write(self.registry.render_prometheus())
        spans_jsonl = os.path.join(directory, "spans.jsonl")
        self.tracer.export_jsonl(spans_jsonl)
        trace_spans = self.trace_recorder.spans()
        if trace_spans:
            with open(spans_jsonl, "a", encoding="utf-8") as handle:
                for span in trace_spans:
                    handle.write(json.dumps(span, sort_keys=True) + "\n")
        return {
            "metrics.json": metrics_json,
            "metrics.prom": metrics_prom,
            "spans.jsonl": spans_jsonl,
        }


class _NullMetric:
    """Absorbs counter/gauge traffic; always reads as zero."""

    __slots__ = ()
    value = 0

    def inc(self, n=1):
        pass

    def dec(self, n=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


class _NullTimer:
    """No-op stand-in for :class:`SpanTimer`."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def record(self, duration, start=None):
        pass


_NULL_METRIC = _NullMetric()
_NULL_TIMER = _NullTimer()


class NullObservability:
    """Same surface as :class:`Observability`, zero work, zero state."""

    enabled = False
    trace_recorder = NULL_RECORDER

    def counter(self, name, help=""):
        return _NULL_METRIC

    def gauge(self, name, help=""):
        return _NULL_METRIC

    def histogram(self, name, bounds=None, help=""):
        return _NULL_METRIC

    def timer(self, name, help="", sample=1):
        return _NULL_TIMER

    span = timer

    def event(self, name, **attrs):
        pass

    def summary(self):
        return {}

    def render_prometheus(self):
        return ""

    def export(self, directory, extra=None):
        return {}


#: Shared no-op instance; safe to pass anywhere an Observability goes.
NULL_OBS = NullObservability()
