"""Render a stage-latency / bottleneck report from an ``--obs`` export.

``repro stream --obs DIR`` leaves three files behind (``metrics.json``,
``metrics.prom``, ``spans.jsonl``); ``repro obs DIR`` reads them back
and answers the operator question "where did the time go": per-stage
call counts, p50/p99 latencies reconstructed from the exported
histogram buckets, total busy seconds, and the share of measured time
each stage accounts for.  The stage with the largest total busy time is
flagged as the bottleneck.

Stages nest (``rollup.fold`` contains ``wal.append``; a pool batch
contains its workers' ``classify.batch`` time), so shares are of
*measured span time*, not wall time, and can legitimately sum past
100%.  The report is about ranking, not accounting identities.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional

from repro.core.report import render_table
from repro.errors import ReproError
from repro.obs.registry import percentile_from_buckets

__all__ = ["ObsExport", "load_export", "stage_rows", "render_obs_report"]


@dataclasses.dataclass
class ObsExport:
    """Parsed contents of an ``--obs`` export directory."""

    directory: str
    metrics: Dict[str, object]
    spans: List[Dict[str, object]]

    @property
    def histograms(self) -> Dict[str, dict]:
        return self.metrics.get("histograms", {})

    @property
    def counters(self) -> Dict[str, int]:
        return self.metrics.get("counters", {})

    @property
    def gauges(self) -> Dict[str, float]:
        return self.metrics.get("gauges", {})

    def events(self, name: Optional[str] = None) -> List[Dict[str, object]]:
        return [
            span
            for span in self.spans
            if span.get("kind") == "event"
            and (name is None or span.get("name") == name)
        ]


def load_export(directory: str) -> ObsExport:
    """Read an export directory written by ``Observability.export``."""
    metrics_path = os.path.join(directory, "metrics.json")
    if not os.path.isfile(metrics_path):
        raise ReproError(
            f"no metrics.json under {directory!r}; "
            "expected a directory written by `repro stream --obs DIR`"
        )
    with open(metrics_path, "r", encoding="utf-8") as handle:
        metrics = json.load(handle)
    spans: List[Dict[str, object]] = []
    spans_path = os.path.join(directory, "spans.jsonl")
    if os.path.isfile(spans_path):
        with open(spans_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
    return ObsExport(directory=directory, metrics=metrics, spans=spans)


def stage_rows(export: ObsExport) -> List[Dict[str, object]]:
    """Per-stage latency summaries, sorted by total busy time (desc)."""
    rows: List[Dict[str, object]] = []
    total_measured = sum(
        hist.get("sum", 0.0) for hist in export.histograms.values()
    )
    for name, hist in export.histograms.items():
        count = hist.get("count", 0)
        if not count:
            continue
        bounds = hist.get("bounds", [])
        counts = hist.get("counts", [])
        busy = hist.get("sum", 0.0)
        rows.append(
            {
                "stage": name,
                "count": count,
                "p50_us": percentile_from_buckets(bounds, counts, 50.0) * 1e6,
                "p99_us": percentile_from_buckets(bounds, counts, 99.0) * 1e6,
                "mean_us": busy / count * 1e6,
                "total_s": busy,
                "share_pct": 100.0 * busy / total_measured if total_measured else 0.0,
            }
        )
    rows.sort(key=lambda row: (-row["total_s"], row["stage"]))
    return rows


def render_obs_report(export: ObsExport, top_counters: int = 12) -> str:
    """The human-readable ``repro obs`` output."""
    blocks: List[str] = []
    rows = stage_rows(export)
    if rows:
        table = [
            [
                row["stage"],
                row["count"],
                f"{row['p50_us']:.1f}",
                f"{row['p99_us']:.1f}",
                f"{row['mean_us']:.1f}",
                f"{row['total_s']:.3f}",
                f"{row['share_pct']:.1f}%",
            ]
            for row in rows
        ]
        blocks.append(
            render_table(
                ["stage", "count", "p50_us", "p99_us", "mean_us", "total_s", "share"],
                table,
                title="Stage latencies",
            )
        )
        top = rows[0]
        blocks.append(
            f"bottleneck: {top['stage']} "
            f"({top['total_s']:.3f}s busy, {top['share_pct']:.1f}% of measured span time, "
            f"p99 {top['p99_us']:.1f}us over {top['count']} calls)"
        )
    else:
        blocks.append("no stage histograms recorded")

    counters = [
        (name, value) for name, value in sorted(export.counters.items()) if value
    ]
    if counters:
        counters.sort(key=lambda kv: (-kv[1], kv[0]))
        blocks.append(
            render_table(
                ["counter", "value"],
                [[name, value] for name, value in counters[:top_counters]],
                title="Counters",
            )
        )

    events = export.events()
    if events:
        by_name: Dict[str, int] = {}
        for event in events:
            by_name[event["name"]] = by_name.get(event["name"], 0) + 1
        blocks.append(
            render_table(
                ["event", "count"],
                [[name, n] for name, n in sorted(by_name.items())],
                title="Lifecycle events (ring window)",
            )
        )

    span_stats = export.metrics.get("spans", {})
    if span_stats:
        blocks.append(
            "spans: {recorded} in ring (capacity {capacity}), "
            "{total_spans} recorded in total, {total_events} events".format(
                **{
                    "recorded": span_stats.get("recorded", 0),
                    "capacity": span_stats.get("capacity", 0),
                    "total_spans": span_stats.get("total_spans", 0),
                    "total_events": span_stats.get("total_events", 0),
                }
            )
        )
    return "\n\n".join(blocks)
