"""The connection generator.

Produces :class:`ConnectionSpec` draws -- who connects when, from where,
to which domain, with which client personality -- and drives the world's
per-connection simulator.  Arrivals follow each country's local diurnal
activity curve; demand for blocked content is additionally modulated by
the profile's night boost and weekend factor (the structure behind the
paper's Figure 6 diurnal and weekend observations).

Note on sampling: the real pipeline samples 1 in 10,000 connections.
Simulating 10,000x discarded connections would be waste, so the
generator *directly generates the sampled connections* (importance
sampling); :class:`~repro.cdn.sampler.ConnectionSampler` implements and
tests the 1-in-N mechanism itself.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._util import derive_rng, stable_hash
from repro.cdn.collector import ConnectionSample
from repro.errors import ConfigError
from repro.workloads.profiles import CountryProfile
from repro.workloads.world import World

__all__ = ["ConnectionSpec", "TrafficGenerator", "local_hour", "is_weekend"]

#: Seconds per day / hour, for readability.
_DAY = 86400.0
_HOUR = 3600.0

#: Evening activity peak (local time, hours).
_ACTIVITY_PEAK_HOUR = 20.0

BlockedBoostFn = Callable[[str, float], float]


def local_hour(ts: float, tz_offset: float) -> float:
    """Local hour-of-day [0, 24) for a UTC timestamp and UTC offset."""
    return ((ts / _HOUR) + tz_offset) % 24.0


def is_weekend(ts: float, tz_offset: float) -> bool:
    """True on Saturday/Sunday local time (epoch day 0 = Thursday)."""
    day_index = int(math.floor((ts + tz_offset * _HOUR) / _DAY))
    # 1970-01-01 was a Thursday; Saturday is offset 2, Sunday 3 (mod 7).
    return (day_index % 7) in (2, 3)


@dataclasses.dataclass(frozen=True)
class ConnectionSpec:
    """One connection to simulate."""

    conn_id: int
    ts: float
    country: str
    asn: int
    client_ip: str
    client_port: int
    ip_version: int
    protocol: str  # "tls" | "http"
    domain: str  # registered (apex) domain
    host: str  # hostname actually requested (may be a subdomain)
    client_kind: str = "browser"
    keyword: bool = False
    split_segments: int = 1
    behind_enterprise: bool = False
    requested_blocked: bool = False  # ground truth: demanded blocked content


class TrafficGenerator:
    """Draws connection specs and simulates them against a world."""

    def __init__(
        self,
        world: World,
        seed: int = 0,
        diurnal_amplitude: float = 0.5,
        blocked_boost_fn: Optional[BlockedBoostFn] = None,
    ) -> None:
        if not 0 <= diurnal_amplitude < 1:
            raise ConfigError("diurnal_amplitude must be in [0, 1)")
        self.world = world
        self.seed = seed
        self.diurnal_amplitude = diurnal_amplitude
        self.blocked_boost_fn = blocked_boost_fn
        self._profiles: List[CountryProfile] = world.profiles
        self._base_weights = [p.weight for p in self._profiles]
        self._blocked_pools: Dict[str, Tuple[List[str], List[float]]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    def _activity(self, profile: CountryProfile, ts: float) -> float:
        """Relative connection volume of a country at UTC time ``ts``."""
        hour = local_hour(ts, profile.tz_offset)
        phase = 2.0 * math.pi * (hour - _ACTIVITY_PEAK_HOUR) / 24.0
        return 1.0 + self.diurnal_amplitude * math.cos(phase)

    def _blocked_probability(self, profile: CountryProfile, ts: float) -> float:
        """Effective probability this connection requests blocked content."""
        p = profile.p_blocked
        if p <= 0:
            return 0.0
        hour = local_hour(ts, profile.tz_offset)
        if hour < 8.0:
            p *= profile.night_boost
        if is_weekend(ts, profile.tz_offset):
            p *= profile.weekend_factor
        if self.blocked_boost_fn is not None:
            p *= self.blocked_boost_fn(profile.code, ts)
        return min(1.0, p)

    def _pick_country(self, rng: random.Random, ts: float) -> CountryProfile:
        weights = [w * self._activity(p, ts) for p, w in zip(self._profiles, self._base_weights)]
        return rng.choices(self._profiles, weights=weights, k=1)[0]

    def _pick_client_kind(self, rng: random.Random, profile: CountryProfile) -> str:
        roll = rng.random()
        if roll < profile.scanner_rate:
            return "zmap"
        roll -= profile.scanner_rate
        if roll < profile.silent_syn_rate:
            return "silent_syn"
        roll -= profile.silent_syn_rate
        if roll < profile.happy_rst_rate:
            return "happy_rst"
        roll -= profile.happy_rst_rate
        if roll < profile.impatient_rate:
            return "impatient"
        roll -= profile.impatient_rate
        if roll < profile.abortive_close_rate:
            return "abortive_close"
        roll -= profile.abortive_close_rate
        if roll < profile.never_close_rate:
            return "never_close"
        return "browser"

    def _blocked_pool(self, code: str) -> Tuple[List[str], List[float]]:
        """Blocked domains with popularity- and category-weighted demand.

        Demand for blocked content concentrates on the popular blocked
        domains (Zipf over rank), tilted toward the categories the
        country's users actually seek (the profile lists its blocked
        categories in descending demand order).  The concentration is
        what lets specific domains clear the paper's per-domain match
        thresholds; the category tilt is what makes Table 2's "most
        affected categories" land where the paper observes them.
        """
        pool = self._blocked_pools.get(code)
        if pool is None:
            state = self.world.country(code)
            profile = state.profile
            category_bias = {
                category: 1.0 / (index + 1)
                for index, (category, _cov) in enumerate(profile.blocked_categories)
            }
            ranked = sorted(
                (self.world.universe.get(name) for name in state.blocklist),
                key=lambda d: d.rank,
            )
            names = []
            weights = []
            for index, domain in enumerate(ranked):
                tilt = max(
                    (category_bias.get(cat, 0.08) for cat in domain.categories),
                    default=0.08,
                )
                names.append(domain.name)
                weights.append(tilt / (index + 1) ** 0.8)
            pool = (names, weights)
            self._blocked_pools[code] = pool
        return pool

    #: Chance a blocked-content request goes to one of the client's
    #: habitual destinations rather than a fresh popularity draw.  Repeat
    #: visits are what give the (client IP, domain) pairs behind the
    #: paper's Appendix B overlap analysis (Figure 10).
    REVISIT_RATE = 0.7

    def _favorite_blocked(self, rng: random.Random, code: str, client_ip: str) -> str:
        names, weights = self._blocked_pool(code)
        n_favorites = min(2, len(names))
        index = stable_hash("favorite", code, client_ip, rng.randrange(n_favorites))
        # Favorites skew popular: pick within the top slice of the pool.
        top_slice = max(n_favorites, len(names) // 4)
        return names[index % top_slice]

    def _pick_domain(
        self,
        rng: random.Random,
        profile: CountryProfile,
        want_blocked: bool,
        client_ip: str = "",
    ) -> str:
        state = self.world.country(profile.code)
        if want_blocked and state.blocklist:
            if client_ip and rng.random() < self.REVISIT_RATE:
                return self._favorite_blocked(rng, profile.code, client_ip)
            names, weights = self._blocked_pool(profile.code)
            return rng.choices(names, weights=weights, k=1)[0]
        for _ in range(4):
            domain = self.world.universe.sample(rng, country=profile.code, local_mix=profile.local_mix)
            if domain.name not in state.blocklist:
                return domain.name
        return domain.name  # give up: organically blocked demand

    # ------------------------------------------------------------------
    def spec(self, ts: float) -> ConnectionSpec:
        """Draw one connection spec at UTC time ``ts``."""
        conn_id = self._next_id
        self._next_id += 1
        rng = derive_rng(self.seed, f"spec:{conn_id}")

        profile = self._pick_country(rng, ts)
        state = self.world.country(profile.code)
        asn = rng.choices(state.asns, weights=state.asn_weights, k=1)[0]
        version = 6 if rng.random() < profile.ipv6_share else 4
        pool = state.clients_v6[asn] if version == 6 else state.clients_v4[asn]
        client_ip = pool[rng.randrange(len(pool))]
        client_port = rng.randrange(1024, 65536)

        kind = self._pick_client_kind(rng, profile)
        protocol = "tls" if rng.random() < profile.tls_share else "http"
        want_blocked = rng.random() < self._blocked_probability(profile, ts)
        if want_blocked and protocol == "http" and rng.random() < profile.blocked_tls_boost:
            # Users reaching for blocked content prefer HTTPS (Fig 7b).
            protocol = "tls"
        domain = self._pick_domain(rng, profile, want_blocked, client_ip)
        host = self.world.universe.request_host(rng, domain)

        keyword = protocol == "http" and rng.random() < profile.keyword_rate
        split = 2 if (keyword or rng.random() < profile.split_request_rate) else 1
        behind_enterprise = rng.random() < profile.enterprise_flow_share

        return ConnectionSpec(
            conn_id=conn_id,
            ts=ts,
            country=profile.code,
            asn=asn,
            client_ip=client_ip,
            client_port=client_port,
            ip_version=version,
            protocol=protocol,
            domain=domain,
            host=host,
            client_kind=kind,
            keyword=keyword,
            split_segments=split,
            behind_enterprise=behind_enterprise,
            requested_blocked=want_blocked,
        )

    def specs(
        self,
        n: int,
        start_ts: float,
        duration: float,
    ) -> List[ConnectionSpec]:
        """Draw ``n`` specs across [start_ts, start_ts + duration)."""
        if n < 0:
            raise ConfigError("n must be non-negative")
        if duration <= 0:
            raise ConfigError("duration must be positive")
        rng = derive_rng(self.seed, "arrivals")
        times = sorted(start_ts + rng.random() * duration for _ in range(n))
        return [self.spec(ts) for ts in times]

    # ------------------------------------------------------------------
    def run(
        self,
        n: int,
        start_ts: float = 0.0,
        duration: float = 14 * _DAY,
    ) -> Tuple[List[ConnectionSample], Dict[int, float]]:
        """Generate, simulate and capture ``n`` connections.

        Returns (samples, conn_id → start-time map).  Connections whose
        packets never reached the server are skipped, as in reality.
        """
        samples: List[ConnectionSample] = []
        timestamps: Dict[int, float] = {}
        for spec in self.specs(n, start_ts, duration):
            sample = self.world.simulate_connection(spec)
            if sample is not None:
                samples.append(sample)
                timestamps[sample.conn_id] = spec.ts
        return samples, timestamps
