"""The synthetic domain universe.

Generates a categorized population of domains with Zipf-distributed
global popularity, per-country popularity tilts, and a deterministic
domain → edge-IP assignment (clients "resolve" a domain to a stable CDN
anycast address, which lets IP-based censors block specific services and
incur collateral damage on co-hosted names -- as in the real world).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro._util import derive_rng, stable_hash, zipf_weights
from repro.cdn.categorize import CategoryDB, STANDARD_CATEGORIES
from repro.cdn.geo import GeoDatabase
from repro.errors import WorldError

__all__ = ["Domain", "DomainUniverse"]

#: Name fragments for plausible-looking synthetic domains.
_WORDS = (
    "alpha", "breeze", "cobalt", "delta", "ember", "flux", "gale", "harbor",
    "iris", "jade", "krypton", "lumen", "mist", "nectar", "onyx", "pylon",
    "quartz", "ridge", "sable", "torrent", "umbra", "vertex", "willow",
    "xenon", "yonder", "zephyr", "argon", "basalt", "cinder", "drift",
)

_TLDS = (
    "com", "net", "org", "io", "info", "biz",
    "co.uk", "com.cn", "com.br", "co.kr", "co.in", "com.tr", "com.ua",
    "de", "fr", "ru", "ir", "cn", "in", "mx", "pe",
)

#: Relative share of domains per category (Content Servers and
#: Technology are large; Login Screens small), roughly web-like.
_CATEGORY_SHARES: Mapping[str, float] = {
    "Adult Themes": 0.08,
    "Advertisements": 0.07,
    "Business": 0.14,
    "Chat": 0.05,
    "Content Servers": 0.12,
    "Education": 0.06,
    "Gaming": 0.06,
    "Hobbies & Interests": 0.07,
    "Login Screens": 0.03,
    "News": 0.08,
    "Shopping": 0.07,
    "Social Networks": 0.05,
    "Streaming": 0.05,
    "Technology": 0.07,
}


@dataclasses.dataclass(frozen=True)
class Domain:
    """One domain: name, categories, and global popularity rank (0 = top)."""

    name: str
    categories: FrozenSet[str]
    rank: int

    @property
    def primary_category(self) -> str:
        return sorted(self.categories)[0]


class DomainUniverse:
    """A deterministic, categorized domain population.

    ``generate`` builds ``n_domains`` domains; popularity follows a Zipf
    law over a seed-specific rank permutation.  Per-country demand mixes
    the global ranking with a country-salted permutation so that every
    country has some local favourites (and so per-country blocklists do
    not all hit the same names).
    """

    def __init__(self, domains: Sequence[Domain], seed: int) -> None:
        if not domains:
            raise WorldError("domain universe cannot be empty")
        self.domains: List[Domain] = sorted(domains, key=lambda d: d.rank)
        self.seed = seed
        self._by_name: Dict[str, Domain] = {d.name: d for d in self.domains}
        self._weights = zipf_weights(len(self.domains), exponent=1.05)
        self._country_order_cache: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int = 0,
        n_domains: int = 3000,
        categories: Sequence[str] = STANDARD_CATEGORIES,
        multi_category_rate: float = 0.15,
    ) -> "DomainUniverse":
        """Build the universe deterministically from ``seed``."""
        if n_domains < len(categories):
            raise WorldError("need at least one domain per category")
        rng = derive_rng(seed, "domain-universe")
        shares = [( _CATEGORY_SHARES.get(cat, 0.05)) for cat in categories]
        total_share = sum(shares)
        counts = [max(1, int(round(n_domains * s / total_share))) for s in shares]

        names_seen = set()
        domains: List[Domain] = []
        serial = 0
        for cat, count in zip(categories, counts):
            slug = "".join(ch for ch in cat.lower() if ch.isalnum())[:6]
            for _ in range(count):
                while True:
                    word = rng.choice(_WORDS)
                    word2 = rng.choice(_WORDS)
                    tld = rng.choice(_TLDS)
                    name = f"{word}{word2}-{slug}{serial}.{tld}"
                    serial += 1
                    if name not in names_seen:
                        names_seen.add(name)
                        break
                cats = {cat}
                if rng.random() < multi_category_rate:
                    cats.add(rng.choice(list(categories)))
                domains.append(Domain(name=name, categories=frozenset(cats), rank=0))

        # Assign popularity ranks by a seed-specific shuffle.
        rng.shuffle(domains)
        ranked = [
            Domain(name=d.name, categories=d.categories, rank=i)
            for i, d in enumerate(domains)
        ]
        return cls(ranked, seed=seed)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.domains)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Optional[Domain]:
        return self._by_name.get(name)

    @property
    def names(self) -> List[str]:
        """All domain names in global rank order."""
        return [d.name for d in self.domains]

    def top(self, n: int) -> List[Domain]:
        """The ``n`` globally most popular domains."""
        return self.domains[:n]

    def in_category(self, category: str) -> List[Domain]:
        """All domains carrying ``category``."""
        return [d for d in self.domains if category in d.categories]

    def category_db(self) -> CategoryDB:
        """Materialise the category database for the CDN pipeline."""
        return CategoryDB({d.name: d.categories for d in self.domains})

    # ------------------------------------------------------------------
    def _country_order(self, country: str) -> List[int]:
        """Country-specific popularity order (indices into self.domains)."""
        cached = self._country_order_cache.get(country)
        if cached is None:
            rng = derive_rng(self.seed, f"country-order:{country}")
            cached = list(range(len(self.domains)))
            rng.shuffle(cached)
            self._country_order_cache[country] = cached
        return cached

    def sample(
        self,
        rng: random.Random,
        country: Optional[str] = None,
        local_mix: float = 0.25,
        from_set: Optional[Sequence[str]] = None,
    ) -> Domain:
        """Draw one domain by popularity.

        With probability ``local_mix`` the draw uses the country-specific
        ranking; otherwise the global one.  ``from_set`` restricts the
        draw to the given names (uniform choice) -- used to pick blocked
        domains deliberately.
        """
        if from_set is not None:
            if not from_set:
                raise WorldError("cannot sample from an empty domain set")
            name = from_set[rng.randrange(len(from_set))]
            domain = self._by_name.get(name)
            if domain is None:
                raise WorldError(f"unknown domain {name!r}")
            return domain
        index = rng.choices(range(len(self.domains)), weights=self._weights, k=1)[0]
        if country is not None and rng.random() < local_mix:
            return self.domains[self._country_order(country)[index]]
        return self.domains[index]

    # ------------------------------------------------------------------
    def edge_ip_for(self, name: str, version: int = 4) -> str:
        """The stable CDN anycast address ``name`` resolves to.

        Many domains share each address (the universe maps thousands of
        names onto a /16), so IP-based blocking over-blocks -- by design.
        """
        rng = random.Random(stable_hash(self.seed, "edge-ip", name, version))
        return GeoDatabase.edge_address(rng, version=version)

    def request_host(self, rng: random.Random, name: str) -> str:
        """The hostname a client actually requests (sometimes a subdomain)."""
        roll = rng.random()
        if roll < 0.30:
            return f"www.{name}"
        if roll < 0.38:
            return f"cdn.{name}"
        return name
