"""The synthetic world: domains, countries, traffic, scenarios.

The real study observed two weeks of traffic from 247 countries to a
global CDN.  That dataset is proprietary, so this subpackage constructs
its closest synthetic equivalent (see DESIGN.md §2):

* :mod:`repro.workloads.domains` -- a categorized, Zipf-popular domain
  universe with deterministic edge-IP assignment.
* :mod:`repro.workloads.profiles` -- ~45 country profiles: traffic
  weight, ASN structure, client mix, blocking policy, middlebox
  deployments tuned to published censor fingerprints.
* :mod:`repro.workloads.world` -- assembles geo database, category
  database, per-ASN middlebox chains and per-country blocklists, and
  simulates individual connections end to end.
* :mod:`repro.workloads.traffic` -- the connection generator: arrivals
  with diurnal/weekly structure, client personalities, and batch runs.
* :mod:`repro.workloads.testlist_gen` -- synthetic Tranco/Majestic/
  Citizen Lab/GreatFire test lists with controlled coverage.
* :mod:`repro.workloads.scenarios` -- canned experiment setups (the
  two-week global study; the Iran September-2022 protest window).
"""

from repro.workloads.domains import Domain, DomainUniverse
from repro.workloads.profiles import (
    CountryProfile,
    DeploymentSpec,
    default_profiles,
    profile_for,
)
from repro.workloads.world import World
from repro.workloads.traffic import ConnectionSpec, TrafficGenerator
from repro.workloads.testlist_gen import build_test_lists
from repro.workloads.scenarios import StudyRun, iran_protest_study, two_week_study

__all__ = [
    "Domain",
    "DomainUniverse",
    "CountryProfile",
    "DeploymentSpec",
    "default_profiles",
    "profile_for",
    "World",
    "ConnectionSpec",
    "TrafficGenerator",
    "build_test_lists",
    "StudyRun",
    "two_week_study",
    "iran_protest_study",
]
