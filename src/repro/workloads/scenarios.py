"""Canned experiment setups.

Two study windows drive every benchmark:

* :func:`two_week_study` -- the paper's main dataset: January 12-26 2023,
  all countries, all signatures.
* :func:`iran_protest_study` -- the §5.6 case study: 17 days from
  September 13 2022, Iran only, with blocking escalating after the
  protests begin and peaking in the (late) evening hours, dominated by
  the country's two largest (mobile) networks.

Both return a :class:`StudyRun` bundling the world, the captured samples
and the classification-ready timestamp map, so benchmarks and examples
share one code path.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

from repro.cdn.collector import ConnectionSample
from repro.cdn.geo import GeoDatabase
from repro.core.aggregate import AnalysisDataset
from repro.core.classifier import TamperingClassifier
from repro.workloads.profiles import CountryProfile, default_profiles, profile_for
from repro.workloads.traffic import TrafficGenerator, local_hour
from repro.workloads.world import World

__all__ = [
    "StudyRun",
    "two_week_study",
    "iran_protest_study",
    "two_week_stream_source",
    "iran_protest_stream_source",
    "JAN_12_2023",
    "SEP_13_2022",
]

#: 2023-01-12 00:00 UTC -- start of the paper's two-week window.
JAN_12_2023 = 1673481600.0

#: 2022-09-13 00:00 UTC -- the Iranian protests begin.
SEP_13_2022 = 1663027200.0

_DAY = 86400.0


@dataclasses.dataclass
class StudyRun:
    """One completed study: world, samples, and analysis conveniences."""

    world: World
    samples: List[ConnectionSample]
    timestamps: Dict[int, float]
    start_ts: float
    duration: float

    @property
    def geo(self) -> GeoDatabase:
        return self.world.geo

    def analyze(self, classifier: Optional[TamperingClassifier] = None) -> AnalysisDataset:
        """Classify all samples and annotate with geolocation."""
        classifier = classifier or TamperingClassifier()
        results = classifier.classify_all(self.samples)
        return AnalysisDataset.from_results(results, self.world.geo, self.timestamps)


def two_week_study(
    n_connections: int = 20_000,
    seed: int = 7,
    world: Optional[World] = None,
    profiles: Optional[Sequence[CountryProfile]] = None,
    n_domains: int = 3000,
) -> StudyRun:
    """The main dataset: two weeks, every country profile."""
    world = world or World(profiles=profiles, seed=seed, n_domains=n_domains)
    generator = TrafficGenerator(world, seed=seed)
    duration = 14 * _DAY
    samples, timestamps = generator.run(n_connections, start_ts=JAN_12_2023, duration=duration)
    return StudyRun(
        world=world,
        samples=samples,
        timestamps=timestamps,
        start_ts=JAN_12_2023,
        duration=duration,
    )


def _iran_escalation(code: str, ts: float) -> float:
    """Blocking multiplier during the protest window.

    Before the protests (first ~12 hours) blocking sits at baseline;
    afterwards it escalates over three days to ~2.2x and stays high,
    with an additional evening surge (the paper observes peaks in the
    late evening local time).
    """
    if code != "IR":
        return 1.0
    days_in = (ts - SEP_13_2022) / _DAY
    if days_in < 0.5:
        ramp = 1.0
    else:
        ramp = 1.0 + 0.8 * min(1.0, (days_in - 0.5) / 3.0)
    hour = local_hour(ts, tz_offset=3.5)
    # Gaussian surge centred on 21:00 local, wrapped around midnight.
    distance = min(abs(hour - 21.0), 24.0 - abs(hour - 21.0))
    evening = 1.0 + 0.6 * math.exp(-(distance ** 2) / 8.0)
    return ramp * evening


def _iran_generator(seed: int) -> TrafficGenerator:
    """The Iran-focused world + generator shared by study and stream."""
    base_ir = profile_for("IR")
    # Concentrate traffic on the two largest (mobile) networks, and keep
    # baseline blocked demand moderate so the escalation and evening
    # surges stay visible (no saturation at 100%).
    ir = dataclasses.replace(
        base_ir, weight=9.0, asn_skew=1.8, n_asns=6,
        p_blocked=0.30, night_boost=1.1,
    )
    background = dataclasses.replace(profile_for("DE"), weight=1.0)
    world = World(profiles=[ir, background], seed=seed, n_domains=1500)
    return TrafficGenerator(world, seed=seed, blocked_boost_fn=_iran_escalation)


def iran_protest_study(
    n_connections: int = 8_000,
    seed: int = 13,
    days: float = 17.0,
) -> StudyRun:
    """The §5.6 case study: Iran around September 2022.

    Uses an Iran-focused world (IR plus a small background country so
    aggregation denominators behave) and an escalating blocked-demand
    boost starting half a day into the window.
    """
    generator = _iran_generator(seed)
    duration = days * _DAY
    samples, timestamps = generator.run(n_connections, start_ts=SEP_13_2022, duration=duration)
    return StudyRun(
        world=generator.world,
        samples=samples,
        timestamps=timestamps,
        start_ts=SEP_13_2022,
        duration=duration,
    )


def two_week_stream_source(
    n_connections: int = 20_000,
    seed: int = 7,
    world: Optional[World] = None,
    profiles: Optional[Sequence[CountryProfile]] = None,
    n_domains: int = 3000,
):
    """A live :class:`~repro.stream.source.SimulatorSource` over the
    two-week scenario: the same arrivals as :func:`two_week_study`, but
    simulated lazily as the stream engine pulls."""
    from repro.stream.source import SimulatorSource

    world = world or World(profiles=profiles, seed=seed, n_domains=n_domains)
    generator = TrafficGenerator(world, seed=seed)
    return SimulatorSource(generator, n_connections, JAN_12_2023, 14 * _DAY)


def iran_protest_stream_source(
    n_connections: int = 8_000,
    seed: int = 13,
    days: float = 17.0,
):
    """A live simulator tap over the Iran protest scenario."""
    from repro.stream.source import SimulatorSource

    generator = _iran_generator(seed)
    return SimulatorSource(generator, n_connections, SEP_13_2022, days * _DAY)
